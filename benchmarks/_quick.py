"""Quick-mode switch for the benchmark suite.

CI's benchmark-smoke job sets ``REPRO_BENCH_QUICK=1`` to shrink the
benchmark workloads to smoke-test size while keeping the measurement and
artifact plumbing identical to a full run.
"""

import os

#: True when the benchmark-smoke job asks for reduced workloads.
BENCH_QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"


def quick(normal, reduced):
    """Pick the quick-mode value when ``REPRO_BENCH_QUICK=1`` is set."""
    return reduced if BENCH_QUICK else normal
