"""Benchmark ``ablation_c5``: breaking Theorem 1's conditions (Section V, scenario 3)."""

import pytest

from repro.experiments import run_ablation_constraints


@pytest.mark.benchmark(group="ablation")
def test_constraint_ablation(benchmark):
    result = benchmark.pedantic(run_ablation_constraints, rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
