"""Batched kernel vs serial compiled kernel on the Table I campaign workload.

The batched engine exists for exactly one reason: campaign cells run many
replicates of one model, and executing them as vectorized lanes must beat
executing them one after another on the (already fast) compiled kernel.
This benchmark times one campaign cell's worth of replicates both ways and
**fails if the batched kernel is slower** — with the full workload it must
clear 1.5x (the PR's acceptance bar; ~2.5x is typical at 64 lanes).

``REPRO_BENCH_QUICK=1`` shrinks the horizon and the batch to CI
smoke-test size; the speedup assertion then relaxes to the not-slower
gate, since tiny batches amortize less.
"""

import time

import pytest

from _quick import BENCH_QUICK, quick
from repro.campaign import run_campaign, table1_spec

#: Simulated seconds per trial (the paper's Table I trials run 30 minutes).
TRIAL_DURATION = quick(1800.0, 60.0)

#: Replicates per campaign cell — one batch's worth of lanes.  Lockstep
#: wins grow with the batch, so quick mode trims the horizon, not the
#: width (below ~16 lanes the vector dispatch overhead dominates).
REPLICATES = int(quick(64, 32))

#: Minimum end-to-end speedup the batched kernel must show over the serial
#: compiled kernel on the full workload (quick mode only gates not-slower).
REQUIRED_SPEEDUP = 1.5


def _table1_campaign(engine: str, batch_size: int | None = None):
    spec = table1_spec(mean_toffs=(18.0,), duration=TRIAL_DURATION,
                       replicates=REPLICATES, legacy_seed=None)
    return run_campaign(spec, seed=2013, max_workers=1, engine=engine,
                        batch_size=batch_size)


@pytest.mark.benchmark(group="batched")
def test_compiled_serial_table1_campaign(benchmark):
    campaign = benchmark.pedantic(lambda: _table1_campaign("compiled"),
                                  rounds=1, iterations=1)
    assert campaign.total_trials == 2 * REPLICATES


@pytest.mark.benchmark(group="batched")
def test_batched_table1_campaign(benchmark):
    campaign = benchmark.pedantic(
        lambda: _table1_campaign("batched", batch_size=REPLICATES),
        rounds=1, iterations=1)
    assert campaign.total_trials == 2 * REPLICATES


def test_batched_not_slower_than_compiled_serial():
    """CI gate: lockstep lanes must beat serial compiled replicates.

    One warmup per kernel hides import and lowering-cache noise, then a
    single timed campaign each.  Both campaigns must also agree on every
    aggregate, which pins the speedup to the same work.
    """
    import json

    warm = table1_spec(mean_toffs=(18.0,), duration=30.0, replicates=2,
                       legacy_seed=None)
    run_campaign(warm, seed=1, max_workers=1, engine="compiled")
    run_campaign(warm, seed=1, max_workers=1, engine="batched", batch_size=2)

    started = time.perf_counter()
    compiled = _table1_campaign("compiled")
    compiled_s = time.perf_counter() - started

    started = time.perf_counter()
    batched = _table1_campaign("batched", batch_size=REPLICATES)
    batched_s = time.perf_counter() - started

    assert (json.dumps(compiled.to_json()["campaign"], sort_keys=True)
            == json.dumps(batched.to_json()["campaign"], sort_keys=True))
    speedup = compiled_s / batched_s
    print(f"\ncompiled-serial {compiled_s:.3f}s, batched {batched_s:.3f}s, "
          f"speedup {speedup:.2f}x over {2 * REPLICATES} trials of "
          f"{TRIAL_DURATION:.0f}s simulated ({REPLICATES} lanes/batch)")
    assert batched_s <= compiled_s, (
        f"batched kernel regressed: {batched_s:.3f}s vs compiled-serial "
        f"{compiled_s:.3f}s on the Table I campaign workload")
    if not BENCH_QUICK:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"batched kernel speedup {speedup:.2f}x below the "
            f"{REQUIRED_SPEEDUP}x acceptance bar")
