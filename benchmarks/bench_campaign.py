"""Benchmarks of the Monte-Carlo campaign runner.

Measures campaign throughput (trials per second) for the serial executor
and for the process-pool fan-out, seeding the performance trajectory of
the batch layer.  ``REPRO_BENCH_QUICK=1`` shrinks the workload to CI
smoke-test size; the CI benchmark job uploads the resulting timings as the
``BENCH_campaign.json`` artifact.
"""

import pytest

from _quick import quick
from repro.campaign import run_campaign, table1_spec

#: Replicates per Table I cell and simulated seconds per trial.
REPLICATES = quick(4, 2)
TRIAL_DURATION = quick(180.0, 60.0)


def _spec():
    return table1_spec(duration=TRIAL_DURATION, replicates=REPLICATES)


@pytest.mark.benchmark(group="campaign")
def test_campaign_serial_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: run_campaign(_spec(), seed=7, max_workers=1),
        rounds=1, iterations=1)
    assert result.total_trials == 4 * REPLICATES
    assert all(s.failures == 0 for s in result.summaries if s.with_lease)


@pytest.mark.benchmark(group="campaign")
def test_campaign_parallel_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: run_campaign(_spec(), seed=7, max_workers=4),
        rounds=1, iterations=1)
    print(f"\n{result.total_trials} trials, {result.workers} workers, "
          f"{result.trials_per_second:.2f} trials/s")
    assert result.total_trials == 4 * REPLICATES
    assert all(s.failures == 0 for s in result.summaries if s.with_lease)
