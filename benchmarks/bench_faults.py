"""Recovery overhead of the self-healing executor under injected faults.

Two gates:

* a **plan microbenchmark** — the fault-plan queries sit on the dispatch
  hot path of every batch (``crash_at``/``hang_secs``/``corrupt_at`` per
  dispatch, ``raise_in_trial`` per trial), so an armed plan must stay in
  the sub-microsecond range per query;
* the **Table-I campaign under chaos** end to end: the same pooled
  campaign clean versus with an injected worker crash.  The faulted run
  must produce byte-identical aggregates (nothing quarantined — the
  crashed batch reschedules and replays its exact seeds) and finish
  within a bounded factor of the clean run: recovery costs one pool
  respawn plus the re-execution of the lost batches, not a restart of
  the campaign.

``REPRO_BENCH_QUICK=1`` shrinks the horizon for CI; the absolute slack
then dominates the overhead bound, since a short run's wall time is
mostly pool startup.
"""

import json
import time

from _quick import quick
from repro.campaign import run_campaign, table1_spec
from repro.campaign.faults import FaultPlan

#: Simulated seconds per trial (the paper's Table I trials run 30 minutes).
TRIAL_DURATION = quick(1800.0, 60.0)

#: Replicates per campaign cell.
REPLICATES = int(quick(32, 8))

#: Worker processes of the pooled runs.
WORKERS = 2

#: Plan-query microbenchmark: queries per rep, reps (best-of), and the
#: per-query budget.  Measured ~1-2 us/query; the bar leaves headroom.
PLAN_QUERIES = int(quick(200_000, 40_000))
PLAN_REPS = 3
MAX_PLAN_QUERY_US = 20.0

#: Recovery overhead gate: the crash-injected campaign may cost at most
#: this factor of the clean campaign plus the absolute slack (one pool
#: respawn and the lost batches' re-execution).
MAX_FAULTED_FACTOR = 2.0
FAULTED_SLACK_S = 15.0


def test_fault_plan_queries_stay_cheap():
    """Microbenchmark gate: per-dispatch plan queries off the hot path."""
    plan = FaultPlan.parse(
        "crash@batch=999983;hang@batch=999979,secs=5;corrupt@p=0.000001;"
        "raise@trial=999961;lock@commit=999959")
    best = float("inf")
    fired = 0
    for _ in range(PLAN_REPS):
        started = time.perf_counter()
        for dispatch in range(1, PLAN_QUERIES + 1):
            if plan.crash_at(dispatch):
                fired += 1
            if plan.hang_secs(dispatch):
                fired += 1
            if plan.corrupt_at(dispatch):
                fired += 1
            if plan.raise_in_trial(dispatch, 0):
                fired += 1
        best = min(best, time.perf_counter() - started)
    per_query_us = best / (PLAN_QUERIES * 4) * 1e6
    print(f"\nplan queries: {per_query_us:.2f} us/query "
          f"(best of {PLAN_REPS}x{PLAN_QUERIES} dispatches, {fired} fired)")
    assert per_query_us <= MAX_PLAN_QUERY_US, (
        f"fault-plan query cost {per_query_us:.2f} us exceeds the "
        f"{MAX_PLAN_QUERY_US} us budget")


def _campaign(fault_plan=None):
    spec = table1_spec(mean_toffs=(18.0,), duration=TRIAL_DURATION,
                       replicates=REPLICATES, legacy_seed=None)
    started = time.perf_counter()
    result = run_campaign(spec, seed=7, max_workers=WORKERS,
                          batch_size=max(2, REPLICATES // 4),
                          engine="reference", fault_plan=fault_plan)
    return result, time.perf_counter() - started


def test_crash_recovery_overhead_is_bounded():
    """End-to-end gate: chaos run == clean run, at bounded extra cost."""
    clean, clean_s = _campaign()
    faulted, faulted_s = _campaign(fault_plan="crash@batch=2")

    assert not faulted.quarantined
    kinds = [kind for kind, _ in faulted.recovery_events]
    assert "pool-respawn" in kinds
    clean_payload = json.dumps(clean.to_json()["campaign"], sort_keys=True)
    faulted_payload = json.dumps(faulted.to_json()["campaign"], sort_keys=True)
    assert faulted_payload == clean_payload

    bound = clean_s * MAX_FAULTED_FACTOR + FAULTED_SLACK_S
    print(f"\nclean {clean_s:.2f}s, crash-injected {faulted_s:.2f}s "
          f"(recovery cost {faulted_s - clean_s:+.2f}s, bound {bound:.2f}s)")
    assert faulted_s <= bound, (
        f"crash recovery cost too high: {faulted_s:.2f}s vs clean "
        f"{clean_s:.2f}s (bound {bound:.2f}s)")
