"""Benchmark ``fig1``: regenerate the PTE timeline quantities of Fig. 1."""

import pytest

from repro.experiments import run_fig1


@pytest.mark.benchmark(group="figures")
def test_fig1_pte_timeline(benchmark):
    result = benchmark.pedantic(run_fig1, rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
