"""Benchmark ``fig2``: regenerate the stand-alone ventilator trajectory of Fig. 2."""

import pytest

from repro.experiments import run_fig2


@pytest.mark.benchmark(group="figures")
def test_fig2_ventilator_trajectory(benchmark):
    result = benchmark.pedantic(lambda: run_fig2(horizon=60.0), rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
