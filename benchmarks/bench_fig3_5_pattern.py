"""Benchmark ``fig3_5``: design-pattern automata structure (Figs. 3 and 5)."""

import pytest

from repro.experiments import run_fig3_5


@pytest.mark.benchmark(group="figures")
def test_fig3_5_pattern_structure(benchmark):
    result = benchmark.pedantic(lambda: run_fig3_5(entity_counts=(2, 3, 4, 5, 8)),
                                rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
