"""Benchmark ``fig6``: the atomic elaboration example of Fig. 6."""

import pytest

from repro.experiments import run_fig6


@pytest.mark.benchmark(group="figures")
def test_fig6_elaboration(benchmark):
    result = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
