"""Benchmark ``loss_sweep``: robustness envelope over packet-loss rates (extension)."""

import pytest

from repro.experiments import run_loss_sweep


@pytest.mark.benchmark(group="extensions")
def test_loss_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: run_loss_sweep(loss_levels=(0.0, 0.3, 0.6, 0.9), duration=600.0,
                               seeds=(1,)),
        rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.checks["lease_safe_at_every_loss_level"], result.failed_checks()
