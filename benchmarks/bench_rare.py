"""Rare-event estimator gates: splitting vs crude MC, and SPRT early stop.

The target is a **low-loss Table-I cell**: the no-lease baseline under a
near-perfect Bernoulli channel (loss 1e-4) with a fast surgeon
(E(Toff) = 6 s).  In that regime the dwelling-budget event -- one
ventilator pause consuming the full 60 s Rule-1 budget -- needs an
emission that survives ~55 s against a mean of 6 s, i.e. a probability
of roughly 1e-4 per trial.  Crude Monte Carlo at that rarity burns tens
of thousands of trials per digit of relative error; multilevel splitting
climbs the monitor's risk score instead.

Two gates:

* the **splitting efficiency gate** -- on the fixed benchmark cell, the
  splitting estimate must be nonzero and must reach its relative error
  with at least ``MIN_SPEEDUP``x fewer trials than crude Monte Carlo
  would need for the same relative error
  (:func:`~repro.verify.rare.crude_trials_for` is the closed-form
  crude-MC budget, so the comparison costs nothing extra);
* the **SPRT early-stop gate** -- Wald's sequential test on the same
  cell must accept H0 (p <= 1e-3) within a small fraction of its
  truncation budget: sequential testing answers the certification
  question orders of magnitude before a fixed-budget campaign would.

Both estimators are deterministic functions of the master seed, so the
gates are exact, not flaky.  ``REPRO_BENCH_QUICK=1`` shortens the trial
horizon for CI.
"""

import dataclasses
import functools
import time

from _quick import quick
from repro.campaign.spec import ChannelSpec
from repro.casestudy.config import CaseStudyConfig, SurgeonModel
from repro.verify.rare import (CellTemplate, SplitSettings, crude_trials_for,
                               fixed_effort_splitting, pool_map,
                               scored_case_trial)
from repro.verify.sprt import SprtSettings, run_sprt_trials

#: Simulated seconds per trial.
TRIAL_DURATION = quick(300.0, 240.0)

#: Surgeon E(Toff): fast cancels make the 60 s dwell event rare.
MEAN_TOFF = 6.0

#: Timer re-draw quantum -- the memoryless re-arming that gives forked
#: clones fresh randomness mid-emission (see SurgeonModel docs).
RESAMPLE_QUANTUM = 2.0

#: Bernoulli per-message loss of the low-loss cell.
LOSS = 1e-4

#: Per-level effort of the splitting run.
TRIALS_PER_LEVEL = 64

#: Master seed of both estimators (results are deterministic in it).
MASTER_SEED = 1

#: Worker processes (estimates are worker-count invariant).
WORKERS = 4

#: The splitting run must beat the crude-MC budget by at least this
#: factor at equal relative error.
MIN_SPEEDUP = 10.0

#: SPRT truncation budget and the early-stop bar.
SPRT_MAX_TRIALS = 2000
SPRT_DECISION_BUDGET = 400


def _bench_template() -> CellTemplate:
    config = dataclasses.replace(
        CaseStudyConfig(),
        surgeon=SurgeonModel(mean_toff=MEAN_TOFF,
                             resample_quantum=RESAMPLE_QUANTUM))
    return CellTemplate(config=config, with_lease=False,
                        duration=TRIAL_DURATION,
                        channel=ChannelSpec(kind="bernoulli", loss=LOSS),
                        engine="compiled", event="dwell")


def test_splitting_beats_crude_monte_carlo():
    """Efficiency gate: >= MIN_SPEEDUP x fewer trials at equal rel. error."""
    template = _bench_template()
    trial_fn = functools.partial(scored_case_trial, template)
    map_fn = functools.partial(pool_map, max_workers=WORKERS)
    started = time.perf_counter()
    estimate = fixed_effort_splitting(
        trial_fn, master_seed=MASTER_SEED,
        settings=SplitSettings(trials_per_level=TRIALS_PER_LEVEL,
                               max_levels=20),
        name="bench-split", map_fn=map_fn)
    elapsed = time.perf_counter() - started

    assert estimate.probability > 0.0, (
        "splitting collapsed to zero on the benchmark cell; the fixed "
        "master seed should reach the dwelling-budget event")
    crude_budget = crude_trials_for(estimate.probability, estimate.rel_error)
    speedup = crude_budget / estimate.trials_used
    print(f"\nsplit: p={estimate.probability:.3e} "
          f"rel_error={estimate.rel_error:.2f} "
          f"levels={len(estimate.factors)} trials={estimate.trials_used} "
          f"crude-equivalent={crude_budget} speedup={speedup:.1f}x "
          f"({elapsed:.1f}s)")
    assert speedup >= MIN_SPEEDUP, (
        f"splitting used {estimate.trials_used} trials where crude MC "
        f"needs {crude_budget} for rel_error={estimate.rel_error:.2f} -- "
        f"only {speedup:.1f}x, below the {MIN_SPEEDUP}x gate")


def test_sprt_stops_early():
    """Early-stop gate: H0 accepted in a fraction of the trial budget."""
    template = _bench_template()
    trial_fn = functools.partial(scored_case_trial, template)
    map_fn = functools.partial(pool_map, max_workers=WORKERS)
    settings = SprtSettings(p0=1e-3, p1=5e-2, alpha=0.05, beta=0.05,
                            max_trials=SPRT_MAX_TRIALS)
    started = time.perf_counter()
    result = run_sprt_trials(trial_fn, master_seed=MASTER_SEED,
                             settings=settings, name="bench-sprt",
                             batch=32, map_fn=map_fn)
    elapsed = time.perf_counter() - started

    print(f"\nsprt: decision={result.decision} "
          f"trials={result.trials_used}/{SPRT_MAX_TRIALS} "
          f"llr={result.llr:.2f} ({elapsed:.1f}s)")
    assert result.decided_early, "SPRT hit its truncation budget"
    assert result.decision == "H0", (
        f"expected H0 (p <= {settings.p0}) on the low-loss cell, "
        f"got {result.decision}")
    assert result.trials_used <= SPRT_DECISION_BUDGET, (
        f"SPRT needed {result.trials_used} trials; early stopping should "
        f"decide within {SPRT_DECISION_BUDGET}")
