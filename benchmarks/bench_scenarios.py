"""Benchmark ``scenarios``: the Section V qualitative failure scenarios."""

import pytest

from repro.experiments import run_scenarios


@pytest.mark.benchmark(group="scenarios")
def test_section_v_scenarios(benchmark):
    result = benchmark.pedantic(run_scenarios, rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
