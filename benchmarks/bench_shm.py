"""Shared-memory results path vs pickled results path on pooled campaigns.

The memory plane exists to take serialization off the campaign hot path:
per-trial statistics travel as fixed-width records in a shared ring
instead of being pickled in the worker, shipped through the pool pipe and
unpickled in the parent.  Two measurements pin that down:

* a **transport microbenchmark** — encoding one retired batch of trial
  summaries into ring records versus round-tripping the same batch
  through ``pickle`` — which must win decisively (this is the pure
  serialization cost the plane eliminates, free of simulation noise);
* the **64-lane Table-I campaign** end to end, shm on vs shm off, with 2
  workers and a cross-worker batch split — gated not-slower (the
  simulation itself dominates wall time, so the transport win shows up as
  a small but consistent edge; best-of-N absorbs scheduler noise).

Both campaigns must agree on every aggregate byte — the plane is a
transport, never a semantics change.  ``REPRO_BENCH_QUICK=1`` shrinks the
horizon for CI; the campaign gate then allows a small tolerance since a
short run's wall time is mostly pool startup.
"""

import json
import multiprocessing
import pickle
import time

import pytest

from _quick import BENCH_QUICK, quick
from repro.campaign import run_campaign, table1_spec
from repro.campaign.aggregate import TrialSummary
from repro.campaign.shm import ResultsRing, shared_memory_available

pytestmark = pytest.mark.skipif(not shared_memory_available(),
                                reason="multiprocessing.shared_memory missing")

#: Simulated seconds per trial (the paper's Table I trials run 30 minutes).
TRIAL_DURATION = quick(1800.0, 60.0)

#: Replicates per campaign cell — the ISSUE's 64-lane workload.
REPLICATES = 64

#: Worker processes; with ``batch_size = REPLICATES // 2`` each cell's
#: lanes split across both workers (the cross-worker plane case).
WORKERS = 2

#: Transport microbenchmark: batches of summaries encoded per mode, reps
#: per mode (best-of, alternating), and the minimum ring-vs-pickle
#: advantage (measured ~1.3-1.4x best-of; the bar leaves noise headroom).
RECORD_BATCHES = int(quick(2000, 400))
TRANSPORT_REPS = 3
REQUIRED_TRANSPORT_SPEEDUP = 1.1

#: End-to-end campaigns per mode; the best run of each is compared.
CAMPAIGN_ROUNDS = int(quick(3, 2))

#: Quick mode tolerance: short campaigns are dominated by pool startup,
#: so allow shm to be up to this factor slower before failing the gate.
QUICK_TOLERANCE = 1.10


def _summaries(count=32):
    return [TrialSummary(
        label="with lease, E(Toff)=18s", spec_index=0, replicate=i,
        seed=1000 + i, with_lease=True, mean_toff=18.0,
        duration=TRIAL_DURATION, laser_emissions=40 + i, failures=i % 2,
        evt_to_stop=3, ventilator_pauses=39, max_emission_duration=2.25,
        max_pause_duration=14.5, min_spo2=93.0625, supervisor_aborts=0,
        surgeon_requests=41, surgeon_cancels=2,
        observed_loss_ratio=0.31640625) for i in range(count)]


def test_ring_transport_beats_pickle_round_trip():
    """Microbenchmark gate: ring records vs pickled result batches.

    Models what one retired batch costs on each results path, end to end
    from the worker's finished summaries to the parent's two consumers
    (the in-memory aggregates and the store's prepared sqlite rows):

    * **pickle** — the worker serializes the summary list, the bytes
      cross the pool's result pipe, the parent deserializes them, and
      the store re-encodes every summary into a numeric row
      (``checkpoint_batch``'s ``to_record`` pass);
    * **ring** — the worker writes fixed-width records into the shared
      ring, and the parent decodes summaries *and* extracts store rows
      straight from the same block (``checkpoint_ring``'s single
      ``tolist`` pass) — no serialization, no bytes through the pipe.
    """
    batch = _summaries()
    ring = ResultsRing.create(len(batch))
    labels = [s.label for s in batch]
    parent_conn, worker_conn = multiprocessing.Pipe(duplex=False)
    ring_best = pickle_best = float("inf")
    try:
        # warmup both paths
        for s in batch:
            ring.write(0, 0, 0, s)
        pickle.loads(pickle.dumps(batch))

        generation = 0
        for _ in range(TRANSPORT_REPS):
            started = time.perf_counter()
            for _ in range(RECORD_BATCHES):
                generation += 1
                for slot, summary in enumerate(batch):
                    ring.write(slot, generation, slot, summary)
                decoded = ring.read(0, len(batch), generation, labels)
                block = ring.records[:len(batch)]
                store_rows = [(row[0], label) + tuple(row[2:]) + (None,)
                              for row, label in zip(block.tolist(), labels)]
            ring_best = min(ring_best, time.perf_counter() - started)

            started = time.perf_counter()
            for _ in range(RECORD_BATCHES):
                worker_conn.send_bytes(pickle.dumps(batch))
                decoded_p = pickle.loads(parent_conn.recv_bytes())
                store_rows_p = [(i, s.label) + s.to_record() + (None,)
                                for i, s in enumerate(decoded_p)]
            pickle_best = min(pickle_best, time.perf_counter() - started)
    finally:
        worker_conn.close()
        parent_conn.close()
        ring.destroy()

    assert decoded == batch
    assert decoded_p == batch
    assert store_rows == store_rows_p
    speedup = pickle_best / ring_best
    print(f"\nring best {ring_best:.3f}s, pickle best {pickle_best:.3f}s, "
          f"speedup {speedup:.2f}x over {TRANSPORT_REPS}x{RECORD_BATCHES} "
          f"batches of {len(batch)} records")
    assert speedup >= REQUIRED_TRANSPORT_SPEEDUP, (
        f"results-ring transport speedup {speedup:.2f}x below the "
        f"{REQUIRED_TRANSPORT_SPEEDUP}x bar vs pickle")


def _table1_campaign(shm: bool):
    spec = table1_spec(mean_toffs=(18.0,), duration=TRIAL_DURATION,
                       replicates=REPLICATES, legacy_seed=None)
    return run_campaign(spec, seed=2013, max_workers=WORKERS,
                        engine="batched", batch_size=REPLICATES // WORKERS,
                        shm=shm)


@pytest.mark.benchmark(group="shm")
def test_shm_table1_campaign(benchmark):
    campaign = benchmark.pedantic(lambda: _table1_campaign(True),
                                  rounds=1, iterations=1)
    assert campaign.total_trials == 2 * REPLICATES


@pytest.mark.benchmark(group="shm")
def test_pickle_table1_campaign(benchmark):
    campaign = benchmark.pedantic(lambda: _table1_campaign(False),
                                  rounds=1, iterations=1)
    assert campaign.total_trials == 2 * REPLICATES


def test_shm_not_slower_than_pickle_on_table1():
    """CI gate: the zero-copy path must not lose to pickling end to end.

    Best-of-N per mode (alternating, so thermal drift hits both), after a
    shared warmup; aggregates must agree byte-for-byte, pinning both
    timings to identical work.  Quick mode allows ``QUICK_TOLERANCE``
    since a smoke-sized campaign is mostly pool startup.
    """
    warm = table1_spec(mean_toffs=(18.0,), duration=30.0, replicates=4,
                       legacy_seed=None)
    run_campaign(warm, seed=1, max_workers=WORKERS, engine="batched",
                 batch_size=2, shm=True)
    run_campaign(warm, seed=1, max_workers=WORKERS, engine="batched",
                 batch_size=2, shm=False)

    shm_best = pickle_best = float("inf")
    shm_campaign = pickle_campaign = None
    for _ in range(CAMPAIGN_ROUNDS):
        started = time.perf_counter()
        shm_campaign = _table1_campaign(True)
        shm_best = min(shm_best, time.perf_counter() - started)
        started = time.perf_counter()
        pickle_campaign = _table1_campaign(False)
        pickle_best = min(pickle_best, time.perf_counter() - started)

    assert (json.dumps(shm_campaign.to_json()["campaign"], sort_keys=True)
            == json.dumps(pickle_campaign.to_json()["campaign"],
                          sort_keys=True))
    ratio = pickle_best / shm_best
    print(f"\nshm {shm_best:.3f}s, pickle {pickle_best:.3f}s, "
          f"ratio {ratio:.2f}x over {2 * REPLICATES} trials of "
          f"{TRIAL_DURATION:.0f}s simulated "
          f"({REPLICATES // WORKERS} lanes/task, {WORKERS} workers)")
    bound = pickle_best * (QUICK_TOLERANCE if BENCH_QUICK else 1.0)
    assert shm_best <= bound, (
        f"shared-memory path regressed: best {shm_best:.3f}s vs pickled "
        f"best {pickle_best:.3f}s on the {REPLICATES}-lane Table I "
        f"campaign")
