"""Micro-benchmarks of the simulation substrate itself.

Not a paper artifact: these measure the cost of one case-study trial second
and of one design-pattern round, so regressions in the engine are visible
independently of the experiment harness.  ``REPRO_BENCH_QUICK=1`` shrinks
the workloads to CI smoke-test size.
"""

import pytest

from _quick import quick
from repro.casestudy import CaseStudyConfig, run_trial
from repro.core import build_pattern_system, laser_tracheotomy_configuration
from repro.hybrid import CallbackProcess, SimulationEngine

#: Simulated seconds per trial (quick mode trims the horizon, not the model).
TRIAL_DURATION = quick(120.0, 40.0)


@pytest.mark.benchmark(group="substrate")
def test_case_study_trial_throughput(benchmark):
    config = CaseStudyConfig()

    def one_trial():
        return run_trial(config, with_lease=True, seed=1, duration=TRIAL_DURATION)

    result = benchmark(one_trial)
    assert result.failures == 0


@pytest.mark.benchmark(group="substrate")
def test_pattern_round_throughput(benchmark):
    config = laser_tracheotomy_configuration()

    def one_round():
        pattern = build_pattern_system(config)
        process = CallbackProcess(
            [(14.0, lambda e: e.inject_event(pattern.vocabulary.command_request)),
             (40.0, lambda e: e.inject_event(pattern.vocabulary.command_cancel))])
        return SimulationEngine(pattern.system, processes=[process]).run(TRIAL_DURATION)

    trace = benchmark(one_round)
    assert trace.end_time == TRIAL_DURATION


# ---------------------------------------------------------------------------
# Reference vs compiled kernel on the Table I workload
# ---------------------------------------------------------------------------

#: Simulated seconds of the kernel-comparison trial (the paper's Table I
#: trials run 30 minutes; quick mode trims the horizon, not the model).
TABLE1_DURATION = quick(1800.0, 120.0)


def _table1_trial(engine: str, duration: float | None = None):
    return run_trial(CaseStudyConfig(), with_lease=True, seed=2013,
                     duration=TABLE1_DURATION if duration is None else duration,
                     engine=engine)


@pytest.mark.benchmark(group="kernel")
def test_reference_kernel_table1_trial(benchmark):
    result = benchmark.pedantic(lambda: _table1_trial("reference"),
                                rounds=1, iterations=1)
    assert result.failures == 0


@pytest.mark.benchmark(group="kernel")
def test_compiled_kernel_table1_trial(benchmark):
    result = benchmark.pedantic(lambda: _table1_trial("compiled"),
                                rounds=1, iterations=1)
    assert result.failures == 0


def test_compiled_kernel_not_slower_than_reference():
    """CI gate: the compiled kernel must win on the Table I workload.

    One warmup trial per kernel hides import/JIT-cache noise, then a single
    timed 30-minute-horizon trial each (the margin is ~2.5x, so run-to-run
    jitter cannot flip the comparison).  Both kernels must also agree on
    the Table I statistics, which pins the speedup to the same work.
    """
    import time

    _table1_trial("reference", duration=60.0)
    _table1_trial("compiled", duration=60.0)

    started = time.perf_counter()
    reference = _table1_trial("reference")
    reference_s = time.perf_counter() - started

    started = time.perf_counter()
    compiled = _table1_trial("compiled")
    compiled_s = time.perf_counter() - started

    assert compiled.table_row() == reference.table_row()
    print(f"\nreference {reference_s:.3f}s, compiled {compiled_s:.3f}s, "
          f"speedup {reference_s / compiled_s:.2f}x over {TABLE1_DURATION:.0f}s "
          "simulated")
    assert compiled_s <= reference_s, (
        f"compiled kernel regressed: {compiled_s:.3f}s vs reference "
        f"{reference_s:.3f}s on the Table I workload")
