"""Micro-benchmarks of the simulation substrate itself.

Not a paper artifact: these measure the cost of one case-study trial second
and of one design-pattern round, so regressions in the engine are visible
independently of the experiment harness.  ``REPRO_BENCH_QUICK=1`` shrinks
the workloads to CI smoke-test size.
"""

import pytest

from _quick import quick
from repro.casestudy import CaseStudyConfig, run_trial
from repro.core import build_pattern_system, laser_tracheotomy_configuration
from repro.hybrid import CallbackProcess, SimulationEngine

#: Simulated seconds per trial (quick mode trims the horizon, not the model).
TRIAL_DURATION = quick(120.0, 40.0)


@pytest.mark.benchmark(group="substrate")
def test_case_study_trial_throughput(benchmark):
    config = CaseStudyConfig()

    def one_trial():
        return run_trial(config, with_lease=True, seed=1, duration=TRIAL_DURATION)

    result = benchmark(one_trial)
    assert result.failures == 0


@pytest.mark.benchmark(group="substrate")
def test_pattern_round_throughput(benchmark):
    config = laser_tracheotomy_configuration()

    def one_round():
        pattern = build_pattern_system(config)
        process = CallbackProcess(
            [(14.0, lambda e: e.inject_event(pattern.vocabulary.command_request)),
             (40.0, lambda e: e.inject_event(pattern.vocabulary.command_cancel))])
        return SimulationEngine(pattern.system, processes=[process]).run(TRIAL_DURATION)

    trace = benchmark(one_round)
    assert trace.end_time == TRIAL_DURATION
