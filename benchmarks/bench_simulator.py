"""Micro-benchmarks of the simulation substrate itself.

Not a paper artifact: these measure the cost of one case-study trial second
and of one design-pattern round, so regressions in the engine are visible
independently of the experiment harness.
"""

import pytest

from repro.casestudy import CaseStudyConfig, run_trial
from repro.core import build_pattern_system, laser_tracheotomy_configuration
from repro.hybrid import CallbackProcess, SimulationEngine


@pytest.mark.benchmark(group="substrate")
def test_case_study_trial_throughput(benchmark):
    config = CaseStudyConfig()

    def one_trial():
        return run_trial(config, with_lease=True, seed=1, duration=120.0)

    result = benchmark(one_trial)
    assert result.failures == 0


@pytest.mark.benchmark(group="substrate")
def test_pattern_round_throughput(benchmark):
    config = laser_tracheotomy_configuration()

    def one_round():
        pattern = build_pattern_system(config)
        process = CallbackProcess(
            [(14.0, lambda e: e.inject_event(pattern.vocabulary.command_request)),
             (40.0, lambda e: e.inject_event(pattern.vocabulary.command_cancel))])
        return SimulationEngine(pattern.system, processes=[process]).run(120.0)

    trace = benchmark(one_round)
    assert trace.end_time == 120.0
