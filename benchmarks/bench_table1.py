"""Benchmark ``table1``: regenerate the paper's Table I.

Runs the four 30-minute emulation trials ({with, without lease} x
{E(Toff) = 18 s, 6 s}) under burst interference and prints the resulting
rows next to the paper's, asserting the qualitative shape (lease => zero
failures, baseline => failures, evtToStop only with leases).
"""

import pytest

from repro.experiments import PAPER_TABLE1, run_table1


@pytest.mark.benchmark(group="table1")
def test_table1_full_trials(benchmark):
    result = benchmark.pedantic(lambda: run_table1(seed=42), rounds=1, iterations=1)
    print()
    print(result.render())
    print("paper Table I rows:", PAPER_TABLE1)
    assert result.checks["with_lease_never_fails"], result.failed_checks()
    assert result.checks["baseline_does_fail"], result.failed_checks()
    assert result.checks["evt_to_stop_only_with_lease"], result.failed_checks()
    assert result.checks["lease_forced_stops_happen"], result.failed_checks()
