"""Benchmark bootstrap.

Reuses the repository's shared ``_bootstrap_src`` helper so benchmark runs
resolve imports exactly like the test suite does.
"""

import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT) not in sys.path:
    sys.path.insert(0, str(_ROOT))

from bootstrap_src import _bootstrap_src  # noqa: E402

_bootstrap_src()
