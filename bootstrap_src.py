"""Shared ``src``-layout bootstrap for the pytest conftest files.

The root ``conftest.py`` and ``benchmarks/conftest.py`` both need the
``src`` directory on ``sys.path`` so the package imports without an
editable install (useful on offline machines where ``pip install -e .``
cannot build editable metadata because the ``wheel`` package is
unavailable; see README "Installation" for the supported offline path).
Keeping the logic in one helper guarantees CI and local runs agree on
import behaviour.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"


def _bootstrap_src() -> str:
    """Prepend the repository's ``src`` directory to ``sys.path`` once."""
    path = str(_SRC)
    if path not in sys.path:
        sys.path.insert(0, path)
    return path
