"""Pytest bootstrap: make the ``src`` layout importable without installation."""

from bootstrap_src import _bootstrap_src

_bootstrap_src()
