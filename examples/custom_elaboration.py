#!/usr/bin/env python3
"""Elaboration methodology walkthrough (Section IV-C and Fig. 6).

Shows how to graft a physical-world child automaton onto a design-pattern
location without affecting the PTE guarantee:

1. build the Participant pattern automaton for entity xi1;
2. build the stand-alone ventilator ``A'_vent`` of Fig. 2 and check it is
   *simple* (Definition 3) and independent (Definition 2);
3. elaborate the pattern's "Fall-Back" location with it;
4. verify Theorem 2 compliance mechanically;
5. simulate the elaborated automaton and print the cylinder trajectory,
   showing that the cylinder freezes exactly while the entity is leased.

Run with:  python examples/custom_elaboration.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.casestudy.ventilator import CYLINDER_HEIGHT, build_standalone_ventilator
from repro.core import ElaborationClaim, check_compliance, laser_tracheotomy_configuration
from repro.core.pattern import build_participant, qualified, FALL_BACK
from repro.core.pattern.events import lease_request, cancel
from repro.hybrid import (CallbackProcess, HybridSystem, SimulationEngine, elaborate,
                          is_simple, are_independent)


def main() -> None:
    config = laser_tracheotomy_configuration()

    # 1. The Participant design-pattern automaton for xi1.
    pattern = build_participant(config, 1, entity_id="xi1", name="ventilator")
    print(f"pattern automaton: {pattern}")

    # 2. The stand-alone ventilator of Fig. 2.
    child = build_standalone_ventilator()
    simple, why = is_simple(child)
    print(f"child automaton:   {child}")
    print(f"  simple (Def. 3): {simple} {why}")
    print(f"  independent (Def. 2): {are_independent(pattern, child)}")

    # 3. Atomic elaboration at Fall-Back.
    ventilator = elaborate(pattern, qualified("xi1", FALL_BACK), child, name="ventilator")
    print(f"elaboration E(A, Fall-Back, A'_vent): {ventilator}\n")

    # 4. Theorem 2 compliance check.
    claim = ElaborationClaim(pattern, [qualified("xi1", FALL_BACK)], [child], ventilator)
    report = check_compliance([claim], config)
    print(report.summary(), "\n")

    # 5. Simulate: lease the ventilator at t=10 s, cancel at t=30 s, and watch
    #    the cylinder freeze while it is paused.
    system = HybridSystem("elaboration-demo")
    system.add(ventilator)
    driver = CallbackProcess([
        (10.0, lambda e: e.inject_event(lease_request(1))),
        (30.0, lambda e: e.inject_event(cancel(1))),
    ])
    engine = SimulationEngine(system, processes=[driver],
                              record_variables=[("ventilator", CYLINDER_HEIGHT)],
                              sample_interval=2.0)
    trace = engine.run(45.0)
    times, heights = trace.series("ventilator", CYLINDER_HEIGHT)
    print("t (s)   H_vent (m)   location")
    for t, h in zip(times, heights):
        location = trace.location_at("ventilator", t)
        print(f"{t:5.1f}   {h:10.3f}   {location}")
    print("\nWhile leased (xi1.* locations) the cylinder height is frozen; while in "
          "Fall-Back (PumpIn/PumpOut) it keeps its 6-second triangle wave.")


if __name__ == "__main__":
    main()
