#!/usr/bin/env python3
"""Industrial interlock: a four-entity PTE wireless CPS built from the pattern.

The paper's introduction motivates PTE safety rules beyond surgery: any
distributed procedure in which entities must enter "risky" modes in a fixed
order with minimum spacings and leave in reverse order.  This example
models a furnace line:

* ``xi1`` exhaust fan      -- must run (risky = high-power mode) first,
* ``xi2`` coolant pump     -- may start only 4 s after the fan,
* ``xi3`` conveyor         -- may start only 2 s after the pump,
* ``xi4`` plasma torch     -- the Initializer; may fire only 2 s after the
  conveyor moves, and everything must wind down in reverse order.

The wireless link to the torch is terrible (bursty 90% loss); the example
shows that the lease design keeps the PTE order intact anyway, and compares
against the no-lease baseline under the same loss trace.

Run with:  python examples/industrial_interlock.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import (build_baseline_system, build_pattern_system, check_trace,
                        synthesize_configuration)
from repro.hybrid import CallbackProcess, SimulationEngine
from repro.wireless import GilbertElliottChannel

ENTITIES = ["exhaust_fan", "coolant_pump", "conveyor", "plasma_torch"]


def run_variant(with_lease: bool, seed: int = 1) -> None:
    config = synthesize_configuration(
        n_entities=4,
        enter_safeguards=[4.0, 2.0, 2.0],
        exit_safeguards=[2.0, 1.0, 1.0],
        t_fallback_min=5.0)
    builder = build_pattern_system if with_lease else build_baseline_system
    pattern = builder(config, entity_names=ENTITIES, supervisor_name="plc")

    operator = CallbackProcess([
        (6.0, lambda e: e.inject_event(pattern.vocabulary.command_request)),
    ])
    channel = GilbertElliottChannel(mean_good_duration=40.0, mean_bad_duration=30.0,
                                    loss_good=0.1, loss_bad=0.9, seed=seed)
    network = pattern.build_network(default_channel=channel)
    engine = SimulationEngine(pattern.system, network=network, processes=[operator],
                              seed=seed)
    trace = engine.run(250.0)
    report = check_trace(trace, pattern.rules)

    label = "LEASE-BASED DESIGN" if with_lease else "NO-LEASE BASELINE"
    print(f"--- {label} ---")
    print(f"  wireless loss ratio: {network.observed_loss_ratio():.2f}")
    for name in ENTITIES:
        intervals = trace.risky_intervals(name)
        pretty = ", ".join(f"[{s:.1f}, {e:.1f}]" for s, e in intervals) or "(never risky)"
        print(f"  {name:13s} risky: {pretty}")
    print(f"  PTE verdict: {'SAFE' if report.safe else 'VIOLATED'}")
    for violation in report.violations[:3]:
        print(f"    {violation}")
    print()


def main() -> None:
    print("Four-entity furnace interlock under bursty 90% loss\n")
    run_variant(with_lease=True)
    run_variant(with_lease=False)
    print("The lease design preserves the PTE order under the same bursty loss trace "
          "that breaks the no-lease baseline.")


if __name__ == "__main__":
    main()
