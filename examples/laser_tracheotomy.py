#!/usr/bin/env python3
"""Laser-tracheotomy case study: reproduce the paper's Table I trials.

Runs the four 30-minute emulation trials of Section V -- {with lease,
without lease} x {E(Toff) = 18 s, 6 s} -- under burst WiFi-style
interference and prints the Table I statistics next to the paper's values.

Run with:  python examples/laser_tracheotomy.py [--quick]
(--quick uses 10-minute trials so the example finishes in a few seconds.)
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.casestudy import CaseStudyConfig, run_table1_trials
from repro.experiments.table1 import PAPER_TABLE1
from repro.util.tables import format_table


def main() -> None:
    quick = "--quick" in sys.argv
    duration = 600.0 if quick else None  # None -> the paper's 1800 s
    config = CaseStudyConfig()
    print("running the Table I trials "
          f"({'10-minute quick mode' if quick else '30-minute paper-length trials'})...\n")
    results = run_table1_trials(config, seed=42, duration=duration)

    rows = []
    for result in results:
        rows.append([result.mode, result.mean_toff, result.laser_emissions,
                     result.failures, result.evt_to_stop,
                     f"{result.max_pause_duration:.1f}",
                     f"{result.max_emission_duration:.1f}",
                     f"{result.min_spo2:.1f}",
                     f"{result.observed_loss_ratio:.2f}"])
    print(format_table(
        ["Trial Mode", "E(Toff)", "# Emissions", "# Failures", "# evtToStop",
         "max pause (s)", "max emission (s)", "min SpO2 (%)", "loss ratio"],
        rows, title="Reproduced Table I"))

    print()
    print(format_table(
        ["Trial Mode", "E(Toff)", "# Emissions", "# Failures", "# evtToStop"],
        PAPER_TABLE1, title="Paper's Table I (for comparison)"))

    print("\nheadline check: every 'with Lease' trial must have 0 failures ->",
          "OK" if all(r.failures == 0 for r in results if r.with_lease) else "VIOLATED")


if __name__ == "__main__":
    main()
