#!/usr/bin/env python3
"""Quickstart: build a PTE-safe wireless CPS from the lease design pattern.

This example shows the core workflow of the library in ~60 lines:

1. describe the PTE safety requirements (safeguard intervals);
2. synthesize a configuration that satisfies Theorem 1's conditions c1-c7;
3. instantiate the Supervisor / Participant / Initializer automata;
4. simulate one coordination round over a lossy wireless network;
5. check the recorded trace against the PTE safety rules.

Run with:  python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import (build_pattern_system, check_conditions, check_trace,
                        synthesize_configuration)
from repro.hybrid import CallbackProcess, SimulationEngine
from repro.wireless import BernoulliChannel


def main() -> None:
    # 1+2. A three-entity CPS (two participants + one initializer) with a 2 s
    #      enter-risky safeguard and a 1 s exit-risky safeguard per pair.
    config = synthesize_configuration(
        n_entities=3,
        enter_safeguards=[2.0, 2.0],
        exit_safeguards=[1.0, 1.0],
        t_fallback_min=5.0)
    print("Theorem 1 conditions:")
    print(check_conditions(config).summary())
    print(f"guaranteed risky-dwelling bound: {config.dwelling_bound:.1f}s\n")

    # 3. Instantiate the design pattern (xi1, xi2 participants; xi3 initializer).
    pattern = build_pattern_system(config, entity_names=["pump", "valve", "torch"],
                                   supervisor_name="base_station")

    # 4. Simulate over a 30%-lossy sink network.  The torch operator requests
    #    at t=6 s (and retries at t=45 s in case the first request is lost over
    #    the wireless uplink), then cancels at t=80 s (local commands).
    operator = CallbackProcess([
        (6.0, lambda e: e.inject_event(pattern.vocabulary.command_request)),
        (45.0, lambda e: e.inject_event(pattern.vocabulary.command_request)),
        (80.0, lambda e: e.inject_event(pattern.vocabulary.command_cancel)),
    ])
    network = pattern.build_network(default_channel=BernoulliChannel(0.3, seed=7))
    engine = SimulationEngine(pattern.system, network=network, processes=[operator],
                              seed=7)
    trace = engine.run(120.0)

    # 5. Check the PTE safety rules on the recorded trace.
    report = check_trace(trace, pattern.rules)
    print(report.summary())
    for name in pattern.remote_names:
        intervals = trace.risky_intervals(name)
        pretty = ", ".join(f"[{s:.1f}, {e:.1f}]" for s, e in intervals) or "(never risky)"
        print(f"  {name:8s} risky intervals: {pretty}")
    print(f"observed wireless loss ratio: {network.observed_loss_ratio():.2f}")
    if report.safe:
        print("\nPTE safety rules SATISFIED under lossy wireless coordination.")
    else:
        print("\nPTE safety rules VIOLATED:")
        for violation in report.violations:
            print(f"  {violation}")


if __name__ == "__main__":
    main()
