"""Setuptools entry point.

The pyproject.toml carries the full project metadata; this file exists so
that editable installs (``pip install -e .``) keep working on environments
whose setuptools lacks PEP 660 support (no ``wheel`` package available).
"""

from setuptools import setup

setup()
