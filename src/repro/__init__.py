"""Reproduction of Tan et al., "Guaranteeing Proper-Temporal-Embedding Safety
Rules in Wireless CPS: A Hybrid Formal Modeling Approach" (DSN 2013).

The library is organized as:

* :mod:`repro.hybrid` -- hybrid automata, hybrid systems, elaboration and an
  executable simulation semantics;
* :mod:`repro.wireless` -- the sink-topology wireless substrate with its
  loss models;
* :mod:`repro.core` -- the paper's contribution: PTE safety rules and
  monitor, Theorem 1's closed-form constraints, the lease-based design
  pattern, Theorem 2 compliance checking;
* :mod:`repro.casestudy` -- the laser-tracheotomy wireless CPS of Section V;
* :mod:`repro.verify` -- fault-injection verification campaigns;
* :mod:`repro.experiments` -- drivers reproducing every table and figure;
* :mod:`repro.campaign` -- parallel Monte-Carlo campaign runner
  (``python -m repro.campaign``).

The most common entry points are re-exported here.
"""

from repro.core import (PatternConfiguration, PTEMonitor, PTERuleSet,
                        build_baseline_system, build_pattern_system, check_conditions,
                        check_trace, laser_tracheotomy_configuration,
                        laser_tracheotomy_rules, synthesize_configuration)
from repro.hybrid import (Edge, HybridAutomaton, HybridSystem, Location,
                          SimulationEngine, elaborate, simulate)
from repro.casestudy import CaseStudyConfig, run_table1_trials, run_trial
from repro.campaign import (CampaignResult, CampaignSpec, TrialSpec,
                            run_campaign)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # hybrid substrate
    "HybridAutomaton", "HybridSystem", "Location", "Edge",
    "SimulationEngine", "simulate", "elaborate",
    # core contribution
    "PatternConfiguration", "laser_tracheotomy_configuration",
    "synthesize_configuration", "check_conditions",
    "PTERuleSet", "laser_tracheotomy_rules", "PTEMonitor", "check_trace",
    "build_pattern_system", "build_baseline_system",
    # case study
    "CaseStudyConfig", "run_trial", "run_table1_trials",
    # campaign runner
    "CampaignSpec", "TrialSpec", "CampaignResult", "run_campaign",
]
