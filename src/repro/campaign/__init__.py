"""Parallel Monte-Carlo campaign runner for emulation trials.

Declarative parameter sweeps (:mod:`repro.campaign.spec`), a process-pool
executor with deterministic per-trial seeding
(:mod:`repro.campaign.executor`), a shared-memory batch plane and
zero-copy results ring for pooled runs (:mod:`repro.campaign.shm`),
streaming aggregation into experiment-compatible summaries
(:mod:`repro.campaign.aggregate`), a durable sqlite checkpoint store with
crash/resume semantics (:mod:`repro.campaign.store`), deterministic
fault-injection plans driving the executor's self-healing paths
(:mod:`repro.campaign.faults`), the paper's experiments as reusable
presets (:mod:`repro.campaign.presets`), a long-running job server over a
warm worker pool (:mod:`repro.campaign.service`), and a CLI
(``python -m repro.campaign``, with ``serve``/``submit``/``watch``/...
service subcommands).
"""

from repro.campaign.aggregate import (SUMMARY_RECORD_FIELDS, CampaignResult,
                                      GroupSummary, TrialSummary)
from repro.campaign.executor import (DEFAULT_MAX_RESPAWNS, DEFAULT_MAX_RETRIES,
                                     TRIAL_RUNNER_DEFAULT,
                                     CampaignCancelled,
                                     CampaignExecutionError,
                                     CampaignInterrupted, CampaignPool,
                                     default_worker_count, execute_batch,
                                     execute_trial, min_lockstep_lanes,
                                     resolve_batch_size, run_campaign)
from repro.campaign.faults import (FAULT_PLAN_ENV_VAR, FaultPlan,
                                   FaultPlanError, InjectedTrialFault,
                                   TrialFailure, resolve_fault_plan)
from repro.campaign.shm import (ResultsRing, ShmError, ShmSession, StatePlane,
                                shared_memory_available)
from repro.campaign.presets import (PRESETS, Preset, grid_spec, interlock_spec,
                                    loss_sweep_spec, scenarios_spec,
                                    table1_spec)
from repro.campaign.spec import (CampaignSpec, ChannelSpec, SurgeonSpec, TrialRun,
                                 TrialSpec, expand_grid)
from repro.campaign.store import (CampaignStore, CampaignStoreError,
                                  CheckpointStatus, RecoveryStage,
                                  RecoveryStateMachine, enumerate_stores,
                                  spec_fingerprint)

__all__ = [
    "CampaignSpec", "TrialSpec", "TrialRun", "ChannelSpec", "SurgeonSpec",
    "expand_grid",
    "run_campaign", "execute_trial", "execute_batch", "resolve_batch_size",
    "min_lockstep_lanes", "default_worker_count", "TRIAL_RUNNER_DEFAULT",
    "CampaignCancelled", "CampaignExecutionError", "CampaignInterrupted",
    "CampaignPool",
    "DEFAULT_MAX_RETRIES", "DEFAULT_MAX_RESPAWNS",
    "FaultPlan", "FaultPlanError", "InjectedTrialFault", "TrialFailure",
    "resolve_fault_plan", "FAULT_PLAN_ENV_VAR",
    "CampaignResult", "GroupSummary", "TrialSummary", "SUMMARY_RECORD_FIELDS",
    "ShmSession", "StatePlane", "ResultsRing", "ShmError",
    "shared_memory_available",
    "CampaignStore", "CampaignStoreError", "CheckpointStatus",
    "RecoveryStage", "RecoveryStateMachine", "enumerate_stores",
    "spec_fingerprint",
    "PRESETS", "Preset",
    "table1_spec", "loss_sweep_spec", "scenarios_spec", "grid_spec",
    "interlock_spec",
]
