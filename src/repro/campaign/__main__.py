"""``python -m repro.campaign`` entry point.

Everything — presets, engines, payloads, and the durable checkpoint store
(``--store`` / ``--resume`` / ``--status``) — is handled by
:func:`repro.campaign.cli.main`; this module only provides the runnable
module surface.
"""

import sys

from repro.campaign.cli import main

if __name__ == "__main__":
    sys.exit(main())
