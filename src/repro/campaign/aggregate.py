"""Campaign result containers and streaming-friendly aggregation.

Workers return slim, picklable :class:`TrialSummary` records (the Table I
statistics of one trial, no traces or monitors attached); the campaign
result keeps them ordered by trial index so aggregates are bit-identical
for any worker count, and groups them per :class:`~repro.campaign.spec.TrialSpec`
cell for table building.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.campaign.faults import TrialFailure
from repro.campaign.spec import mode_label

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.casestudy.emulation import TrialResult
    from repro.campaign.spec import CampaignSpec, TrialRun, TrialSpec

#: Fixed-width numeric encoding of a :class:`TrialSummary`: one ``(field,
#: kind)`` pair per column, ``kind`` being ``"i"`` (int64), ``"f"``
#: (float64) or ``"b"`` (bool stored as int64).  Every summary field except
#: the display ``label`` (reconstructed from ``spec_index`` via the
#: campaign spec) is covered, so a record round-trips bit-identically: the
#: floats are already IEEE doubles and the counters fit comfortably in 64
#: bits.  This is the schema of the shared-memory results ring
#: (:mod:`repro.campaign.shm`) and of the checkpoint store's plain-column
#: summary rows (:mod:`repro.campaign.store`).
SUMMARY_RECORD_FIELDS = (
    ("spec_index", "i"),
    ("replicate", "i"),
    ("seed", "i"),
    ("with_lease", "b"),
    ("mean_toff", "f"),
    ("duration", "f"),
    ("laser_emissions", "i"),
    ("failures", "i"),
    ("evt_to_stop", "i"),
    ("ventilator_pauses", "i"),
    ("max_emission_duration", "f"),
    ("max_pause_duration", "f"),
    ("min_spo2", "f"),
    ("supervisor_aborts", "i"),
    ("surgeon_requests", "i"),
    ("surgeon_cancels", "i"),
    ("observed_loss_ratio", "f"),
)

_RECORD_FIELD_NAMES = tuple(name for name, _ in SUMMARY_RECORD_FIELDS)
_RECORD_BOOL_FIELDS = tuple(name for name, kind in SUMMARY_RECORD_FIELDS
                            if kind == "b")


@dataclass(frozen=True)
class TrialSummary:
    """Slim, picklable statistics of one campaign trial."""

    label: str
    spec_index: int
    replicate: int
    seed: int
    with_lease: bool
    mean_toff: float
    duration: float
    laser_emissions: int
    failures: int
    evt_to_stop: int
    ventilator_pauses: int
    max_emission_duration: float
    max_pause_duration: float
    min_spo2: float
    supervisor_aborts: int
    surgeon_requests: int
    surgeon_cancels: int
    observed_loss_ratio: float

    @classmethod
    def from_trial(cls, run: "TrialRun", result: "TrialResult") -> "TrialSummary":
        """Extract the summary of one executed trial.

        Args:
            run: The trial's position in the campaign (cell, replicate, seed).
            result: The trial's full result.

        Returns:
            The slim, picklable summary of the trial.
        """
        return cls(
            label=run.spec.label,
            spec_index=run.spec_index,
            replicate=run.replicate,
            seed=run.seed,
            with_lease=result.with_lease,
            mean_toff=result.mean_toff,
            duration=result.duration,
            laser_emissions=result.laser_emissions,
            failures=result.failures,
            evt_to_stop=result.evt_to_stop,
            ventilator_pauses=result.ventilator_pauses,
            max_emission_duration=result.max_emission_duration,
            max_pause_duration=result.max_pause_duration,
            min_spo2=result.min_spo2,
            supervisor_aborts=result.supervisor_aborts,
            surgeon_requests=result.surgeon_requests,
            surgeon_cancels=result.surgeon_cancels,
            observed_loss_ratio=result.observed_loss_ratio,
        )

    def to_record(self) -> Tuple[float, ...]:
        """Encode as the fixed-width numeric tuple of ``SUMMARY_RECORD_FIELDS``."""
        out = []
        for name, kind in SUMMARY_RECORD_FIELDS:
            value = getattr(self, name)
            out.append(float(value) if kind == "f" else int(value))
        return tuple(out)

    @classmethod
    def from_record(cls, record, label: str) -> "TrialSummary":
        """Decode a ``SUMMARY_RECORD_FIELDS`` row back into a summary.

        Accepts a plain sequence of Python numerics (a tuple from
        :meth:`to_record`, a sqlite row, or an ``ndarray.tolist`` row) or
        a NumPy structured record; every column comes back as its plain
        Python type, so downstream ``asdict`` → ``json.dumps`` output is
        byte-identical to the pickled path.

        Args:
            record: Numeric row ordered/keyed like ``SUMMARY_RECORD_FIELDS``.
            label: The cell label (not stored in the record; comes from
                ``spec.trials[spec_index].label``).

        Returns:
            The reconstructed summary.
        """
        if isinstance(record, (tuple, list)):
            # Hot decode path (results ring, store replay): these sources
            # already yield plain Python numerics (``ndarray.tolist``,
            # sqlite rows, :meth:`to_record`), so only the bool columns
            # need re-coercing.  Populating ``__dict__`` directly skips
            # the frozen dataclass's per-field ``object.__setattr__``
            # __init__ — the same construction path pickle uses.
            summary = cls.__new__(cls)
            values = summary.__dict__
            values.update(zip(_RECORD_FIELD_NAMES, record))
            values["label"] = label
            for name in _RECORD_BOOL_FIELDS:
                values[name] = bool(values[name])
            return summary
        values: Dict[str, object] = {"label": label}
        for name, kind in SUMMARY_RECORD_FIELDS:
            raw = record[name]
            if kind == "f":
                values[name] = float(raw)
            elif kind == "b":
                values[name] = bool(raw)
            else:
                values[name] = int(raw)
        return cls(**values)

    @property
    def mode(self) -> str:
        """``"with Lease"`` or ``"without Lease"`` (Table I's Trial Mode)."""
        return mode_label(self.with_lease, table_style=True)


@dataclass(frozen=True)
class GroupSummary:
    """Aggregate statistics of all replicates of one trial cell."""

    label: str
    spec_index: int
    trials: int
    with_lease: bool
    mean_toff: float
    laser_emissions: int
    failures: int
    evt_to_stop: int
    failing_trials: int
    max_emission_duration: float
    max_pause_duration: float
    min_spo2: float
    mean_loss_ratio: float

    @classmethod
    def from_summaries(cls, summaries: Sequence[TrialSummary]) -> "GroupSummary":
        """Aggregate one cell's replicates.

        Every reduction is order-independent (sums, maxima, minima and a
        mean), so the aggregate is invariant to completion order.

        Args:
            summaries: The cell's trial summaries (non-empty, same cell).

        Returns:
            The cell aggregate.

        Raises:
            ValueError: If ``summaries`` is empty.
        """
        if not summaries:
            raise ValueError("cannot aggregate an empty trial group")
        first = summaries[0]
        return cls(
            label=first.label,
            spec_index=first.spec_index,
            trials=len(summaries),
            with_lease=first.with_lease,
            mean_toff=first.mean_toff,
            laser_emissions=sum(s.laser_emissions for s in summaries),
            failures=sum(s.failures for s in summaries),
            evt_to_stop=sum(s.evt_to_stop for s in summaries),
            failing_trials=sum(1 for s in summaries if s.failures > 0),
            max_emission_duration=max(s.max_emission_duration for s in summaries),
            max_pause_duration=max(s.max_pause_duration for s in summaries),
            min_spo2=min(s.min_spo2 for s in summaries),
            mean_loss_ratio=sum(s.observed_loss_ratio for s in summaries)
            / len(summaries),
        )

    @property
    def mode(self) -> str:
        """``"with lease"`` or ``"without lease"``."""
        return mode_label(self.with_lease)


@dataclass
class CampaignResult:
    """Everything one campaign run produced.

    ``summaries`` is ordered by trial index (i.e. by position in the
    expanded spec), which makes every derived aggregate independent of the
    worker count and completion order.  Trials replayed from a checkpoint
    store land in the same ``summaries`` tuple as live trials — there is
    only one aggregation path, which is what makes resumed aggregates
    bit-identical to uninterrupted runs.  ``wall_time``, ``workers`` and
    ``replayed_trials`` are execution metadata and deliberately excluded
    from :meth:`to_json`'s ``"campaign"`` payload so that determinism
    checks can compare payloads byte-for-byte.

    ``quarantined`` lists the trials the self-healing executor gave up on
    (their retry budget exhausted; they have no summary), and
    ``recovery_events`` the supervisor's recovery actions (pool respawns,
    deadline kills, bisections, …).  Both live in the ``"run"`` metadata
    section of :meth:`to_json`: the ``"campaign"`` section stays a pure
    function of the completed trials, so a faulted run remains
    byte-comparable to a clean reference over the same trial subset.
    """

    spec: "CampaignSpec"
    master_seed: int
    workers: int
    wall_time: float
    summaries: Tuple[TrialSummary, ...]
    results: Tuple["TrialResult", ...] | None = field(default=None, repr=False)
    replayed_trials: int = 0
    quarantined: Tuple[TrialFailure, ...] = ()
    recovery_events: Tuple[Tuple[str, str], ...] = ()

    @property
    def total_trials(self) -> int:
        """Number of trials the campaign executed."""
        return len(self.summaries)

    @property
    def trials_per_second(self) -> float:
        """Executed-trial throughput of this run."""
        return self.total_trials / self.wall_time if self.wall_time > 0 else 0.0

    def group_map(self) -> Dict[int, List[TrialSummary]]:
        """Group the summaries by spec index, replicates in order."""
        grouped: Dict[int, List[TrialSummary]] = {}
        for summary in self.summaries:
            grouped.setdefault(summary.spec_index, []).append(summary)
        return grouped

    def groups(self) -> List[GroupSummary]:
        """Return one aggregate per trial cell, in spec (presentation) order."""
        grouped = self.group_map()
        return [GroupSummary.from_summaries(grouped[index])
                for index in sorted(grouped)]

    def spec_of(self, group: GroupSummary) -> "TrialSpec":
        """Look up the trial spec a group summary was aggregated from.

        Args:
            group: A cell aggregate produced by this campaign.

        Returns:
            The spec cell the aggregate's trials came from.
        """
        return self.spec.trials[group.spec_index]

    def to_json(self) -> Dict[str, object]:
        """Build the JSON-ready payload.

        Returns:
            A dict with a deterministic ``"campaign"`` section (identical
            for any worker count, batch size, engine tier or crash/resume
            split) and a ``"run"`` metadata section (wall time, workers,
            replayed-trial count).
        """
        return {
            "campaign": {
                "name": self.spec.name,
                "master_seed": self.master_seed,
                "total_trials": self.total_trials,
                "trials": [asdict(s) for s in self.summaries],
                "groups": [asdict(g) for g in self.groups()],
            },
            "run": {
                "workers": self.workers,
                "wall_time_s": self.wall_time,
                "trials_per_second": self.trials_per_second,
                "replayed_trials": self.replayed_trials,
                "quarantined": [asdict(f) for f in self.quarantined],
                "recovery_events": [list(e) for e in self.recovery_events],
            },
        }
