r"""Command-line Monte-Carlo campaign runner.

Examples::

    # Table I at 40 replicates per cell across 4 worker processes.
    python -m repro.campaign --experiment table1 --replicates 40 --workers 4 --seed 7

    # Scaled loss sweep with shorter trials.
    python -m repro.campaign --experiment loss_sweep --replicates 10 \
        --loss-levels 0,0.3,0.6,0.9 --duration 600 --workers 4

    # Joint loss-rate x E(Toff) grid, JSON results to a file.
    python -m repro.campaign --experiment grid --loss-levels 0,0.3,0.6 \
        --mean-toffs 18,6 --replicates 5 --workers 4 --json grid.json

    # Durable campaign: checkpoint batches to a sqlite store, and after a
    # crash (or Ctrl-C) resume from the last checkpoint -- replayed trials
    # are not re-simulated, and aggregates are bit-identical to an
    # uninterrupted run.  --status reports a store's progress.
    python -m repro.campaign --experiment table1 --replicates 1000 \
        --workers 8 --store table1.db
    python -m repro.campaign --experiment table1 --replicates 1000 \
        --workers 8 --store table1.db --resume
    python -m repro.campaign --store table1.db --status
    python -m repro.campaign --store table1.db --status --json

    # Service mode: a first positional subcommand routes to the campaign
    # job server (see docs/service.md).  The flag-only one-shot
    # invocations above are unchanged.
    python -m repro.campaign serve --socket /tmp/repro.sock --stores-dir jobs/
    python -m repro.campaign submit --socket /tmp/repro.sock --preset table1
    python -m repro.campaign watch --socket /tmp/repro.sock JOB

    # Chaos drill: kill the worker of batch 2, hang batch 3 past the
    # 10-second deadline, and poison trial 5 -- the supervisor respawns
    # the pool, reschedules the lost batches, quarantines the poison
    # trial after its retries, and the campaign still completes.
    python -m repro.campaign --experiment table1 --replicates 8 --workers 2 \
        --batch-deadline 10 --fault-plan 'crash@batch=2;hang@batch=3;raise@trial=5'

The exit status is 0 when every experiment check holds, 1 otherwise;
2 for usage errors (including checkpoint-store mismatches and malformed
fault plans), 3 when the executor's recovery budget is exhausted
(:class:`~repro.campaign.executor.CampaignExecutionError`), and
``128 + signum`` (130 for SIGINT, 143 for SIGTERM) when a signal
interrupts the run after checkpoints were flushed and shared memory was
unlinked.
"""

from __future__ import annotations

import argparse
import json
import os
import shlex
import signal
import sys
from typing import Sequence

from repro.campaign.aggregate import TrialSummary
from repro.campaign.executor import (PAYLOAD_KINDS, CampaignExecutionError,
                                     CampaignInterrupted, DEFAULT_MAX_RESPAWNS,
                                     DEFAULT_MAX_RETRIES,
                                     default_worker_count, run_campaign)
from repro.campaign.faults import FaultPlanError, resolve_fault_plan
from repro.campaign.presets import PRESETS
from repro.campaign.service.client import SERVICE_COMMANDS, service_main
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignStore, CampaignStoreError
from repro.hybrid.simulate import ENGINE_ENV_VAR, ENGINE_KINDS


def _csv_floats(text: str) -> tuple[float, ...]:
    try:
        return tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"expected comma-separated floats: {text!r}") \
            from exc


def _levels_arg(text: str) -> int | tuple[float, ...]:
    """Parse ``--levels``: an int (adaptive level cap) or a float ladder.

    ``--levels 8`` caps the adaptive estimator at 8 levels; ``--levels
    0.3,0.5,0.8`` pins an explicit, strictly increasing threshold ladder.
    """
    if "," not in text and "." not in text:
        try:
            return int(text)
        except ValueError as exc:
            raise argparse.ArgumentTypeError(
                f"expected an int or comma-separated floats: {text!r}") from exc
    return _csv_floats(text)


def build_parser() -> argparse.ArgumentParser:
    """Build the campaign CLI's argument parser.

    Returns:
        The configured :class:`argparse.ArgumentParser` (its epilog lists
        every registered preset).
    """
    preset_lines = "\n".join(f"  {name:<12s} {preset.description}"
                             for name, preset in PRESETS.items())
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        description=__doc__,
        epilog=f"experiments:\n{preset_lines}",
    )
    parser.add_argument("--experiment", "--preset", dest="experiment",
                        choices=sorted(PRESETS), default="table1",
                        help="campaign preset to run (default: table1)")
    parser.add_argument("--replicates", type=int, default=1, metavar="N",
                        help="independent trials per sweep cell (default: 1)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes; 1 = serial, 0 = one per CPU "
                             "(default: 1)")
    parser.add_argument("--seed", type=int, default=2013,
                        help="campaign master seed (default: 2013)")
    parser.add_argument("--duration", type=float, default=None, metavar="SECONDS",
                        help="per-trial duration override")
    parser.add_argument("--mean-toffs", type=_csv_floats, default=None,
                        metavar="CSV", help="surgeon E(Toff) values "
                        "(table1/grid; e.g. 18,6)")
    parser.add_argument("--loss-levels", type=_csv_floats, default=None,
                        metavar="CSV", help="packet-loss probabilities "
                        "(loss_sweep/grid; e.g. 0,0.3,0.6,0.9)")
    parser.add_argument("--payload", choices=PAYLOAD_KINDS, default="summary",
                        help="per-trial payload: slim summaries, streaming "
                             "stats (full TrialResult, trace-free), or the "
                             "legacy trace-scanning full mode "
                             "(default: summary)")
    parser.add_argument("--engine", choices=ENGINE_KINDS, default=None,
                        help="simulation kernel; default honours REPRO_ENGINE "
                             "and falls back to the compiled kernel "
                             "(all kernels are bit-identical; "
                             "'reference' is the executable-spec escape hatch)")
    parser.add_argument("--batch-size", type=int, default=None, metavar="B",
                        help="replicates of one sweep cell dispatched as one "
                             "unit and, with the batched kernel, executed in "
                             "vectorized lockstep; 0 = auto heuristic "
                             "(default). Implies --engine batched when no "
                             "engine is chosen and B > 1")
    parser.add_argument("--shm", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="shared-memory fast path: batched lanes run on "
                             "a parent-owned shared state plane (one cell's "
                             "batch can span workers) and per-trial stats "
                             "travel as fixed-width records in a shared "
                             "results ring instead of pickles. Default: "
                             "auto-on for multi-worker batched runs; "
                             "--no-shm disables. Falls back to pickling "
                             "when unavailable; results are bit-identical "
                             "either way")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="durable sqlite checkpoint store: completed "
                             "replicate batches are committed as they "
                             "retire, so a crashed or interrupted campaign "
                             "can continue with --resume instead of "
                             "starting over")
    parser.add_argument("--resume", action="store_true",
                        help="replay the trials checkpointed in --store "
                             "(no re-simulation) and run only the "
                             "remainder; requires the exact spec arguments "
                             "and --seed of the original run, and yields "
                             "aggregates bit-identical to an uninterrupted "
                             "run")
    parser.add_argument("--status", action="store_true",
                        help="print the checkpoint status of --store and "
                             "exit (opens the store read-only, so it is "
                             "safe against a live run)")
    parser.add_argument("--max-retries", type=int, default=DEFAULT_MAX_RETRIES,
                        metavar="N",
                        help="retries a failing trial gets beyond its first "
                             "attempt before it is quarantined (recorded in "
                             "the store's failures table; the campaign "
                             f"continues). Default: {DEFAULT_MAX_RETRIES}")
    parser.add_argument("--batch-deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="hung-worker watchdog: an in-flight batch "
                             "exceeding this deadline gets its worker "
                             "killed and the batch rescheduled (pooled "
                             "runs only; default: no deadline)")
    parser.add_argument("--max-respawns", type=int, default=None, metavar="N",
                        help="worker-pool respawns (crashed or hung pools) "
                             "tolerated before the campaign aborts with "
                             "exit status 3 (default: "
                             f"{DEFAULT_MAX_RESPAWNS})")
    parser.add_argument("--fault-plan", default=None, metavar="PLAN",
                        help="deterministic fault-injection plan, e.g. "
                             "'crash@batch=2;raise@trial=5' (see "
                             "repro.campaign.faults; default: the "
                             "REPRO_FAULT_PLAN environment variable)")
    rare = parser.add_argument_group(
        "rare-event estimation",
        "Estimate one cell's PTE-violation probability instead of running "
        "the full aggregate campaign (see docs/rare-events.md).  'split' is "
        "multilevel importance splitting over the monitor's risk levels; "
        "'sprt' sequentially tests H0: p <= p0 vs H1: p >= p1 and cancels "
        "the cell's remaining batches the moment it decides; 'crude' is the "
        "plain Monte-Carlo baseline over the same machinery.  All methods "
        "are bit-identical across worker counts, engine tiers, and "
        "--resume splits.")
    rare.add_argument("--method", choices=("crude", "split", "sprt"),
                      default=None,
                      help="rare-event estimation method; crude and sprt "
                           "take their trial budget from --replicates when "
                           "it is above 1 (else 512 / 10000)")
    rare.add_argument("--cell", type=int, default=None, metavar="INDEX",
                      help="campaign cell to estimate (default: the first "
                           "without-lease cell, else cell 0)")
    rare.add_argument("--rel-error", type=float, default=None, metavar="RE",
                      help="target relative standard error; the run exits 1 "
                           "when the estimate is less precise than this")
    rare.add_argument("--levels", type=_levels_arg, default=None,
                      metavar="N|CSV",
                      help="splitting levels: an int caps the adaptive "
                           "estimator's level count, a comma-separated "
                           "increasing float ladder (fractions of the PTE "
                           "dwelling budget, e.g. 0.3,0.5,0.8) pins the "
                           "thresholds explicitly")
    rare.add_argument("--trials-per-level", type=int, default=64, metavar="N",
                      help="fixed per-level effort of --method split "
                           "(default: 64)")
    rare.add_argument("--quantile", type=float, default=0.25, metavar="Q",
                      help="fraction of trials promoted per adaptive "
                           "splitting level (default: 0.25)")
    rare.add_argument("--p0", type=float, default=1e-4,
                      help="SPRT null hypothesis H0: p <= p0 (default: 1e-4)")
    rare.add_argument("--p1", type=float, default=1e-2,
                      help="SPRT alternative H1: p >= p1 (default: 1e-2)")
    rare.add_argument("--alpha", type=float, default=0.05,
                      help="SPRT type-I error budget (default: 0.05)")
    rare.add_argument("--beta", type=float, default=0.05,
                      help="SPRT type-II error budget (default: 0.05)")
    parser.add_argument("--json", nargs="?", const="-", default=None,
                        metavar="PATH",
                        help="write the full campaign result as JSON "
                             "(omit PATH, or pass '-', for stdout); with "
                             "--status, print the store's CheckpointStatus "
                             "as JSON — the same schema the service's "
                             "status response embeds")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-trial progress lines")
    return parser


def build_spec(args: argparse.Namespace) -> CampaignSpec:
    """Translate parsed CLI arguments into the requested campaign spec.

    Args:
        args: The parsed CLI namespace (``--experiment`` selects the
            preset; sweep arguments are forwarded to its builder).

    Returns:
        The campaign spec the selected preset builds for these arguments.
    """
    name = args.experiment
    if name == "table1":
        kwargs = {"replicates": args.replicates, "duration": args.duration,
                  "legacy_seed": args.seed}
        if args.mean_toffs:
            kwargs["mean_toffs"] = args.mean_toffs
        return PRESETS[name].build(**kwargs)
    if name == "loss_sweep":
        kwargs = {"replicates": args.replicates}
        if args.loss_levels:
            kwargs["loss_levels"] = args.loss_levels
        if args.duration is not None:
            kwargs["duration"] = args.duration
        return PRESETS[name].build(**kwargs)
    if name == "grid":
        kwargs = {"replicates": args.replicates}
        if args.loss_levels:
            kwargs["loss_levels"] = args.loss_levels
        if args.mean_toffs:
            kwargs["mean_toffs"] = args.mean_toffs
        if args.duration is not None:
            kwargs["duration"] = args.duration
        return PRESETS[name].build(**kwargs)
    if name == "interlock":
        kwargs = {"replicates": args.replicates}
        if args.duration is not None:
            kwargs["horizon"] = args.duration
        return PRESETS[name].build(**kwargs)
    # scenarios: deterministic, ignores replicates (every trial is scripted).
    kwargs = {}
    if args.duration is not None:
        kwargs["horizon"] = args.duration
    return PRESETS[name].build(**kwargs)


def _resume_command(argv: Sequence[str] | None) -> str:
    """Reconstruct the exact shell command that resumes this invocation.

    Args:
        argv: The argument vector ``main`` was called with (``None`` means
            the process's own ``sys.argv``).

    Returns:
        A ready-to-paste ``python -m repro.campaign ... --resume`` line.
    """
    parts = list(sys.argv[1:] if argv is None else argv)
    parts = [part for part in parts if part != "--resume"]
    parts.append("--resume")
    quoted = " ".join(shlex.quote(part) for part in parts)
    return f"python -m repro.campaign {quoted}"


def _rare_json(args: argparse.Namespace, payload: dict) -> int:
    """Emit a rare-event result as JSON per the ``--json`` destination.

    Args:
        args: The parsed CLI namespace.
        payload: The JSON-ready result document.

    Returns:
        0 on success, 2 when the output file cannot be written.
    """
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.json == "-":
        print(text)
        return 0
    try:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    except OSError as exc:
        print(f"error: cannot write {args.json}: {exc}", file=sys.stderr)
        return 2
    print(f"wrote {args.json}")
    return 0


def _run_rare(args: argparse.Namespace, spec: CampaignSpec, workers: int,
              engine: str | None, argv: Sequence[str] | None) -> int:
    """Execute the ``--method`` rare-event estimation path.

    Estimates one campaign cell's PTE-violation probability by crude
    Monte Carlo, multilevel importance splitting, or a sequential
    probability ratio test, honouring ``--store``/``--resume`` through
    the store's estimator checkpoints (schema v4).

    Args:
        args: The parsed CLI namespace (``args.method`` is set).
        spec: The campaign spec built from the preset arguments.
        workers: Resolved worker count.
        engine: Resolved engine choice (may be ``None``).
        argv: Original argument vector, for the resume-hint line.

    Returns:
        Process exit status: 0 on success (SPRT: a within-budget
        decision; crude/split: an estimate no less precise than
        ``--rel-error`` when given), 1 when the check fails, 2 for usage
        errors, ``128 + signum`` on SIGINT/SIGTERM.
    """
    from repro.campaign.executor import DEFAULT_CAMPAIGN_ENGINE
    from repro.hybrid.simulate import resolve_engine_kind
    from repro.verify.rare import (SplitSettings, crude_estimate_for_cell,
                                   crude_trials_for, split_estimate_for_cell)
    from repro.verify.sprt import SprtSettings, run_sprt_campaign

    if args.cell is not None:
        if not 0 <= args.cell < len(spec.trials):
            print(f"error: --cell must be within [0, {len(spec.trials) - 1}] "
                  f"for this campaign", file=sys.stderr)
            return 2
        cell_index = args.cell
    else:
        cell_index = next((i for i, trial in enumerate(spec.trials)
                           if not trial.with_lease), 0)
    cell = spec.trials[cell_index]
    resolved_engine = resolve_engine_kind(engine,
                                          default=DEFAULT_CAMPAIGN_ENGINE)
    budget = args.replicates if args.replicates > 1 else None
    print(f"rare-event estimation ({args.method}) of campaign "
          f"{spec.name!r} cell {cell_index} ({cell.label!r}), "
          f"{workers} worker(s), engine {resolved_engine}, "
          f"master seed {args.seed}")

    if isinstance(args.levels, tuple):
        split_kwargs = {"levels": args.levels}
    elif args.levels is not None:
        split_kwargs = {"max_levels": args.levels}
    else:
        split_kwargs = {}

    def raise_interrupt(signum: int, _frame) -> None:
        raise CampaignInterrupted(signum)

    previous_handlers = {
        signum: signal.signal(signum, raise_interrupt)
        for signum in (signal.SIGINT, signal.SIGTERM)
    }
    store = None
    try:
        store = CampaignStore(args.store) if args.store else None
        if args.method == "sprt":
            settings = SprtSettings(p0=args.p0, p1=args.p1, alpha=args.alpha,
                                    beta=args.beta,
                                    max_trials=budget or 10_000)
            outcome = run_sprt_campaign(spec, cell_index,
                                        master_seed=args.seed,
                                        settings=settings,
                                        max_workers=workers,
                                        engine=resolved_engine,
                                        batch_size=args.batch_size,
                                        store=store, resume=args.resume)
        elif args.method == "split":
            try:
                settings = SplitSettings(
                    trials_per_level=args.trials_per_level,
                    quantile=args.quantile, **split_kwargs)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            outcome = split_estimate_for_cell(spec, cell_index,
                                              master_seed=args.seed,
                                              settings=settings,
                                              engine=resolved_engine,
                                              max_workers=workers,
                                              store=store,
                                              resume=args.resume)
        else:
            outcome = crude_estimate_for_cell(spec, cell_index,
                                              master_seed=args.seed,
                                              trials=budget or 512,
                                              engine=resolved_engine,
                                              max_workers=workers)
    except CampaignStoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CampaignInterrupted as exc:
        print(f"\n{exc}", file=sys.stderr)
        if args.store:
            print(f"estimator progress survives in {args.store}; resume "
                  f"with:", file=sys.stderr)
            print(f"  {_resume_command(argv)}", file=sys.stderr)
        return 128 + exc.signum
    finally:
        if store is not None:
            store.close()
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)

    print()
    if args.method == "sprt":
        hypothesis = (f"p >= {outcome.settings.p1:g} accepted"
                      if outcome.decision == "H1"
                      else f"p <= {outcome.settings.p0:g} accepted")
        stopped = ("decided early" if outcome.decided_early
                   else "truncated at max trials (verdict by evidence lean)")
        print(f"decision:    {outcome.decision} ({hypothesis})")
        print(f"stopping:    {stopped}")
        print(f"trials:      {outcome.trials_used} "
              f"({outcome.violations} violation(s), "
              f"p_hat {outcome.p_hat:.3g})")
        print(f"llr:         {outcome.llr:+.3f}")
        passed = outcome.decided_early
    else:
        print(f"probability: {outcome.probability:.6g}")
        if outcome.probability > 0:
            print(f"rel error:   {outcome.rel_error:.3f}")
            print(f"{outcome.confidence:.0%} CI:      "
                  f"[{outcome.ci_low:.3g}, {outcome.ci_high:.3g}]")
        if outcome.thresholds:
            ladder = ", ".join(f"{level:.3g}" for level in outcome.thresholds)
            print(f"levels:      {ladder}")
            factors = ", ".join(f"{factor:.3g}" for factor in outcome.factors)
            print(f"factors:     {factors}")
        print(f"trials:      {outcome.trials_used}")
        if outcome.saturated:
            print("WARNING: a splitting level had zero survivors; the "
                  "estimate degenerated to 0 — raise --trials-per-level")
        if (outcome.probability > 0 and outcome.rel_error > 0
                and outcome.rel_error != float("inf")):
            equivalent = crude_trials_for(outcome.probability,
                                          outcome.rel_error)
            print(f"(crude Monte Carlo would need ~{equivalent} trials for "
                  f"this relative error)")
        passed = True
        if args.rel_error is not None and not (outcome.rel_error
                                               <= args.rel_error):
            print(f"\nFAIL: relative error {outcome.rel_error:.3f} exceeds "
                  f"the --rel-error target {args.rel_error:g}")
            passed = False

    if args.json:
        payload = {"method": args.method, "campaign": spec.name,
                   "cell": cell_index, "label": cell.label,
                   "master_seed": args.seed, "engine": resolved_engine,
                   "result": outcome.to_json(), "passed": passed}
        status = _rare_json(args, payload)
        if status:
            return status
    return 0 if passed else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Run the campaign CLI (the ``python -m repro.campaign`` entry point).

    Args:
        argv: Argument vector (``None`` reads ``sys.argv``).

    Returns:
        Process exit status: 0 when every experiment check holds, 1 when
        one fails, 2 for usage errors (including checkpoint-store
        mismatches and malformed fault plans), 3 when the recovery budget
        is exhausted, ``128 + signum`` on SIGINT/SIGTERM.
    """
    argv_list = list(sys.argv[1:] if argv is None else argv)
    if argv_list and argv_list[0] in SERVICE_COMMANDS:
        return service_main(argv_list)
    args = build_parser().parse_args(argv)
    if args.replicates < 1:
        print("error: --replicates must be at least 1", file=sys.stderr)
        return 2
    if args.workers < 0:
        print("error: --workers must be non-negative", file=sys.stderr)
        return 2
    if args.batch_size is not None and args.batch_size < 0:
        print("error: --batch-size must be non-negative", file=sys.stderr)
        return 2
    if args.max_retries < 0:
        print("error: --max-retries must be non-negative", file=sys.stderr)
        return 2
    if args.batch_deadline is not None and args.batch_deadline <= 0:
        print("error: --batch-deadline must be positive", file=sys.stderr)
        return 2
    if args.max_respawns is not None and args.max_respawns < 0:
        print("error: --max-respawns must be non-negative", file=sys.stderr)
        return 2
    if (args.resume or args.status) and not args.store:
        flag = "--status" if args.status else "--resume"
        print(f"error: {flag} requires --store PATH", file=sys.stderr)
        return 2
    if args.method is not None:
        if args.rel_error is not None and args.rel_error <= 0:
            print("error: --rel-error must be positive", file=sys.stderr)
            return 2
        if not 0.0 < args.quantile < 1.0:
            print("error: --quantile must be within (0, 1)", file=sys.stderr)
            return 2
        if args.trials_per_level < 2:
            print("error: --trials-per-level must be at least 2",
                  file=sys.stderr)
            return 2
        if args.method == "sprt":
            if not 0.0 < args.p0 < args.p1 < 1.0:
                print("error: SPRT hypotheses must satisfy 0 < --p0 < --p1 "
                      "< 1", file=sys.stderr)
                return 2
            if not 0.0 < args.alpha < 1.0 or not 0.0 < args.beta < 1.0:
                print("error: --alpha and --beta must be within (0, 1)",
                      file=sys.stderr)
                return 2
    elif args.rel_error is not None or args.levels is not None:
        print("error: --rel-error/--levels require --method", file=sys.stderr)
        return 2
    try:
        fault_plan = resolve_fault_plan(args.fault_plan)
    except FaultPlanError as exc:
        print(f"error: bad fault plan: {exc}", file=sys.stderr)
        return 2
    if args.status:
        if not os.path.exists(args.store):
            print(f"error: no checkpoint store at {args.store}", file=sys.stderr)
            return 2
        try:
            with CampaignStore(args.store,
                               read_only=True) as checkpoint_store:
                status = checkpoint_store.status()
        except CampaignStoreError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json is not None:
            body = status.to_json() if status is not None else None
            text = json.dumps({"store": args.store, "status": body},
                              indent=2, sort_keys=True)
            if args.json == "-":
                print(text)
            else:
                try:
                    with open(args.json, "w", encoding="utf-8") as handle:
                        handle.write(text + "\n")
                except OSError as exc:
                    print(f"error: cannot write {args.json}: {exc}",
                          file=sys.stderr)
                    return 2
        elif status is None:
            print(f"{args.store}: empty store (no campaign bound yet)")
        else:
            print(status.describe())
        return 0
    workers = args.workers or default_worker_count()
    engine = args.engine
    if (engine is None and args.batch_size is not None and args.batch_size > 1
            and not os.environ.get(ENGINE_ENV_VAR)):
        # An explicit multi-trial batch only makes sense in lockstep — but
        # never override the REPRO_ENGINE escape hatch.
        engine = "batched"

    preset = PRESETS[args.experiment]
    spec = build_spec(args)
    if args.method is not None:
        return _run_rare(args, spec, workers, engine, argv)
    total = spec.total_trials
    print(f"campaign {spec.name!r}: {total} trials across {len(spec.trials)} "
          f"cells, {workers} worker(s), master seed {args.seed}")

    done = 0

    def progress(summary: TrialSummary) -> None:
        nonlocal done
        done += 1
        if not args.quiet:
            verdict = "FAIL" if summary.failures else "ok"
            print(f"  [{done:>4d}/{total}] {summary.label} "
                  f"(replicate {summary.replicate}, seed {summary.seed}): "
                  f"{summary.laser_emissions} emissions, "
                  f"{summary.failures} failures [{verdict}]")

    def raise_interrupt(signum: int, _frame) -> None:
        raise CampaignInterrupted(signum)

    # SIGINT/SIGTERM unwind through run_campaign's cleanup (flushing the
    # checkpoint store and unlinking shared memory) instead of dying at a
    # random bytecode boundary, then map to the conventional 128+signum.
    previous_handlers = {
        signum: signal.signal(signum, raise_interrupt)
        for signum in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        campaign = run_campaign(spec, seed=args.seed, max_workers=workers,
                                payload=args.payload, engine=engine,
                                batch_size=args.batch_size,
                                on_result=progress,
                                store=args.store, resume=args.resume,
                                shm=args.shm,
                                max_retries=args.max_retries,
                                batch_deadline=args.batch_deadline,
                                max_respawns=(args.max_respawns
                                              if args.max_respawns is not None
                                              else DEFAULT_MAX_RESPAWNS),
                                fault_plan=fault_plan)
    except CampaignStoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CampaignExecutionError as exc:
        if args.store:
            exc.resume_command = _resume_command(argv)
            print(f"error: {exc.args[0].splitlines()[0]}", file=sys.stderr)
            print(f"checkpointed progress survives in {args.store}; "
                  f"resume with:", file=sys.stderr)
            print(f"  {exc.resume_command}", file=sys.stderr)
        else:
            print(f"error: {exc}", file=sys.stderr)
        return 3
    except CampaignInterrupted as exc:
        print(f"\n{exc} after {done} trial(s)", file=sys.stderr)
        if args.store:
            print(f"checkpointed progress survives in {args.store}; "
                  f"resume with:", file=sys.stderr)
            print(f"  {_resume_command(argv)}", file=sys.stderr)
        return 128 + exc.signum
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
    result = preset.to_result(campaign)
    print()
    print(result.render())
    print(f"\n{campaign.total_trials} trials in {campaign.wall_time:.1f}s "
          f"({campaign.trials_per_second:.2f} trials/s, "
          f"{campaign.workers} worker(s))")
    if campaign.replayed_trials:
        live = campaign.total_trials - campaign.replayed_trials
        print(f"resumed from {args.store}: {campaign.replayed_trials} "
              f"trial(s) replayed from checkpoints, {live} executed live")
    if campaign.recovery_events:
        print(f"\nrecovery events ({len(campaign.recovery_events)}):")
        for kind, detail in campaign.recovery_events:
            print(f"  [{kind}] {detail}")
    if campaign.quarantined:
        print(f"\nWARNING: {len(campaign.quarantined)} trial(s) quarantined "
              f"(retry budget exhausted); aggregates exclude them:")
        for failure in campaign.quarantined:
            print(f"  {failure.describe()}")

    if args.json:
        payload = campaign.to_json()
        payload["experiment"] = {
            "name": result.experiment,
            "checks": result.checks,
            "headers": list(result.headers),
            "rows": [list(row) for row in result.rows],
        }
        if args.json == "-":
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            try:
                with open(args.json, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, indent=2, sort_keys=True)
            except OSError as exc:
                print(f"error: cannot write {args.json}: {exc}",
                      file=sys.stderr)
                return 2
            print(f"wrote {args.json}")

    return 0 if result.passed else 1
