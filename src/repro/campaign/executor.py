"""Parallel Monte-Carlo campaign execution.

Fans independent emulation trials out across worker processes with
:class:`concurrent.futures.ProcessPoolExecutor`, falling back to an
in-process serial loop for ``max_workers=1`` (and for the degenerate
single-trial case, where pool start-up would dominate).  Trials are
embarrassingly parallel: every run's seed is derived from the campaign
master seed and the run's position in the spec, never from scheduling, so
any worker count yields bit-identical aggregates.

Results stream back as trials complete (``on_result`` fires in completion
order, for progress reporting); the final :class:`CampaignResult` orders
summaries by trial index, making every derived statistic order-independent.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, List, Tuple

from repro.campaign.aggregate import CampaignResult, TrialSummary
from repro.campaign.spec import CampaignSpec, TrialRun
from repro.casestudy.config import CaseStudyConfig
from repro.casestudy.emulation import TrialResult, run_trial

#: Payload modes, in increasing weight:
#:
#: * ``"summary"`` -- slim :class:`TrialSummary` records only (default);
#: * ``"stats"``  -- additionally the full :class:`TrialResult` per trial,
#:   with monitor report and lease ledger computed by the streaming
#:   observer pipeline (no trace is ever materialised, so worker memory
#:   stays flat regardless of the horizon);
#: * ``"full"``   -- like ``"stats"`` but through the legacy record-a-trace
#:   path (the post-hoc oracle; heavier, numbers identical).  The trace is
#:   dropped before the result leaves the worker.
PAYLOAD_KINDS = ("summary", "stats", "full")

#: Keep at most this many futures in flight per worker, so that expanding a
#: 100x campaign does not materialize every pending future up front.
_INFLIGHT_PER_WORKER = 4


def default_worker_count() -> int:
    """A sensible default worker count for this machine."""
    return max(1, os.cpu_count() or 1)


def execute_trial(config: CaseStudyConfig, campaign_duration: float | None,
                  run: TrialRun, payload: str = "summary",
                  engine: str | None = None,
                  ) -> Tuple[int, TrialSummary, TrialResult | None]:
    """Execute one concrete trial (runs inside a worker process).

    Returns the run index (for order restoration), the slim summary, and —
    for the ``"stats"`` / ``"full"`` payloads — the complete
    :class:`TrialResult` (without its trace, which is memory heavy and
    scheduling sensitive).
    """
    if payload not in PAYLOAD_KINDS:
        raise ValueError(f"unknown payload kind {payload!r}")
    spec = run.spec
    trial_config = spec.configure(config)
    duration = spec.duration if spec.duration is not None else campaign_duration
    channel = spec.channel.build(run.seed)
    surgeon = spec.surgeon.build() if spec.surgeon is not None else None
    result = run_trial(trial_config, with_lease=spec.with_lease, seed=run.seed,
                       duration=duration, channel=channel, surgeon=surgeon,
                       keep_trace=(payload == "full"), engine=engine)
    if result.trace is not None:
        result.trace = None
    summary = TrialSummary.from_trial(run, result)
    return run.index, summary, (result if payload != "summary" else None)


def run_campaign(spec: CampaignSpec, *, seed: int = 0, max_workers: int = 1,
                 payload: str = "summary",
                 engine: str | None = None,
                 on_result: Callable[[TrialSummary], None] | None = None,
                 ) -> CampaignResult:
    """Run a whole campaign, serially or across worker processes.

    Args:
        spec: The campaign description.
        seed: Master seed; every trial derives its own sub-seed from it
            (unless the spec pins explicit seeds).
        max_workers: Worker processes; ``1`` runs the trials serially in
            this process (no pool, no pickling).
        payload: ``"summary"`` keeps only slim per-trial statistics;
            ``"stats"`` additionally collects each trial's
            :class:`~repro.casestudy.emulation.TrialResult` computed by the
            streaming observer pipeline (trace-free, flat memory);
            ``"full"`` collects the same results through the legacy
            record-a-trace path.
        engine: Simulation kernel executing the trials (``"reference"`` /
            ``"compiled"``); ``None`` defers to ``REPRO_ENGINE`` and then
            to the reference kernel.  Both kernels are bit-identical, so
            this only affects throughput.
        on_result: Optional streaming callback, fired once per trial in
            completion order (useful for progress reporting; aggregation
            itself never depends on completion order).

    Returns:
        The ordered, aggregated :class:`CampaignResult`.
    """
    if payload not in PAYLOAD_KINDS:
        raise ValueError(f"unknown payload kind {payload!r}")
    if max_workers < 1:
        raise ValueError("max_workers must be at least 1")
    runs = spec.expand(seed)
    started = time.perf_counter()
    summaries: List[TrialSummary | None] = [None] * len(runs)
    full: List[TrialResult | None] = [None] * len(runs)

    def record(index: int, summary: TrialSummary,
               result: TrialResult | None) -> None:
        summaries[index] = summary
        full[index] = result
        if on_result is not None:
            on_result(summary)

    if max_workers == 1 or len(runs) == 1:
        for run in runs:
            record(*execute_trial(spec.config, spec.duration, run, payload,
                                  engine))
    else:
        workers = min(max_workers, len(runs))
        window = workers * _INFLIGHT_PER_WORKER
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = set()
            queue = iter(runs)
            for run in queue:
                pending.add(pool.submit(execute_trial, spec.config,
                                        spec.duration, run, payload, engine))
                if len(pending) < window:
                    continue
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    record(*future.result())
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    record(*future.result())

    wall_time = time.perf_counter() - started
    if any(s is None for s in summaries):
        raise RuntimeError("campaign lost trials: not every run reported back")
    return CampaignResult(
        spec=spec,
        master_seed=seed,
        workers=max_workers,
        wall_time=wall_time,
        summaries=tuple(summaries),
        results=tuple(full) if payload != "summary" else None,
    )
