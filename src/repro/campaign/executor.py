"""Parallel Monte-Carlo campaign execution with self-healing supervision.

Fans independent emulation trials out across worker processes with
:class:`concurrent.futures.ProcessPoolExecutor`, falling back to an
in-process serial loop for ``max_workers=1`` (and for the degenerate
single-trial case, where pool start-up would dominate).  Trials are
embarrassingly parallel: every run's seed is derived from the campaign
master seed and the run's position in the spec, never from scheduling, so
any worker count yields bit-identical aggregates.

The unit of dispatch is a **batch**: a chunk of replicates of one campaign
cell.  The campaign spec (configuration included) ships to each worker once
through the pool initializer, so a task pickles only ``(spec_index,
(index, replicate, seed), ...)`` tuples; each worker lowers a cell's hybrid
model once (the per-process cache in :mod:`repro.casestudy.emulation`) and
reuses it for every trial of that cell.  With ``engine="batched"`` the
replicates of a chunk additionally execute in vectorized lockstep as lanes
of one :class:`~repro.hybrid.simulate.batched.BatchedEngine`.

Results stream back as batches complete (``on_result`` fires once per trial
in completion order, for progress reporting); the final
:class:`CampaignResult` orders summaries by trial index, making every
derived statistic order-independent.

With a :class:`~repro.campaign.store.CampaignStore` attached, every retired
batch is additionally committed to the store *before* it is published, and
a resumed run replays the checkpointed prefix through the exact same
aggregation path — see :mod:`repro.campaign.store` and
``docs/checkpoint-format.md``.

Pooled runs execute under a **supervision loop** (:class:`_PoolSupervisor`)
that survives the failure modes of long campaigns instead of aborting on
them:

* a worker that dies mid-batch (``BrokenProcessPool``) gets the pool
  respawned and its batch rescheduled, against a bounded respawn budget;
* a worker that hangs past ``batch_deadline`` seconds is killed together
  with its pool, the hung batch is charged a failure, and the innocent
  in-flight batches are resubmitted without penalty;
* a batch that *fails* (an exception from inside a trial) is bisected
  until the offending trial is isolated; the offender is retried up to
  ``max_retries`` times and then **quarantined** — recorded as a
  structured :class:`~repro.campaign.faults.TrialFailure` row in the
  store's ``failures`` table — while the campaign carries on;
* when several batches are in flight at a pool break, blame is imprecise:
  the suspects are re-run one at a time (an *isolation* queue) without
  being charged an attempt, so an innocent batch can never be quarantined
  by a neighbour's crash.

Because every trial's seed travels inside its task triple, a retried or
rescheduled trial reproduces its original result exactly, and the
aggregates of a faulted-but-recovered run are bit-identical to a clean
serial reference (minus quarantined trials, which are reported, not
silently dropped).  Deterministic fault injection for all of these paths
lives in :mod:`repro.campaign.faults`.

**Service mode** (:mod:`repro.campaign.server`) runs many campaigns on one
warm :class:`CampaignPool`: ``run_campaign(pool=...)`` executes on the
externally owned pool without tearing it down, ``stop=`` gives the caller
a cooperative cancel (:class:`CampaignCancelled`, resumable store), and
``on_event=`` streams recovery events live instead of only on the final
result.  Results are bit-identical to a dedicated-pool run.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import shutil
import signal
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Deque, Dict, List, Sequence, Tuple

from repro.campaign import shm as shm_plane
from repro.campaign.aggregate import CampaignResult, TrialSummary
from repro.campaign.faults import (BatchContext, FaultPlan, InjectedTrialFault,
                                   TrialFailure, resolve_fault_plan)
from repro.campaign.spec import CampaignSpec, TrialRun
from repro.campaign.store import (CampaignStore, CampaignStoreError,
                                  RecoveryStage, RecoveryStateMachine)
from repro.casestudy.config import CaseStudyConfig
from repro.casestudy.emulation import (TrialResult, _lowered_case_study,
                                       run_trial, run_trial_batch)
from repro.hybrid.simulate import resolve_engine_kind
from repro.hybrid.simulate.batched import build_batched_tables

#: Payload modes, in increasing weight:
#:
#: * ``"summary"`` -- slim :class:`TrialSummary` records only (default);
#: * ``"stats"``  -- additionally the full :class:`TrialResult` per trial,
#:   with monitor report and lease ledger computed by the streaming
#:   observer pipeline (no trace is ever materialised, so worker memory
#:   stays flat regardless of the horizon);
#: * ``"full"``   -- like ``"stats"`` but through the legacy record-a-trace
#:   path (the post-hoc oracle; heavier, numbers identical).  The trace is
#:   dropped before the result leaves the worker.
PAYLOAD_KINDS = ("summary", "stats", "full")

#: Keep at most this many batch futures in flight per worker, so that
#: expanding a 100x campaign does not materialize every pending future up
#: front.
_INFLIGHT_PER_WORKER = 4

#: Largest replicate batch the auto heuristic will put in lockstep; beyond
#: this the vector win flattens while latency and memory keep growing.
_MAX_AUTO_BATCH = 64

#: Environment override for the lockstep break-even lane count.
BATCH_MIN_LANES_ENV_VAR = "REPRO_BATCH_MIN_LANES"

#: Below this many lanes the auto heuristic keeps per-trial dispatch even
#: with the batched kernel: micro-calibration (``benchmarks/bench_batched``)
#: shows the vectorized dispatch overhead dominating below ~16 lanes, so a
#: small cell is faster on the scalar path inside each worker.  Explicit
#: ``batch_size`` values are always honoured as given.
DEFAULT_BATCH_MIN_LANES = 16

#: Environment variable read by the worker-crash injection harness: a
#: positive integer N makes a pool worker SIGKILL itself when it picks up
#: its N-th batch task.  Used by the shared-memory crash-cleanup tests and
#: the CI smoke (a hard-killed worker must not leak ``/dev/shm`` segments).
#: Structured crash scripting lives in :mod:`repro.campaign.faults`.
CRASH_WORKER_ENV_VAR = "REPRO_CAMPAIGN_CRASH_WORKER"

#: Campaign-level engine default.  Direct engine construction stays on the
#: reference kernel (the executable specification); campaigns default to
#: the soaked compiled kernel.  ``REPRO_ENGINE=reference`` or
#: ``--engine reference`` are the escape hatches.
DEFAULT_CAMPAIGN_ENGINE = "compiled"

#: Default per-trial retry budget: a trial that fails this many times
#: *beyond* its first attempt is quarantined.
DEFAULT_MAX_RETRIES = 2

#: Default pool-respawn budget: more broken pools than this in one run
#: aborts the campaign with :class:`CampaignExecutionError` (the
#: checkpoint store still holds everything retired so far).
DEFAULT_MAX_RESPAWNS = 8

#: One dispatched batch: a campaign-cell index plus (index, replicate,
#: seed) triples of the chunk's runs.  Everything else a worker needs is in
#: the spec it received through the pool initializer.
_BatchTask = Tuple[int, Tuple[Tuple[int, int, int], ...]]

#: Worker-process state installed by :func:`_init_worker`.
_WORKER_CTX: tuple | None = None

#: The default trial runner: the paper's laser-tracheotomy case study.
#: :class:`~repro.campaign.spec.TrialSpec.runner` selects alternates from
#: :func:`_resolve_trial_runner`'s registry (e.g. ``"interlock"``).
TRIAL_RUNNER_DEFAULT = "tracheotomy"


class CampaignExecutionError(RuntimeError):
    """A campaign aborted after exhausting its recovery budget.

    Carries the checkpoint-store path (when one was attached) and a
    ready-to-paste ``--resume`` command so the operator can continue the
    run without reconstructing the invocation.
    """

    def __init__(self, message: str, *, store_path: str | None = None,
                 resume_command: str | None = None):
        """Build the error, appending resume instructions when possible.

        Args:
            message: What went wrong.
            store_path: Path of the attached checkpoint store, if any.
            resume_command: Exact shell command that resumes the run; a
                generic template is derived from ``store_path`` when the
                caller (e.g. a library user, not the CLI) cannot supply
                the original argv.
        """
        if store_path is not None and resume_command is None:
            resume_command = ("python -m repro.campaign <original arguments> "
                              f"--store {store_path} --resume")
        if store_path is not None:
            message = (f"{message}\ncheckpointed progress survives in "
                       f"{store_path}; resume with:\n  {resume_command}")
        super().__init__(message)
        self.store_path = store_path
        self.resume_command = resume_command


class CampaignInterrupted(BaseException):
    """A campaign was interrupted by SIGINT/SIGTERM (CLI signal handler).

    Derives from :class:`BaseException` (like :class:`KeyboardInterrupt`)
    so no recovery path in the supervisor can swallow it: an interrupt
    must always unwind through ``run_campaign``'s cleanup (which flushes
    the checkpoint store and unlinks shared memory) and out to the CLI.
    """

    def __init__(self, signum: int):
        """Record the delivering signal.

        Args:
            signum: The POSIX signal number that interrupted the run.
        """
        super().__init__(f"campaign interrupted by signal {signum}")
        self.signum = signum


class CampaignCancelled(BaseException):
    """A campaign was cancelled cooperatively through its ``stop`` callable.

    The campaign service's ``cancel``/``shutdown`` operations request this
    by flipping a flag the executor polls between batches.  Like
    :class:`CampaignInterrupted` it derives from :class:`BaseException` so
    no recovery path in the supervisor can swallow it: a cancel always
    unwinds through ``run_campaign``'s cleanup (which flushes the
    checkpoint store and unlinks shared memory) out to the caller, who
    owns the cancelled-job bookkeeping.  An attached store keeps every
    batch retired before the cancel, so a cancelled job is resumable.
    """

    def __init__(self, reason: str = "campaign cancelled"):
        """Record why the run was cancelled.

        Args:
            reason: Human-readable cancellation reason.
        """
        super().__init__(reason)
        self.reason = reason


class _EventLog(list):
    """Recovery-event list that additionally streams appends to a callback.

    ``run_campaign(..., on_event=...)`` swaps this in for the plain event
    list so the campaign service can fan recovery events out to ``watch``
    subscribers *as they happen* instead of after the run returns.
    """

    def __init__(self, callback: Callable[[str, str], None] | None = None):
        """Wrap an empty event list around an optional streaming callback.

        Args:
            callback: Invoked as ``callback(kind, detail)`` on every
                append; ``None`` degrades to a plain list.
        """
        super().__init__()
        self._callback = callback

    def append(self, event: Tuple[str, str]) -> None:
        """Record one ``(kind, detail)`` event and stream it onward.

        Args:
            event: The recovery event being logged.
        """
        super().append(event)
        if self._callback is not None:
            self._callback(*event)


@dataclasses.dataclass(frozen=True)
class _Pending:
    """A batch awaiting (re)dispatch, with its per-trial failure counts."""

    task: _BatchTask
    attempts: Tuple[int, ...]


@dataclasses.dataclass
class _Flight:
    """Book-keeping of one in-flight batch future."""

    pending: _Pending
    ticket: "shm_plane.PlaneTicket | None"
    deadline: float | None
    isolated: bool


def default_worker_count() -> int:
    """Return a sensible default worker count for this machine."""
    return max(1, os.cpu_count() or 1)


def resolve_batch_size(batch_size: int | None, spec: CampaignSpec,
                       workers: int, engine: str) -> int:
    """Resolve the replicate-batch size for one campaign run.

    ``None`` or ``0`` selects the auto heuristic: with the batched kernel,
    split each cell's replicates evenly across the workers (capped at
    ``_MAX_AUTO_BATCH`` lanes — the vector win saturates), unless the split
    lands below the lockstep break-even (``REPRO_BATCH_MIN_LANES``,
    default ``DEFAULT_BATCH_MIN_LANES``), where the vector dispatch
    overhead outweighs the win and per-trial dispatch is faster; with the
    scalar kernels there is nothing to put in lockstep, so dispatch per
    trial.

    Args:
        batch_size: The requested batch size (``None``/``0`` = auto).
        spec: The campaign being run (its largest cell bounds the split).
        workers: The worker-process count of the run.
        engine: The resolved simulation-kernel name.

    Returns:
        The concrete batch size, at least 1.

    Raises:
        ValueError: If an explicit ``batch_size`` is negative, or the
            ``REPRO_BATCH_MIN_LANES`` override is not a positive integer.
    """
    if batch_size:
        if batch_size < 1:
            raise ValueError("batch size must be at least 1")
        return int(batch_size)
    if engine != "batched":
        return 1
    largest_cell = max(t.effective_replicates for t in spec.trials)
    per_worker = -(-largest_cell // max(1, workers))  # ceil division
    if per_worker < min_lockstep_lanes():
        return 1
    return min(_MAX_AUTO_BATCH, per_worker)


def min_lockstep_lanes() -> int:
    """The smallest lane count worth vectorized lockstep (env-overridable)."""
    raw = os.environ.get(BATCH_MIN_LANES_ENV_VAR)
    if raw is None or not raw.strip():
        return DEFAULT_BATCH_MIN_LANES
    try:
        value = int(raw)
    except ValueError:
        value = 0
    if value < 1:
        raise ValueError(
            f"{BATCH_MIN_LANES_ENV_VAR} must be a positive integer, "
            f"got {raw!r}")
    return value


def _resolve_trial_runner(name: str) -> Callable[..., TrialResult]:
    """Look an alternate trial runner up by its registry name.

    Runners are resolved lazily (imported on first use inside the worker)
    so campaigns that never leave the default case study pay nothing.

    Args:
        name: The :class:`~repro.campaign.spec.TrialSpec.runner` value.

    Returns:
        A callable with the keyword signature ``(with_lease, seed,
        duration, engine, fault)`` returning a
        :class:`~repro.casestudy.emulation.TrialResult`.

    Raises:
        ValueError: If no runner is registered under ``name``.
    """
    if name == "interlock":
        from repro.casestudy.interlock import run_interlock_trial

        return run_interlock_trial
    raise ValueError(f"unknown trial runner {name!r}")


def execute_trial(config: CaseStudyConfig, campaign_duration: float | None,
                  run: TrialRun, payload: str = "summary",
                  engine: str | None = None,
                  fault: Callable[[], None] | None = None,
                  ) -> Tuple[int, TrialSummary, TrialResult | None]:
    """Execute one concrete trial (runs inside a worker process).

    Args:
        config: The campaign-wide case-study configuration.
        campaign_duration: The campaign-level duration default, if any.
        run: The concrete trial to execute (cell, replicate, seed).
        payload: What to return per trial (``"summary"``, ``"stats"``
            or ``"full"``).
        engine: Simulation-kernel override (``None`` = resolve default).
        fault: Optional zero-argument fault-injection hook, invoked after
            the case study is assembled and before the engine runs (see
            :mod:`repro.campaign.faults`).

    Returns:
        The run index (for order restoration), the slim summary, and —
        for the ``"stats"`` / ``"full"`` payloads — the complete
        :class:`TrialResult` (without its trace, which is memory heavy and
        scheduling sensitive).
    """
    if payload not in PAYLOAD_KINDS:
        raise ValueError(f"unknown payload kind {payload!r}")
    spec = run.spec
    duration = spec.duration if spec.duration is not None else campaign_duration
    if spec.runner != TRIAL_RUNNER_DEFAULT:
        runner = _resolve_trial_runner(spec.runner)
        result = runner(with_lease=spec.with_lease, seed=run.seed,
                        duration=duration, engine=engine, fault=fault)
        summary = TrialSummary.from_trial(run, result)
        return run.index, summary, (result if payload != "summary" else None)
    trial_config = spec.configure(config)
    channel = spec.channel.build(run.seed)
    surgeon = spec.surgeon.build() if spec.surgeon is not None else None
    result = run_trial(trial_config, with_lease=spec.with_lease, seed=run.seed,
                       duration=duration, channel=channel, surgeon=surgeon,
                       keep_trace=(payload == "full"), engine=engine,
                       fault=fault)
    if result.trace is not None:
        result.trace = None
    summary = TrialSummary.from_trial(run, result)
    return run.index, summary, (result if payload != "summary" else None)


def _batch_fault_hook(plan: FaultPlan | None, ctx: BatchContext | None,
                      runs_lite: Tuple[Tuple[int, int, int], ...],
                      ) -> Callable[[int], None] | None:
    """Build the per-trial fault hook of one batch from the fault plan.

    Args:
        plan: The run's fault plan (``None``/empty disables injection).
        ctx: Dispatch context carrying the batch's attempt counts.
        runs_lite: The batch's ``(index, replicate, seed)`` triples.

    Returns:
        A hook mapping a lane offset to a possible
        :class:`~repro.campaign.faults.InjectedTrialFault`, or ``None``
        when the plan scripts no in-trial faults.
    """
    if not plan:
        return None

    def hook(offset: int) -> None:
        index = runs_lite[offset][0]
        attempt = ctx.attempts[offset] if ctx is not None else 0
        if plan.raise_in_trial(index, attempt):
            raise InjectedTrialFault(
                f"injected fault in trial {index} (attempt {attempt + 1})")

    return hook


def execute_batch(spec: CampaignSpec, task: _BatchTask, payload: str,
                  engine: str, buffers=None,
                  plan: FaultPlan | None = None,
                  ctx: BatchContext | None = None,
                  ) -> List[Tuple[int, TrialSummary, TrialResult | None]]:
    """Execute one batch of same-cell replicates (runs inside a worker).

    With the batched kernel, multi-trial chunks run in vectorized lockstep
    through :func:`~repro.casestudy.emulation.run_trial_batch`; otherwise
    (and for the trace-scanning ``"full"`` payload, which needs per-trial
    traces) the chunk executes trial by trial — still amortizing the
    per-worker lowered-model cache and the task pickling.

    Args:
        spec: The campaign spec (provides the cell and base config).
        task: The ``(spec_index, runs)`` batch to execute.
        payload: Per-trial payload kind (``"summary"``/``"stats"``/``"full"``).
        engine: The resolved simulation-kernel name.
        buffers: Optional externally allocated engine storage (a
            shared-memory plane's lane range) for the lockstep path;
            ``None`` keeps private allocations.  Never changes results.
        plan: Optional fault plan; its ``raise`` clauses become the
            per-trial fault hooks of this batch.
        ctx: Dispatch context of the batch (dispatch number, per-trial
            attempt counts); lets transient ``raise`` clauses expire.

    Returns:
        One ``(index, summary, result-or-None)`` triple per trial of the
        batch, in replicate order.
    """
    spec_index, runs_lite = task
    trial = spec.trials[spec_index]
    fault_for = _batch_fault_hook(plan, ctx, runs_lite)
    if (engine == "batched" and len(runs_lite) > 1 and payload != "full"
            and trial.runner == TRIAL_RUNNER_DEFAULT):
        trial_config = trial.configure(spec.config)
        duration = trial.duration if trial.duration is not None else spec.duration
        seeds = [seed for _, _, seed in runs_lite]
        results = run_trial_batch(
            trial_config, with_lease=trial.with_lease, seeds=seeds,
            duration=duration, channel_builder=trial.channel.build,
            surgeon_builder=((lambda _seed: trial.surgeon.build())
                             if trial.surgeon is not None else None),
            buffers=buffers, fault=fault_for)
        out = []
        for (index, replicate, seed), result in zip(runs_lite, results):
            run = TrialRun(index=index, spec_index=spec_index,
                           replicate=replicate, seed=seed, spec=trial)
            summary = TrialSummary.from_trial(run, result)
            out.append((index, summary,
                        result if payload != "summary" else None))
        return out
    return [execute_trial(spec.config, spec.duration,
                          TrialRun(index=index, spec_index=spec_index,
                                   replicate=replicate, seed=seed, spec=trial),
                          payload, engine,
                          fault=(None if fault_for is None
                                 else (lambda off=offset: fault_for(off))))
            for offset, (index, replicate, seed) in enumerate(runs_lite)]


def _init_worker(spec: CampaignSpec, payload: str, engine: str,
                 plan: FaultPlan | None = None) -> None:
    """Pool initializer: receive the campaign constants once per worker."""
    global _WORKER_CTX
    _WORKER_CTX = (spec, payload, engine, plan)


#: Tasks this worker process has picked up (crash-injection bookkeeping).
_WORKER_TASKS = 0


def _maybe_crash_worker() -> None:
    """SIGKILL this worker on its N-th task if the crash harness asks for it."""
    global _WORKER_TASKS
    raw = os.environ.get(CRASH_WORKER_ENV_VAR)
    if not raw:
        return
    _WORKER_TASKS += 1
    if _WORKER_TASKS >= int(raw):
        os.kill(os.getpid(), signal.SIGKILL)


def _execute_batch_in_worker(task: _BatchTask,
                             token: "shm_plane.ShmToken | None" = None,
                             ctx: BatchContext | None = None):
    """Task entry point inside a pool worker (context from the initializer).

    Without a token this is the classic pickled path: the full result
    triples travel back through the pool's pipe.  With a token, the worker
    binds the task's shared-plane lane range (if any) as the engine's
    backing storage, writes each trial's summary record straight into the
    shared results ring, and returns only the trial count — plus, for the
    ``"stats"`` payload, the pickled ``TrialResult`` objects, whose
    monitor reports and lease ledgers have no fixed-width encoding.

    This is also where the dispatch-keyed fault clauses land: ``crash``
    SIGKILLs the worker before any work happens, ``hang`` sleeps past the
    supervisor's batch deadline, and ``corrupt`` stamps the ring records
    with a *negated* generation — generations are always positive, so a
    corrupted stamp can never collide with a later legitimate allocation
    of the same slots.

    Args:
        task: The batch to execute.
        token: Optional shared-memory reservation of the batch.
        ctx: Dispatch context (dispatch number + attempt counts) used by
            the fault plan's injection points.
    """
    _maybe_crash_worker()
    spec, payload, engine, plan = _WORKER_CTX
    if plan is not None and ctx is not None:
        if plan.crash_at(ctx.dispatch):
            os.kill(os.getpid(), signal.SIGKILL)
        hang = plan.hang_secs(ctx.dispatch)
        if hang > 0:
            time.sleep(hang)
    if token is None:
        return execute_batch(spec, task, payload, engine, plan=plan, ctx=ctx)
    buffers = None
    if token.plane_name is not None:
        plane = shm_plane.attach_plane(token.plane_name, token.plane_lanes,
                                       token.state_columns,
                                       token.cross_columns)
        buffers = plane.buffers(token.lane_start, token.lane_count)
    results = execute_batch(spec, task, payload, engine, buffers=buffers,
                            plan=plan, ctx=ctx)
    stamp = token.generation
    if plan is not None and ctx is not None and plan.corrupt_at(ctx.dispatch):
        stamp = -token.generation
    ring = shm_plane.attach_ring(token.ring_name, token.ring_capacity)
    for offset, (index, summary, _result) in enumerate(results):
        ring.write(token.ring_start + offset, stamp, index, summary)
    if payload == "summary":
        return len(results), None
    return len(results), [result for _, _, result in results]


#: Per-worker cache of service-job contexts, keyed by job token.  The
#: shared pool serves one job at a time, so loading a new job's context
#: evicts the previous one (and with it the old spec's lowered-model
#: cache keys go cold naturally).
_SERVICE_CTX: Dict[int, tuple] = {}


def _watch_parent(parent_pid: int) -> None:
    """Kill this worker the moment its service parent disappears.

    Shared-pool workers outlive individual campaigns, so a SIGKILLed
    service daemon would otherwise leave them orphaned forever, blocked on
    the pool's call queue.  Polling the parent pid is cheap, portable and
    exactly as prompt as the 1-second period.

    Args:
        parent_pid: The pid of the process that owns the pool.
    """
    while True:
        if os.getppid() != parent_pid:
            os._exit(0)
        time.sleep(1.0)


def _init_service_worker(parent_pid: int) -> None:
    """Pool initializer of the shared service pool (job-agnostic).

    Unlike :func:`_init_worker` this receives no campaign context — jobs
    arrive later, each shipping its context once through a spool file (see
    :meth:`CampaignPool.lease`) — so one warm pool serves many campaigns
    without respawning.

    Args:
        parent_pid: Pid of the pool-owning service process, watched so a
            hard-killed daemon never leaks worker processes.
    """
    global _WORKER_CTX
    _WORKER_CTX = None
    threading.Thread(target=_watch_parent, args=(parent_pid,),
                     daemon=True).start()


def _load_service_ctx(ctx_ref: Tuple[int, str]) -> tuple:
    """Load (and cache) one service job's worker context.

    Args:
        ctx_ref: ``(job_token, spool_path)`` naming the pickled
            ``(spec, payload, engine, plan)`` tuple of the job.

    Returns:
        The job's worker-context tuple.
    """
    token, path = ctx_ref
    ctx = _SERVICE_CTX.get(token)
    if ctx is None:
        with open(path, "rb") as handle:
            ctx = pickle.load(handle)
        _SERVICE_CTX.clear()
        _SERVICE_CTX[token] = ctx
    return ctx


def _run_service_batch(ctx_ref: Tuple[int, str], task: _BatchTask,
                       token: "shm_plane.ShmToken | None" = None,
                       ctx: BatchContext | None = None):
    """Task entry point on the shared service pool.

    Installs the job's context (loaded once per worker per job, then
    cached by token) and delegates to :func:`_execute_batch_in_worker`, so
    the execution semantics — shared-memory path, fault injection, crash
    harness — are identical to a dedicated pool's.

    Args:
        ctx_ref: The job-context reference (token + spool path).
        task: The batch to execute.
        token: Optional shared-memory reservation of the batch.
        ctx: Dispatch context used by the fault plan's injection points.
    """
    global _WORKER_CTX
    _WORKER_CTX = _load_service_ctx(ctx_ref)
    return _execute_batch_in_worker(task, token, ctx)


class CampaignPool:
    """A warm worker pool shared by consecutive campaign runs.

    The campaign service holds exactly one of these: every queued job
    executes on the same worker processes (``run_campaign(pool=...)``), so
    jobs after the first skip process spin-up entirely and inherit warm
    per-process lowered-model caches.  Per-job context travels through a
    pickled spool file that each worker loads lazily on its first batch of
    the job — the pool itself is job-agnostic and never restarts between
    jobs.

    The executor's self-healing paths keep working: when the supervisor
    kills a broken/hung pool, the job's lease transparently respawns the
    shared executor, and subsequent jobs use the replacement.
    """

    def __init__(self, max_workers: int):
        """Create the pool shell (workers spawn on first use).

        Args:
            max_workers: Worker-process count of the shared pool.

        Raises:
            ValueError: If ``max_workers`` is not positive.
        """
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = int(max_workers)
        self._executor: ProcessPoolExecutor | None = None
        self._spool = tempfile.mkdtemp(prefix="repro-pool-")
        self._job_seq = 0

    def worker_pids(self) -> Tuple[int, ...]:
        """Return the pids of the live worker processes, sorted.

        Returns:
            The worker pids (empty before the first job spawns workers).
        """
        if self._executor is None:
            return ()
        procs = (getattr(self._executor, "_processes", None) or {}).values()
        return tuple(sorted(proc.pid for proc in procs))

    def _ensure(self) -> ProcessPoolExecutor:
        """Return the live shared executor, spawning it if needed."""
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_init_service_worker, initargs=(os.getpid(),))
        return self._executor

    def lease(self, spec: CampaignSpec, payload: str, engine: str,
              plan: FaultPlan | None) -> "_PoolLease":
        """Issue one campaign run's handle on the shared pool.

        Writes the job's worker context to a spool file (shipped by path,
        loaded once per worker) and returns the lease the executor wires
        into its supervisor in place of a dedicated pool.

        Args:
            spec: The campaign about to run.
            payload: The run's payload mode.
            engine: The resolved simulation-kernel name.
            plan: The run's fault plan, if any.

        Returns:
            The job's pool lease.
        """
        self._job_seq += 1
        path = os.path.join(self._spool, f"job-{self._job_seq}.ctx")
        with open(path, "wb") as handle:
            pickle.dump((spec, payload, engine, plan), handle)
        return _PoolLease(self, self._job_seq, path)

    def shutdown(self, *, kill: bool = False) -> None:
        """Shut the shared pool down and remove its spool directory.

        Args:
            kill: ``False`` waits for in-flight work; ``True`` SIGKILLs
                the workers (service hard-stop).
        """
        executor, self._executor = self._executor, None
        _shutdown_pool(executor, kill=kill)
        shutil.rmtree(self._spool, ignore_errors=True)


class _PoolLease:
    """One campaign run's view of a shared :class:`CampaignPool`.

    Adapts the shared pool to the supervisor's contract: ``make_pool``
    returns the live shared executor (respawning it only when the
    supervisor killed the previous one), and ``submit`` routes batches
    through :func:`_run_service_batch` so workers pick the job's context
    up from the spool file.
    """

    def __init__(self, pool: CampaignPool, token: int, ctx_path: str):
        """Bind the lease to its pool and spooled job context.

        Args:
            pool: The shared pool.
            token: The job token keying the workers' context cache.
            ctx_path: Path of the spooled worker-context pickle.
        """
        self.pool = pool
        self.token = token
        self.ctx_path = ctx_path
        self._issued: ProcessPoolExecutor | None = None

    def make_pool(self) -> ProcessPoolExecutor:
        """Return the executor for this run (the supervisor's factory).

        The supervisor calls this once at start and again right after
        killing a broken/hung pool: if the executor it killed is still
        the shared one, it is dropped so a fresh pool replaces it — for
        this job and every one after it.

        Returns:
            The live shared executor.
        """
        if self._issued is not None and self._issued is self.pool._executor:
            self.pool._executor = None
        self._issued = self.pool._ensure()
        return self._issued

    def submit(self, pool: ProcessPoolExecutor, task: _BatchTask,
               token, ctx: BatchContext | None):
        """Submit one batch through the service entry point.

        Args:
            pool: The executor issued by :meth:`make_pool`.
            task: The batch to dispatch.
            token: Optional shared-memory reservation token.
            ctx: The batch's dispatch context.

        Returns:
            The batch future.
        """
        return pool.submit(_run_service_batch, (self.token, self.ctx_path),
                           task, token, ctx)

    def close(self) -> None:
        """Delete the job's spool file (workers keep their cached copy)."""
        try:
            os.unlink(self.ctx_path)
        except OSError:
            pass


def _chunk_runs(runs: Sequence[TrialRun], batch_size: int) -> List[_BatchTask]:
    """Chunk expanded runs into same-cell batches of at most ``batch_size``."""
    tasks: List[_BatchTask] = []
    current: List[TrialRun] = []
    for run in runs:
        if current and (run.spec_index != current[0].spec_index
                        or len(current) >= batch_size):
            tasks.append((current[0].spec_index,
                          tuple((r.index, r.replicate, r.seed) for r in current)))
            current = []
        current.append(run)
    if current:
        tasks.append((current[0].spec_index,
                      tuple((r.index, r.replicate, r.seed) for r in current)))
    return tasks


def _resolve_shm(shm: bool | None, engine: str, payload: str,
                 pooled: bool) -> bool:
    """Decide whether the shared-memory fast path runs.

    ``None`` auto-enables for pooled batched runs; an explicit ``True``
    extends it to scalar-engine pools (ring only).  Either way the path
    silently degrades to pickling when ``shared_memory`` is unavailable,
    the run is serial (nothing crosses a process boundary), or the payload
    is ``"full"`` (traces have no fixed-width encoding).
    """
    if shm is False:
        return False
    if not (pooled and payload != "full"
            and shm_plane.shared_memory_available()):
        return False
    return True if shm else engine == "batched"


def _cell_plane_geometry(spec: CampaignSpec,
                         spec_index: int) -> Tuple[int, int]:
    """Column counts of one campaign cell's batched state plane."""
    trial = spec.trials[spec_index]
    config = trial.configure(spec.config)
    _, lowered = _lowered_case_study(config, trial.with_lease)
    return build_batched_tables(lowered).plane_columns()


def _handle_batch_failure(pending: _Pending, exc: BaseException, *,
                          max_retries: int,
                          requeue: Callable[[_Pending], None],
                          quarantine: Callable[[_Pending, BaseException], None],
                          events: List[Tuple[str, str]]) -> None:
    """Charge a failed batch and decide its fate: bisect, retry or give up.

    Every trial of the batch is charged one failed attempt.  Multi-trial
    batches are always *bisected* — never quarantined wholesale, so an
    innocent replicate sharing a batch with a poison trial keeps its full
    retry budget as the halves re-run.  A failing singleton retries until
    its budget (``max_retries`` beyond the first attempt) is exhausted,
    then goes to ``quarantine``.

    Args:
        pending: The failed batch with its pre-failure attempt counts.
        exc: The failure.
        max_retries: Per-trial retry budget.
        requeue: Front-of-queue scheduler for the batch's successors
            (called right-half first so the left half runs first).
        quarantine: Sink for a trial whose budget is exhausted.
        events: Recovery-event log to append to.
    """
    spec_index, runs_lite = pending.task
    attempts = tuple(count + 1 for count in pending.attempts)
    if len(runs_lite) > 1:
        mid = len(runs_lite) // 2
        events.append((
            "bisect",
            f"batch of {len(runs_lite)} trials (cell {spec_index}) failed "
            f"({type(exc).__name__}: {exc}); splitting to isolate the "
            f"offender"))
        requeue(_Pending((spec_index, runs_lite[mid:]), attempts[mid:]))
        requeue(_Pending((spec_index, runs_lite[:mid]), attempts[:mid]))
        return
    if attempts[0] > max_retries:
        quarantine(_Pending(pending.task, attempts), exc)
        return
    events.append((
        "retry",
        f"trial {runs_lite[0][0]} failed attempt {attempts[0]} "
        f"({type(exc).__name__}: {exc}); retrying"))
    requeue(_Pending(pending.task, attempts))


def _shutdown_pool(pool: ProcessPoolExecutor | None, *, kill: bool) -> None:
    """Shut a pool down, gracefully or by force.

    Args:
        pool: The pool (``None`` is a no-op).
        kill: ``False`` waits for in-flight work; ``True`` SIGKILLs every
            worker still alive — the only way to get rid of a hung worker,
            since the pool API has no per-worker cancellation.
    """
    if pool is None:
        return
    if not kill:
        pool.shutdown(wait=True)
        return
    procs = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        if proc.is_alive():
            proc.kill()
    for proc in procs:
        proc.join(timeout=5.0)


class _PoolSupervisor:
    """Self-healing scheduler of one campaign's pooled execution.

    Owns the dispatch queue, the in-flight window, the pool lifecycle and
    every recovery decision (see the module docs for the failure model).
    The result/checkpoint plumbing stays in ``run_campaign``'s closures —
    the supervisor only decides *what runs when* and *who is to blame*
    when something breaks.
    """

    #: Extra seconds granted past a batch deadline before declaring a
    #: hang, absorbing scheduler jitter around the ``wait()`` timeout.
    _DEADLINE_SLACK = 0.05

    def __init__(self, *, tasks: Sequence[_BatchTask], window: int,
                 make_pool: Callable[[], ProcessPoolExecutor],
                 acquire: Callable[[_BatchTask], tuple],
                 publish: Callable[[_BatchTask, object, object], None],
                 release: Callable[[object, int], None],
                 quarantine: Callable[[_Pending, BaseException], None],
                 events: List[Tuple[str, str]],
                 max_retries: int, batch_deadline: float | None,
                 max_respawns: int, store_path: str | None,
                 submit: Callable | None = None, owns_pool: bool = True,
                 stop: Callable[[], bool] | None = None):
        """Wire the supervisor to one campaign run.

        Args:
            tasks: The batches to execute (initial attempt counts zero).
            window: Maximum batches in flight at once.
            make_pool: Factory for a fresh, initialized worker pool.
            acquire: Shared-memory reservation hook; returns a
                ``(ticket, token)`` pair (both ``None`` = pickled path).
            publish: Result sink (checkpoint + aggregate) for a finished
                batch: ``publish(task, ticket, outcome)``.
            release: Returns a ticket's shared-memory reservation without
                consuming results (failed/rescheduled flights).
            quarantine: Sink for trials whose retry budget is exhausted.
            events: Shared recovery-event log.
            max_retries: Per-trial retry budget.
            batch_deadline: Seconds an in-flight batch may take before its
                worker is declared hung (``None`` disables the watchdog).
            max_respawns: Pool-respawn budget for the whole run.
            store_path: Checkpoint-store path for error messages, if any.
            submit: Batch dispatcher ``submit(pool, task, token, ctx)``;
                ``None`` submits :func:`_execute_batch_in_worker`
                directly (dedicated-pool runs).
            owns_pool: Whether this run owns the pool's lifecycle.  With
                an externally owned (service) pool, the supervisor never
                shuts it down on completion — only a recovery respawn
                replaces it, through ``make_pool``.
            stop: Cooperative-cancel poll; returning ``True`` between
                batches raises :class:`CampaignCancelled`.
        """
        self.queue: Deque[_Pending] = deque(
            _Pending(task, (0,) * len(task[1])) for task in tasks)
        self.isolation: Deque[_Pending] = deque()
        self.inflight: Dict[object, _Flight] = {}
        self.window = window
        self.make_pool = make_pool
        self.acquire = acquire
        self.publish = publish
        self.release = release
        self.quarantine = quarantine
        self.events = events
        self.max_retries = max_retries
        self.batch_deadline = batch_deadline
        self.max_respawns = max_respawns
        self.store_path = store_path
        self.submit = submit or (
            lambda pool, task, token, ctx:
            pool.submit(_execute_batch_in_worker, task, token, ctx))
        self.owns_pool = owns_pool
        self.stop = stop
        self.dispatch = 0
        self.respawns = 0

    # -- scheduling -------------------------------------------------------

    def run(self) -> None:
        """Execute every batch to completion (or quarantine)."""
        pool = self.make_pool()
        try:
            while self.queue or self.isolation or self.inflight:
                self._check_stop()
                pool = self._fill(pool)
                if not self.inflight:
                    continue
                done, _ = wait(frozenset(self.inflight),
                               timeout=self._wait_timeout(),
                               return_when=FIRST_COMPLETED)
                for future in done:
                    pool = self._retire(pool, future)
                pool = self._check_deadlines(pool)
            if self.owns_pool:
                _shutdown_pool(pool, kill=False)
        except BaseException:
            if self.owns_pool:
                _shutdown_pool(pool, kill=True)
            else:
                # An externally owned pool stays warm for the next job;
                # just drop this run's pending work.  Batches already on a
                # worker run to completion into discarded futures, which
                # is harmless: nothing unpublished reaches the aggregates
                # or the store, so a resume re-runs them exactly.
                for future in self.inflight:
                    future.cancel()
            raise

    def _check_stop(self) -> None:
        """Raise :class:`CampaignCancelled` when a cancel was requested."""
        if self.stop is not None and self.stop():
            raise CampaignCancelled()

    def _capacity(self) -> int:
        """Current in-flight cap: 1 while isolating suspects, else window."""
        if self.isolation or any(f.isolated for f in self.inflight.values()):
            return 1
        return self.window

    def _fill(self, pool: ProcessPoolExecutor) -> ProcessPoolExecutor:
        """Top the in-flight window up from the isolation/regular queues."""
        while len(self.inflight) < self._capacity():
            isolated = bool(self.isolation)
            source = self.isolation if isolated else self.queue
            if not source:
                break
            pending = source.popleft()
            try:
                self._submit_one(pool, pending, isolated)
            except BrokenProcessPool as exc:
                source.appendleft(pending)
                pool = self._handle_pool_break(pool, exc)
        return pool

    def _submit_one(self, pool: ProcessPoolExecutor, pending: _Pending,
                    isolated: bool) -> None:
        """Dispatch one batch into the pool (fresh dispatch number)."""
        ticket, token = self.acquire(pending.task)
        self.dispatch += 1
        ctx = BatchContext(dispatch=self.dispatch, attempts=pending.attempts)
        try:
            future = self.submit(pool, pending.task, token, ctx)
        except BrokenProcessPool:
            self.release(ticket, len(pending.task[1]))
            raise
        deadline = (time.monotonic() + self.batch_deadline
                    if self.batch_deadline is not None else None)
        self.inflight[future] = _Flight(pending=pending, ticket=ticket,
                                        deadline=deadline, isolated=isolated)

    #: Poll period of the cancel check while batches are in flight.
    _STOP_POLL = 0.2

    def _wait_timeout(self) -> float | None:
        """Sleep budget of the next ``wait()``: until the earliest deadline.

        With a ``stop`` poll attached the budget is additionally capped at
        :data:`_STOP_POLL` seconds, so a cancel request interrupts a run
        promptly instead of waiting out a long batch.
        """
        deadlines = [flight.deadline for flight in self.inflight.values()
                     if flight.deadline is not None]
        timeout = None
        if deadlines:
            timeout = max(0.0, min(deadlines) - time.monotonic()
                          + self._DEADLINE_SLACK)
        if self.stop is not None:
            timeout = (self._STOP_POLL if timeout is None
                       else min(timeout, self._STOP_POLL))
        return timeout

    # -- retirement and blame ---------------------------------------------

    def _fail(self, pending: _Pending, exc: BaseException) -> None:
        """Charge a precisely-blamed failure (bisect / retry / quarantine).

        Successors go to the front of the isolation queue: they re-run one
        at a time, so any further failure stays precisely attributable.
        """
        _handle_batch_failure(pending, exc, max_retries=self.max_retries,
                              requeue=self.isolation.appendleft,
                              quarantine=self.quarantine, events=self.events)

    def _release_flight(self, flight: _Flight) -> None:
        """Return a flight's shared-memory reservation unconsumed."""
        self.release(flight.ticket, len(flight.pending.task[1]))

    def _publish_flight(self, flight: _Flight, outcome) -> None:
        """Publish a finished flight, demoting ring corruption to a retry."""
        try:
            self.publish(flight.pending.task, flight.ticket, outcome)
        except shm_plane.ShmError as exc:
            # The worker reported success but its ring records are bad
            # (stale/corrupted generation stamps).  The reservation is
            # recycled and the batch re-runs; its results were never
            # published, so aggregates stay exact.
            self._release_flight(flight)
            self._fail(flight.pending, exc)

    def _retire(self, pool: ProcessPoolExecutor,
                future) -> ProcessPoolExecutor:
        """Retire one completed future (may replace the pool)."""
        flight = self.inflight.pop(future, None)
        if flight is None:  # already drained by a recovery sweep
            return pool
        exc = future.exception()
        if exc is None:
            self._publish_flight(flight, future.result())
            return pool
        if isinstance(exc, BrokenProcessPool):
            # Put the flight back so the break handler sees the complete
            # in-flight picture when it assigns blame.
            self.inflight[future] = flight
            return self._handle_pool_break(pool, exc)
        self._release_flight(flight)
        self._fail(flight.pending, exc)
        return pool

    def _handle_pool_break(self, pool: ProcessPoolExecutor,
                           exc: BaseException) -> ProcessPoolExecutor:
        """Recover from a broken pool: salvage, assign blame, respawn.

        Finished flights are published as usual (their results are safe).
        If exactly one flight was actually lost, the blame is precise and
        it is charged a failure; with several suspects the crash could
        have been any of them, so they re-run one at a time through the
        isolation queue *without* being charged — an innocent batch never
        loses retry budget to a neighbour's crash.
        """
        suspects: List[_Pending] = []
        for future, flight in list(self.inflight.items()):
            if future.done() and future.exception() is None:
                self._publish_flight(flight, future.result())
                continue
            future.cancel()
            broken = future.done() and isinstance(future.exception(),
                                                  BrokenProcessPool)
            self._release_flight(flight)
            if broken or not future.done():
                suspects.append(flight.pending)
            else:  # a real (pickled) exception: precise, pool break or not
                self._fail(flight.pending, future.exception())
        self.inflight.clear()
        if len(suspects) == 1:
            self._fail(suspects[0], exc)
        elif suspects:
            self.events.append((
                "pool-break",
                f"{len(suspects)} batches in flight when the pool broke; "
                f"re-running them in isolation to assign blame"))
            for pending in reversed(suspects):
                self.isolation.appendleft(pending)
        return self._respawn(pool, "pool break", exc)

    def _check_deadlines(self, pool: ProcessPoolExecutor,
                         ) -> ProcessPoolExecutor:
        """Kill the pool if any in-flight batch blew its deadline."""
        if self.batch_deadline is None or not self.inflight:
            return pool
        now = time.monotonic()
        hung = {future for future, flight in self.inflight.items()
                if not future.done() and flight.deadline is not None
                and now >= flight.deadline}
        if not hung:
            return pool
        # A hung worker cannot be cancelled individually; salvage every
        # finished flight, charge the hung ones, resubmit the innocent
        # ones unpenalized, and replace the pool.
        for future, flight in list(self.inflight.items()):
            if future.done() and future.exception() is None:
                self._publish_flight(flight, future.result())
                continue
            future.cancel()
            self._release_flight(flight)
            if future in hung:
                self.events.append((
                    "deadline-kill",
                    f"batch of {len(flight.pending.task[1])} trials exceeded "
                    f"the {self.batch_deadline:g}s deadline; killing its "
                    f"worker"))
                self._fail(flight.pending,
                           TimeoutError(f"batch exceeded deadline "
                                        f"{self.batch_deadline:g}s"))
            elif future.done():  # pickled exception: precise failure
                self._fail(flight.pending, future.exception())
            else:  # innocent bystander: reschedule without charge
                self.queue.appendleft(flight.pending)
        self.inflight.clear()
        return self._respawn(pool, "hung-worker kill",
                             TimeoutError("batch deadline exceeded"))

    def _respawn(self, pool: ProcessPoolExecutor, why: str,
                 exc: BaseException) -> ProcessPoolExecutor:
        """Replace a dead/poisoned pool, against the respawn budget."""
        _shutdown_pool(pool, kill=True)
        self.respawns += 1
        if self.respawns > self.max_respawns:
            raise CampaignExecutionError(
                f"worker pool failed {self.respawns} times (last: {why}: "
                f"{exc}); respawn budget ({self.max_respawns}) exhausted",
                store_path=self.store_path) from exc
        self.events.append(
            ("pool-respawn", f"respawn #{self.respawns} after {why}"))
        return self.make_pool()


def run_campaign(spec: CampaignSpec, *, seed: int = 0, max_workers: int = 1,
                 payload: str = "summary",
                 engine: str | None = None,
                 batch_size: int | None = None,
                 on_result: Callable[[TrialSummary], None] | None = None,
                 store: CampaignStore | str | os.PathLike | None = None,
                 resume: bool = False,
                 shm: bool | None = None,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 batch_deadline: float | None = None,
                 max_respawns: int = DEFAULT_MAX_RESPAWNS,
                 fault_plan: "FaultPlan | str | None" = None,
                 pool: CampaignPool | None = None,
                 stop: Callable[[], bool] | None = None,
                 on_event: Callable[[str, str], None] | None = None,
                 ) -> CampaignResult:
    """Run a whole campaign, serially or across worker processes.

    Args:
        spec: The campaign description.
        seed: Master seed; every trial derives its own sub-seed from it
            (unless the spec pins explicit seeds).
        max_workers: Worker processes; ``1`` runs the trials serially in
            this process (no pool, no pickling).
        payload: ``"summary"`` keeps only slim per-trial statistics;
            ``"stats"`` additionally collects each trial's
            :class:`~repro.casestudy.emulation.TrialResult` computed by the
            streaming observer pipeline (trace-free, flat memory);
            ``"full"`` collects the same results through the legacy
            record-a-trace path.
        engine: Simulation kernel executing the trials (``"reference"`` /
            ``"compiled"`` / ``"batched"``); ``None`` defers to
            ``REPRO_ENGINE`` and then to the compiled kernel (campaigns
            default fast; the reference engine remains the escape hatch).
            All kernels are bit-identical, so this only affects throughput.
        batch_size: Replicates of one cell dispatched (and, with the
            batched kernel, executed in lockstep) as one unit.  ``None`` /
            ``0`` = auto: per-trial dispatch for scalar kernels, an even
            per-worker split of each cell (at most 64 lanes) for the
            batched kernel.
        on_result: Optional streaming callback, fired once per trial —
            first for replayed checkpoints in trial order, then for live
            trials in completion order (useful for progress reporting;
            aggregation itself never depends on completion order).
        store: Optional durable checkpoint store — a
            :class:`~repro.campaign.store.CampaignStore` or a path to one.
            Retired batches are committed to it before they are published,
            so a crashed run can continue where it stopped.  A path is
            opened (and closed) by this call; a store instance stays open.
        resume: Replay the checkpointed trials found in ``store`` instead
            of rejecting a non-empty store, then execute only the
            remainder.  Aggregates are bit-identical to an uninterrupted
            run for any engine, batch size and worker count.  Trials
            quarantined by the interrupted run stay quarantined.
        shm: Shared-memory fast path: workers run batched lanes on a
            parent-owned shared state plane (so one cell's batch spans
            workers) and publish per-trial statistics as fixed-width
            records in a shared results ring instead of pickling them
            through the pool's pipe.  ``None`` (default) auto-enables it
            for multi-worker batched runs; ``True`` forces it on wherever
            possible (including scalar-engine pools, ring only);
            ``False`` disables it.  The path silently falls back to
            pickling when ``multiprocessing.shared_memory`` is
            unavailable, the run is serial, or ``payload="full"`` — and
            per task when the ring/plane is momentarily exhausted.
            Results are bit-identical in every mode.
        max_retries: How many times a failing trial is retried beyond its
            first attempt before it is quarantined (recorded as a
            :class:`~repro.campaign.faults.TrialFailure` and excluded
            from the aggregates, which otherwise stay bit-identical to a
            clean run).
        batch_deadline: Seconds an in-flight batch may take before its
            worker is declared hung and killed (pooled runs only;
            ``None`` disables the watchdog).
        max_respawns: How many pool respawns (worker crashes, hung-worker
            kills) the run tolerates before aborting with
            :class:`CampaignExecutionError`.
        fault_plan: Deterministic fault-injection plan — a
            :class:`~repro.campaign.faults.FaultPlan`, a plan string, or
            ``None`` to defer to the ``REPRO_FAULT_PLAN`` environment
            variable (the usual case: no faults).
        pool: Externally owned warm :class:`CampaignPool` (service mode).
            The run executes on its workers — even a single-task campaign
            goes through the pooled path, so consecutive jobs share one
            set of worker processes — and never shuts it down;
            ``max_workers`` is ignored in favour of the pool's size.
        stop: Cooperative-cancel poll, checked between batches; returning
            ``True`` raises :class:`CampaignCancelled` after the store is
            flushed and shared memory unlinked, leaving a resumable
            checkpoint prefix.
        on_event: Optional streaming counterpart of ``recovery_events``:
            invoked as ``on_event(kind, detail)`` the moment an event is
            recorded (the service fans these out to ``watch``
            subscribers).  The final result still carries the full tuple.

    Returns:
        The ordered, aggregated :class:`CampaignResult`.

    Raises:
        ValueError: If ``payload``, ``max_workers``, ``max_retries``,
            ``batch_deadline`` or ``max_respawns`` is invalid.
        CampaignStoreError: If ``store`` belongs to a different campaign,
            a different master seed or payload mode, or holds checkpoints
            while ``resume`` is false.
        CampaignExecutionError: If the pool-respawn budget is exhausted.
        CampaignCancelled: If ``stop`` returned ``True`` mid-run.
    """
    if payload not in PAYLOAD_KINDS:
        raise ValueError(f"unknown payload kind {payload!r}")
    if max_workers < 1:
        raise ValueError("max_workers must be at least 1")
    if max_retries < 0:
        raise ValueError("max_retries must be non-negative")
    if max_respawns < 0:
        raise ValueError("max_respawns must be non-negative")
    if batch_deadline is not None and batch_deadline <= 0:
        raise ValueError("batch_deadline must be positive")
    plan = resolve_fault_plan(fault_plan)
    resolved_engine = resolve_engine_kind(engine,
                                          default=DEFAULT_CAMPAIGN_ENGINE)
    runs = spec.expand(seed)
    summaries: List[TrialSummary | None] = [None] * len(runs)
    full: List[TrialResult | None] = [None] * len(runs)
    quarantined: List[TrialFailure] = []
    events: List[Tuple[str, str]] = _EventLog(on_event)
    recovery = RecoveryStateMachine()

    own_store: CampaignStore | None = None
    if store is None or isinstance(store, CampaignStore):
        store_obj: CampaignStore | None = store
    else:
        store_obj = own_store = CampaignStore(store)
    if store_obj is not None and plan is not None:
        store_obj.set_fault_plan(plan)

    def quarantine(pending: _Pending, exc: BaseException) -> None:
        """Record a trial that exhausted its retry budget and move on."""
        spec_index, runs_lite = pending.task
        index, replicate, seed_value = runs_lite[0]
        failure = TrialFailure(
            trial_index=index, label=spec.trials[spec_index].label,
            replicate=replicate, seed=seed_value,
            attempts=pending.attempts[0], kind=type(exc).__name__,
            message=str(exc) or type(exc).__name__)
        if store_obj is not None:
            store_obj.record_failure(failure)
        quarantined.append(failure)
        events.append(("quarantine", failure.describe()))

    def _publish(index: int, summary: TrialSummary,
                 result: "TrialResult | None") -> None:
        """Publish one finished trial: aggregates, then the callback.

        The single publication path for replayed, pickled and
        shared-memory results — everything the caller observes (the
        ordered aggregates and the ``on_result`` stream) flows through
        here, which is also where the service's event fan-out hooks in.
        """
        summaries[index] = summary
        full[index] = result
        if on_result is not None:
            on_result(summary)

    session: shm_plane.ShmSession | None = None
    try:
        live_runs: Sequence[TrialRun] = runs
        replayed_count = 0
        if store_obj is not None:
            replayed = store_obj.begin(spec, seed, payload, resume=resume)
            if replayed:
                recovery.advance(RecoveryStage.REPLAYING)
            for index, summary, result in replayed:
                if not 0 <= index < len(runs) or summaries[index] is not None:
                    raise CampaignStoreError(
                        f"store replayed an impossible trial index {index}")
                _publish(index, summary, result)
                replayed_count += 1
            done_indices = {index for index, _, _ in replayed}
            for failure in store_obj.failures():
                # A trial the interrupted run already gave up on stays
                # quarantined: replaying its failure keeps resumed
                # aggregates identical to the uninterrupted faulted run.
                quarantined.append(failure)
                done_indices.add(failure.trial_index)
            live_runs = [run for run in runs if run.index not in done_indices]

        batch = resolve_batch_size(batch_size, spec, max_workers,
                                   resolved_engine)
        tasks = _chunk_runs(live_runs, batch)
        started = time.perf_counter()

        # An external (service) pool forces the pooled path even for a
        # single-task job, so every job observably runs on the same warm
        # worker processes.
        pooled = bool(tasks) and (pool is not None
                                  or (max_workers > 1 and len(tasks) > 1))
        use_shm = _resolve_shm(shm, resolved_engine, payload, pooled)

        def record(batch_results) -> None:
            # Durability before publication: once a result is visible to
            # the aggregates or the progress callback, it has survived.
            if store_obj is not None:
                store_obj.checkpoint_batch(batch_results)
            for index, summary, result in batch_results:
                _publish(index, summary, result)

        def record_shm(task: _BatchTask, ticket, outcome) -> None:
            # Shared-memory counterpart: decode the task's ring records in
            # place, commit them (straight from the ring for "summary"),
            # publish, then recycle the reservation.
            spec_index, runs_lite = task
            count, results = outcome
            label = spec.trials[spec_index].label
            labels = [label] * count
            block = session.records_view(ticket, count)
            decoded = session.read(ticket, count, labels)
            expected = [index for index, _, _ in runs_lite]
            if block["trial_index"].tolist() != expected:
                raise shm_plane.ShmError(
                    f"results-ring records for cell {spec_index} carry trial "
                    f"indices {block['trial_index'].tolist()}, expected "
                    f"{expected}")
            if store_obj is not None:
                if results is None:
                    store_obj.checkpoint_ring(block, labels)
                else:
                    store_obj.checkpoint_batch(
                        list(zip(expected, decoded, results)))
            for offset, (index, summary) in enumerate(zip(expected, decoded)):
                _publish(index, summary,
                         results[offset] if results is not None else None)
            session.release(ticket, count)

        if tasks:
            recovery.advance(RecoveryStage.LIVE)
        if not pooled:
            pending_q: Deque[_Pending] = deque(
                _Pending(task, (0,) * len(task[1])) for task in tasks)
            dispatch = 0
            while pending_q:
                if stop is not None and stop():
                    raise CampaignCancelled()
                pending = pending_q.popleft()
                dispatch += 1
                ctx = BatchContext(dispatch=dispatch,
                                   attempts=pending.attempts)
                try:
                    outcome = execute_batch(spec, pending.task, payload,
                                            resolved_engine, plan=plan,
                                            ctx=ctx)
                except Exception as exc:
                    _handle_batch_failure(pending, exc,
                                          max_retries=max_retries,
                                          requeue=pending_q.appendleft,
                                          quarantine=quarantine,
                                          events=events)
                    continue
                record(outcome)
        else:
            workers = (pool.max_workers if pool is not None
                       else min(max_workers, len(tasks)))
            window = workers * _INFLIGHT_PER_WORKER
            cell_live: Dict[int, int] = {}
            if use_shm:
                ring_capacity = max(batch, min(len(live_runs),
                                               (window + 1) * batch))
                session = shm_plane.ShmSession(ring_capacity)
                for spec_index, runs_lite in tasks:
                    cell_live[spec_index] = (cell_live.get(spec_index, 0)
                                             + len(runs_lite))

            def acquire(task: _BatchTask):
                """Reserve shared-memory lanes/slots for one task, if any."""
                if session is None:
                    return None, None
                spec_index, runs_lite = task
                count = len(runs_lite)
                want_plane = (resolved_engine == "batched" and count > 1
                              and payload != "full"
                              and (spec.trials[spec_index].runner
                                   == TRIAL_RUNNER_DEFAULT))
                if want_plane and session.plane(spec_index) is None:
                    state_cols, cross_cols = _cell_plane_geometry(
                        spec, spec_index)
                    lanes = max(count, min(cell_live[spec_index],
                                           (window + 1) * batch))
                    session.ensure_plane(spec_index, lanes, state_cols,
                                         cross_cols)
                ticket = session.acquire(spec_index, count, want_plane)
                if ticket is None:
                    return None, None
                return ticket, ticket.token(session)

            def publish(task: _BatchTask, ticket, outcome) -> None:
                """Checkpoint and aggregate one finished batch."""
                if ticket is None:
                    record(outcome)
                else:
                    record_shm(task, ticket, outcome)

            def release(ticket, count: int) -> None:
                """Return an unconsumed shared-memory reservation."""
                if ticket is not None and session is not None:
                    session.release(ticket, count)

            def make_pool() -> ProcessPoolExecutor:
                """Spawn a fresh, fully initialized worker pool."""
                return ProcessPoolExecutor(
                    max_workers=workers, initializer=_init_worker,
                    initargs=(spec, payload, resolved_engine, plan))

            lease = (pool.lease(spec, payload, resolved_engine, plan)
                     if pool is not None else None)
            supervisor = _PoolSupervisor(
                tasks=tasks, window=window,
                make_pool=(lease.make_pool if lease is not None
                           else make_pool),
                acquire=acquire, publish=publish, release=release,
                quarantine=quarantine, events=events,
                max_retries=max_retries, batch_deadline=batch_deadline,
                max_respawns=max_respawns,
                store_path=(str(store_obj.path)
                            if store_obj is not None else None),
                submit=(lease.submit if lease is not None else None),
                owns_pool=(lease is None), stop=stop)
            try:
                supervisor.run()
            finally:
                if lease is not None:
                    lease.close()

        wall_time = time.perf_counter() - started
        missing = {run.index for run in runs if summaries[run.index] is None}
        if missing != {failure.trial_index for failure in quarantined}:
            raise RuntimeError(
                "campaign lost trials: not every run reported back")
        if session is not None and session.fallbacks:
            events.append((
                "shm-fallback",
                f"{session.fallbacks} task(s) fell back to the pickled "
                f"results path (ring/plane momentarily exhausted)"))
        if store_obj is not None and store_obj.commit_retries:
            events.append((
                "store-retry",
                f"{store_obj.commit_retries} checkpoint commit(s) retried "
                f"after transient sqlite lock/busy errors"))
        if store_obj is not None:
            store_obj.mark_complete()
        recovery.advance(RecoveryStage.COMPLETE)
    finally:
        # Unlink shared segments even on a crashed/broken pool — the
        # session owns them and nothing else will.
        if session is not None:
            session.close()
        if own_store is not None:
            own_store.close()

    return CampaignResult(
        spec=spec,
        master_seed=seed,
        workers=max_workers,
        wall_time=wall_time,
        summaries=tuple(s for s in summaries if s is not None),
        results=(tuple(full[i] for i, s in enumerate(summaries)
                       if s is not None)
                 if payload != "summary" else None),
        replayed_trials=replayed_count,
        quarantined=tuple(quarantined),
        recovery_events=tuple(events),
    )
