"""Parallel Monte-Carlo campaign execution.

Fans independent emulation trials out across worker processes with
:class:`concurrent.futures.ProcessPoolExecutor`, falling back to an
in-process serial loop for ``max_workers=1`` (and for the degenerate
single-trial case, where pool start-up would dominate).  Trials are
embarrassingly parallel: every run's seed is derived from the campaign
master seed and the run's position in the spec, never from scheduling, so
any worker count yields bit-identical aggregates.

The unit of dispatch is a **batch**: a chunk of replicates of one campaign
cell.  The campaign spec (configuration included) ships to each worker once
through the pool initializer, so a task pickles only ``(spec_index,
(index, replicate, seed), ...)`` tuples; each worker lowers a cell's hybrid
model once (the per-process cache in :mod:`repro.casestudy.emulation`) and
reuses it for every trial of that cell.  With ``engine="batched"`` the
replicates of a chunk additionally execute in vectorized lockstep as lanes
of one :class:`~repro.hybrid.simulate.batched.BatchedEngine`.

Results stream back as batches complete (``on_result`` fires once per trial
in completion order, for progress reporting); the final
:class:`CampaignResult` orders summaries by trial index, making every
derived statistic order-independent.

With a :class:`~repro.campaign.store.CampaignStore` attached, every retired
batch is additionally committed to the store *before* it is published, and
a resumed run replays the checkpointed prefix through the exact same
aggregation path — see :mod:`repro.campaign.store` and
``docs/checkpoint-format.md``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Dict, List, Sequence, Tuple

from repro.campaign import shm as shm_plane
from repro.campaign.aggregate import CampaignResult, TrialSummary
from repro.campaign.spec import CampaignSpec, TrialRun
from repro.campaign.store import (CampaignStore, CampaignStoreError,
                                  RecoveryStage, RecoveryStateMachine)
from repro.casestudy.config import CaseStudyConfig
from repro.casestudy.emulation import (TrialResult, _lowered_case_study,
                                       run_trial, run_trial_batch)
from repro.hybrid.simulate import resolve_engine_kind
from repro.hybrid.simulate.batched import build_batched_tables

#: Payload modes, in increasing weight:
#:
#: * ``"summary"`` -- slim :class:`TrialSummary` records only (default);
#: * ``"stats"``  -- additionally the full :class:`TrialResult` per trial,
#:   with monitor report and lease ledger computed by the streaming
#:   observer pipeline (no trace is ever materialised, so worker memory
#:   stays flat regardless of the horizon);
#: * ``"full"``   -- like ``"stats"`` but through the legacy record-a-trace
#:   path (the post-hoc oracle; heavier, numbers identical).  The trace is
#:   dropped before the result leaves the worker.
PAYLOAD_KINDS = ("summary", "stats", "full")

#: Keep at most this many batch futures in flight per worker, so that
#: expanding a 100x campaign does not materialize every pending future up
#: front.
_INFLIGHT_PER_WORKER = 4

#: Largest replicate batch the auto heuristic will put in lockstep; beyond
#: this the vector win flattens while latency and memory keep growing.
_MAX_AUTO_BATCH = 64

#: Environment override for the lockstep break-even lane count.
BATCH_MIN_LANES_ENV_VAR = "REPRO_BATCH_MIN_LANES"

#: Below this many lanes the auto heuristic keeps per-trial dispatch even
#: with the batched kernel: micro-calibration (``benchmarks/bench_batched``)
#: shows the vectorized dispatch overhead dominating below ~16 lanes, so a
#: small cell is faster on the scalar path inside each worker.  Explicit
#: ``batch_size`` values are always honoured as given.
DEFAULT_BATCH_MIN_LANES = 16

#: Environment variable read by the worker-crash injection harness: a
#: positive integer N makes a pool worker SIGKILL itself when it picks up
#: its N-th batch task.  Used by the shared-memory crash-cleanup tests and
#: the CI smoke (a hard-killed worker must not leak ``/dev/shm`` segments).
CRASH_WORKER_ENV_VAR = "REPRO_CAMPAIGN_CRASH_WORKER"

#: Campaign-level engine default.  Direct engine construction stays on the
#: reference kernel (the executable specification); campaigns default to
#: the soaked compiled kernel.  ``REPRO_ENGINE=reference`` or
#: ``--engine reference`` are the escape hatches.
DEFAULT_CAMPAIGN_ENGINE = "compiled"

#: One dispatched batch: a campaign-cell index plus (index, replicate,
#: seed) triples of the chunk's runs.  Everything else a worker needs is in
#: the spec it received through the pool initializer.
_BatchTask = Tuple[int, Tuple[Tuple[int, int, int], ...]]

#: Worker-process state installed by :func:`_init_worker`.
_WORKER_CTX: tuple | None = None


def default_worker_count() -> int:
    """Return a sensible default worker count for this machine."""
    return max(1, os.cpu_count() or 1)


def resolve_batch_size(batch_size: int | None, spec: CampaignSpec,
                       workers: int, engine: str) -> int:
    """Resolve the replicate-batch size for one campaign run.

    ``None`` or ``0`` selects the auto heuristic: with the batched kernel,
    split each cell's replicates evenly across the workers (capped at
    ``_MAX_AUTO_BATCH`` lanes — the vector win saturates), unless the split
    lands below the lockstep break-even (``REPRO_BATCH_MIN_LANES``,
    default ``DEFAULT_BATCH_MIN_LANES``), where the vector dispatch
    overhead outweighs the win and per-trial dispatch is faster; with the
    scalar kernels there is nothing to put in lockstep, so dispatch per
    trial.

    Args:
        batch_size: The requested batch size (``None``/``0`` = auto).
        spec: The campaign being run (its largest cell bounds the split).
        workers: The worker-process count of the run.
        engine: The resolved simulation-kernel name.

    Returns:
        The concrete batch size, at least 1.

    Raises:
        ValueError: If an explicit ``batch_size`` is negative, or the
            ``REPRO_BATCH_MIN_LANES`` override is not a positive integer.
    """
    if batch_size:
        if batch_size < 1:
            raise ValueError("batch size must be at least 1")
        return int(batch_size)
    if engine != "batched":
        return 1
    largest_cell = max(t.effective_replicates for t in spec.trials)
    per_worker = -(-largest_cell // max(1, workers))  # ceil division
    if per_worker < min_lockstep_lanes():
        return 1
    return min(_MAX_AUTO_BATCH, per_worker)


def min_lockstep_lanes() -> int:
    """The smallest lane count worth vectorized lockstep (env-overridable)."""
    raw = os.environ.get(BATCH_MIN_LANES_ENV_VAR)
    if raw is None or not raw.strip():
        return DEFAULT_BATCH_MIN_LANES
    try:
        value = int(raw)
    except ValueError:
        value = 0
    if value < 1:
        raise ValueError(
            f"{BATCH_MIN_LANES_ENV_VAR} must be a positive integer, "
            f"got {raw!r}")
    return value


def execute_trial(config: CaseStudyConfig, campaign_duration: float | None,
                  run: TrialRun, payload: str = "summary",
                  engine: str | None = None,
                  ) -> Tuple[int, TrialSummary, TrialResult | None]:
    """Execute one concrete trial (runs inside a worker process).

    Args:
        config: The campaign-wide case-study configuration.
        campaign_duration: The campaign-level duration default, if any.
        run: The concrete trial to execute (cell, replicate, seed).
        payload: What to return per trial (``"summary"``, ``"stats"``
            or ``"full"``).
        engine: Simulation-kernel override (``None`` = resolve default).

    Returns:
        The run index (for order restoration), the slim summary, and —
        for the ``"stats"`` / ``"full"`` payloads — the complete
        :class:`TrialResult` (without its trace, which is memory heavy and
        scheduling sensitive).
    """
    if payload not in PAYLOAD_KINDS:
        raise ValueError(f"unknown payload kind {payload!r}")
    spec = run.spec
    trial_config = spec.configure(config)
    duration = spec.duration if spec.duration is not None else campaign_duration
    channel = spec.channel.build(run.seed)
    surgeon = spec.surgeon.build() if spec.surgeon is not None else None
    result = run_trial(trial_config, with_lease=spec.with_lease, seed=run.seed,
                       duration=duration, channel=channel, surgeon=surgeon,
                       keep_trace=(payload == "full"), engine=engine)
    if result.trace is not None:
        result.trace = None
    summary = TrialSummary.from_trial(run, result)
    return run.index, summary, (result if payload != "summary" else None)


def execute_batch(spec: CampaignSpec, task: _BatchTask, payload: str,
                  engine: str, buffers=None,
                  ) -> List[Tuple[int, TrialSummary, TrialResult | None]]:
    """Execute one batch of same-cell replicates (runs inside a worker).

    With the batched kernel, multi-trial chunks run in vectorized lockstep
    through :func:`~repro.casestudy.emulation.run_trial_batch`; otherwise
    (and for the trace-scanning ``"full"`` payload, which needs per-trial
    traces) the chunk executes trial by trial — still amortizing the
    per-worker lowered-model cache and the task pickling.

    Args:
        spec: The campaign spec (provides the cell and base config).
        task: The ``(spec_index, runs)`` batch to execute.
        payload: Per-trial payload kind (``"summary"``/``"stats"``/``"full"``).
        engine: The resolved simulation-kernel name.
        buffers: Optional externally allocated engine storage (a
            shared-memory plane's lane range) for the lockstep path;
            ``None`` keeps private allocations.  Never changes results.

    Returns:
        One ``(index, summary, result-or-None)`` triple per trial of the
        batch, in replicate order.
    """
    spec_index, runs_lite = task
    trial = spec.trials[spec_index]
    if engine == "batched" and len(runs_lite) > 1 and payload != "full":
        trial_config = trial.configure(spec.config)
        duration = trial.duration if trial.duration is not None else spec.duration
        seeds = [seed for _, _, seed in runs_lite]
        results = run_trial_batch(
            trial_config, with_lease=trial.with_lease, seeds=seeds,
            duration=duration, channel_builder=trial.channel.build,
            surgeon_builder=((lambda _seed: trial.surgeon.build())
                             if trial.surgeon is not None else None),
            buffers=buffers)
        out = []
        for (index, replicate, seed), result in zip(runs_lite, results):
            run = TrialRun(index=index, spec_index=spec_index,
                           replicate=replicate, seed=seed, spec=trial)
            summary = TrialSummary.from_trial(run, result)
            out.append((index, summary,
                        result if payload != "summary" else None))
        return out
    return [execute_trial(spec.config, spec.duration,
                          TrialRun(index=index, spec_index=spec_index,
                                   replicate=replicate, seed=seed, spec=trial),
                          payload, engine)
            for index, replicate, seed in runs_lite]


def _init_worker(spec: CampaignSpec, payload: str, engine: str) -> None:
    """Pool initializer: receive the campaign constants once per worker."""
    global _WORKER_CTX
    _WORKER_CTX = (spec, payload, engine)


#: Tasks this worker process has picked up (crash-injection bookkeeping).
_WORKER_TASKS = 0


def _maybe_crash_worker() -> None:
    """SIGKILL this worker on its N-th task if the crash harness asks for it."""
    global _WORKER_TASKS
    raw = os.environ.get(CRASH_WORKER_ENV_VAR)
    if not raw:
        return
    _WORKER_TASKS += 1
    if _WORKER_TASKS >= int(raw):
        import signal
        os.kill(os.getpid(), signal.SIGKILL)


def _execute_batch_in_worker(task: _BatchTask,
                             token: "shm_plane.ShmToken | None" = None):
    """Task entry point inside a pool worker (context from the initializer).

    Without a token this is the classic pickled path: the full result
    triples travel back through the pool's pipe.  With a token, the worker
    binds the task's shared-plane lane range (if any) as the engine's
    backing storage, writes each trial's summary record straight into the
    shared results ring, and returns only the trial count — plus, for the
    ``"stats"`` payload, the pickled ``TrialResult`` objects, whose
    monitor reports and lease ledgers have no fixed-width encoding.
    """
    _maybe_crash_worker()
    spec, payload, engine = _WORKER_CTX
    if token is None:
        return execute_batch(spec, task, payload, engine)
    buffers = None
    if token.plane_name is not None:
        plane = shm_plane.attach_plane(token.plane_name, token.plane_lanes,
                                       token.state_columns,
                                       token.cross_columns)
        buffers = plane.buffers(token.lane_start, token.lane_count)
    results = execute_batch(spec, task, payload, engine, buffers=buffers)
    ring = shm_plane.attach_ring(token.ring_name, token.ring_capacity)
    for offset, (index, summary, _result) in enumerate(results):
        ring.write(token.ring_start + offset, token.generation, index, summary)
    if payload == "summary":
        return len(results), None
    return len(results), [result for _, _, result in results]


def _chunk_runs(runs: Sequence[TrialRun], batch_size: int) -> List[_BatchTask]:
    """Chunk expanded runs into same-cell batches of at most ``batch_size``."""
    tasks: List[_BatchTask] = []
    current: List[TrialRun] = []
    for run in runs:
        if current and (run.spec_index != current[0].spec_index
                        or len(current) >= batch_size):
            tasks.append((current[0].spec_index,
                          tuple((r.index, r.replicate, r.seed) for r in current)))
            current = []
        current.append(run)
    if current:
        tasks.append((current[0].spec_index,
                      tuple((r.index, r.replicate, r.seed) for r in current)))
    return tasks


def _resolve_shm(shm: bool | None, engine: str, payload: str,
                 pooled: bool) -> bool:
    """Decide whether the shared-memory fast path runs.

    ``None`` auto-enables for pooled batched runs; an explicit ``True``
    extends it to scalar-engine pools (ring only).  Either way the path
    silently degrades to pickling when ``shared_memory`` is unavailable,
    the run is serial (nothing crosses a process boundary), or the payload
    is ``"full"`` (traces have no fixed-width encoding).
    """
    if shm is False:
        return False
    if not (pooled and payload != "full"
            and shm_plane.shared_memory_available()):
        return False
    return True if shm else engine == "batched"


def _cell_plane_geometry(spec: CampaignSpec,
                         spec_index: int) -> Tuple[int, int]:
    """Column counts of one campaign cell's batched state plane."""
    trial = spec.trials[spec_index]
    config = trial.configure(spec.config)
    _, lowered = _lowered_case_study(config, trial.with_lease)
    return build_batched_tables(lowered).plane_columns()


def run_campaign(spec: CampaignSpec, *, seed: int = 0, max_workers: int = 1,
                 payload: str = "summary",
                 engine: str | None = None,
                 batch_size: int | None = None,
                 on_result: Callable[[TrialSummary], None] | None = None,
                 store: CampaignStore | str | os.PathLike | None = None,
                 resume: bool = False,
                 shm: bool | None = None,
                 ) -> CampaignResult:
    """Run a whole campaign, serially or across worker processes.

    Args:
        spec: The campaign description.
        seed: Master seed; every trial derives its own sub-seed from it
            (unless the spec pins explicit seeds).
        max_workers: Worker processes; ``1`` runs the trials serially in
            this process (no pool, no pickling).
        payload: ``"summary"`` keeps only slim per-trial statistics;
            ``"stats"`` additionally collects each trial's
            :class:`~repro.casestudy.emulation.TrialResult` computed by the
            streaming observer pipeline (trace-free, flat memory);
            ``"full"`` collects the same results through the legacy
            record-a-trace path.
        engine: Simulation kernel executing the trials (``"reference"`` /
            ``"compiled"`` / ``"batched"``); ``None`` defers to
            ``REPRO_ENGINE`` and then to the compiled kernel (campaigns
            default fast; the reference engine remains the escape hatch).
            All kernels are bit-identical, so this only affects throughput.
        batch_size: Replicates of one cell dispatched (and, with the
            batched kernel, executed in lockstep) as one unit.  ``None`` /
            ``0`` = auto: per-trial dispatch for scalar kernels, an even
            per-worker split of each cell (at most 64 lanes) for the
            batched kernel.
        on_result: Optional streaming callback, fired once per trial —
            first for replayed checkpoints in trial order, then for live
            trials in completion order (useful for progress reporting;
            aggregation itself never depends on completion order).
        store: Optional durable checkpoint store — a
            :class:`~repro.campaign.store.CampaignStore` or a path to one.
            Retired batches are committed to it before they are published,
            so a crashed run can continue where it stopped.  A path is
            opened (and closed) by this call; a store instance stays open.
        resume: Replay the checkpointed trials found in ``store`` instead
            of rejecting a non-empty store, then execute only the
            remainder.  Aggregates are bit-identical to an uninterrupted
            run for any engine, batch size and worker count.
        shm: Shared-memory fast path: workers run batched lanes on a
            parent-owned shared state plane (so one cell's batch spans
            workers) and publish per-trial statistics as fixed-width
            records in a shared results ring instead of pickling them
            through the pool's pipe.  ``None`` (default) auto-enables it
            for multi-worker batched runs; ``True`` forces it on wherever
            possible (including scalar-engine pools, ring only);
            ``False`` disables it.  The path silently falls back to
            pickling when ``multiprocessing.shared_memory`` is
            unavailable, the run is serial, or ``payload="full"`` — and
            per task when the ring/plane is momentarily exhausted.
            Results are bit-identical in every mode.

    Returns:
        The ordered, aggregated :class:`CampaignResult`.

    Raises:
        ValueError: If ``payload`` or ``max_workers`` is invalid.
        CampaignStoreError: If ``store`` belongs to a different campaign,
            a different master seed or payload mode, or holds checkpoints
            while ``resume`` is false.
    """
    if payload not in PAYLOAD_KINDS:
        raise ValueError(f"unknown payload kind {payload!r}")
    if max_workers < 1:
        raise ValueError("max_workers must be at least 1")
    resolved_engine = resolve_engine_kind(engine,
                                          default=DEFAULT_CAMPAIGN_ENGINE)
    runs = spec.expand(seed)
    summaries: List[TrialSummary | None] = [None] * len(runs)
    full: List[TrialResult | None] = [None] * len(runs)
    recovery = RecoveryStateMachine()

    own_store: CampaignStore | None = None
    if store is None or isinstance(store, CampaignStore):
        store_obj: CampaignStore | None = store
    else:
        store_obj = own_store = CampaignStore(store)

    session: shm_plane.ShmSession | None = None
    try:
        live_runs: Sequence[TrialRun] = runs
        replayed_count = 0
        if store_obj is not None:
            replayed = store_obj.begin(spec, seed, payload, resume=resume)
            if replayed:
                recovery.advance(RecoveryStage.REPLAYING)
            for index, summary, result in replayed:
                if not 0 <= index < len(runs) or summaries[index] is not None:
                    raise CampaignStoreError(
                        f"store replayed an impossible trial index {index}")
                summaries[index] = summary
                full[index] = result
                replayed_count += 1
                if on_result is not None:
                    on_result(summary)
            done_indices = {index for index, _, _ in replayed}
            live_runs = [run for run in runs if run.index not in done_indices]

        batch = resolve_batch_size(batch_size, spec, max_workers,
                                   resolved_engine)
        tasks = _chunk_runs(live_runs, batch)
        started = time.perf_counter()

        pooled = max_workers > 1 and len(tasks) > 1
        use_shm = _resolve_shm(shm, resolved_engine, payload, pooled)

        def record(batch_results) -> None:
            # Durability before publication: once a result is visible to
            # the aggregates or the progress callback, it has survived.
            if store_obj is not None:
                store_obj.checkpoint_batch(batch_results)
            for index, summary, result in batch_results:
                summaries[index] = summary
                full[index] = result
                if on_result is not None:
                    on_result(summary)

        def record_shm(task: _BatchTask, ticket, outcome) -> None:
            # Shared-memory counterpart: decode the task's ring records in
            # place, commit them (straight from the ring for "summary"),
            # publish, then recycle the reservation.
            spec_index, runs_lite = task
            count, results = outcome
            label = spec.trials[spec_index].label
            labels = [label] * count
            block = session.records_view(ticket, count)
            decoded = session.read(ticket, count, labels)
            expected = [index for index, _, _ in runs_lite]
            if block["trial_index"].tolist() != expected:
                raise shm_plane.ShmError(
                    f"results-ring records for cell {spec_index} carry trial "
                    f"indices {block['trial_index'].tolist()}, expected "
                    f"{expected}")
            if store_obj is not None:
                if results is None:
                    store_obj.checkpoint_ring(block, labels)
                else:
                    store_obj.checkpoint_batch(
                        list(zip(expected, decoded, results)))
            for offset, (index, summary) in enumerate(zip(expected, decoded)):
                summaries[index] = summary
                full[index] = results[offset] if results is not None else None
                if on_result is not None:
                    on_result(summary)
            session.release(ticket, count)

        if tasks:
            recovery.advance(RecoveryStage.LIVE)
        if not pooled:
            for task in tasks:
                record(execute_batch(spec, task, payload, resolved_engine))
        else:
            workers = min(max_workers, len(tasks))
            window = workers * _INFLIGHT_PER_WORKER
            if use_shm:
                ring_capacity = max(batch, min(len(live_runs),
                                               (window + 1) * batch))
                session = shm_plane.ShmSession(ring_capacity)
                cell_live: Dict[int, int] = {}
                for spec_index, runs_lite in tasks:
                    cell_live[spec_index] = (cell_live.get(spec_index, 0)
                                             + len(runs_lite))

            def submit(pool, task):
                ticket = token = None
                if session is not None:
                    spec_index, runs_lite = task
                    count = len(runs_lite)
                    want_plane = (resolved_engine == "batched" and count > 1
                                  and payload != "full")
                    if want_plane and session.plane(spec_index) is None:
                        state_cols, cross_cols = _cell_plane_geometry(
                            spec, spec_index)
                        lanes = max(count, min(cell_live[spec_index],
                                               (window + 1) * batch))
                        session.ensure_plane(spec_index, lanes, state_cols,
                                             cross_cols)
                    ticket = session.acquire(spec_index, count, want_plane)
                    if ticket is not None:
                        token = ticket.token(session)
                future = pool.submit(_execute_batch_in_worker, task, token)
                inflight[future] = (task, ticket)
                return future

            def retire(future) -> None:
                task, ticket = inflight.pop(future)
                outcome = future.result()
                if ticket is None:
                    record(outcome)
                else:
                    record_shm(task, ticket, outcome)

            with ProcessPoolExecutor(max_workers=workers,
                                     initializer=_init_worker,
                                     initargs=(spec, payload, resolved_engine),
                                     ) as pool:
                inflight: Dict[object, Tuple[_BatchTask, object]] = {}
                pending = set()
                queue = iter(tasks)
                for task in queue:
                    pending.add(submit(pool, task))
                    if len(pending) < window:
                        continue
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        retire(future)
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        retire(future)

        wall_time = time.perf_counter() - started
        if any(s is None for s in summaries):
            raise RuntimeError(
                "campaign lost trials: not every run reported back")
        if store_obj is not None:
            store_obj.mark_complete()
        recovery.advance(RecoveryStage.COMPLETE)
    finally:
        # Unlink shared segments even on a crashed/broken pool — the
        # session owns them and nothing else will.
        if session is not None:
            session.close()
        if own_store is not None:
            own_store.close()

    return CampaignResult(
        spec=spec,
        master_seed=seed,
        workers=max_workers,
        wall_time=wall_time,
        summaries=tuple(summaries),
        results=tuple(full) if payload != "summary" else None,
        replayed_trials=replayed_count,
    )
