"""Deterministic fault injection for self-healing campaign runs.

The campaign executor survives worker crashes, hangs, poison trials,
corrupted shared-memory records and transiently locked checkpoint stores
(see :mod:`repro.campaign.executor`).  This module is the chaos half of
that contract: a :class:`FaultPlan` is a declarative, fully deterministic
script of faults to inject at named points of a run, so every recovery
path has a replayable test.

A plan comes from the ``REPRO_FAULT_PLAN`` environment variable (or the
``--fault-plan`` CLI flag / the ``fault_plan=`` argument of
``run_campaign``) and is a semicolon-separated list of clauses::

    kind@key=value[,key=value...]

with five clause kinds, each consumed at one injection point:

``crash``
    SIGKILL the pool worker as it picks up batch dispatch number
    ``batch`` (1-based, counting every dispatch including reschedules).
    Consumed in the worker task entry point; exercises pool respawn.
``hang``
    Sleep ``secs`` (default 30) inside the worker at dispatch ``batch``.
    Consumed in the worker task entry point; exercises the batch
    deadline / hung-worker kill path.
``raise``
    Raise :class:`InjectedTrialFault` inside trial index ``trial``.
    Without ``times`` the trial is *poison* (fails every attempt and is
    eventually quarantined); ``times=N`` makes the fault transient — the
    first ``N`` attempts fail and the next retry succeeds.  Consumed
    inside :func:`repro.casestudy.emulation.run_trial` /
    ``run_trial_batch`` via the executor's per-trial fault hook.
``corrupt``
    Stamp-corrupt the shared results-ring generation of dispatch
    ``batch`` (the worker writes records with a wrong generation).
    Consumed on the ring write path; exercises the
    :class:`~repro.campaign.shm.ShmError` detect-and-reschedule path.
``lock``
    Raise a transient ``sqlite3.OperationalError("database is locked")``
    on store commit number ``commit`` (1-based over every store commit of
    the process) for the first ``times`` attempts (default 1).  Consumed
    inside :class:`~repro.campaign.store.CampaignStore`; exercises the
    bounded-backoff commit retry.

``crash``, ``hang`` and ``corrupt`` accept ``p=PROB`` (with an optional
``seed=N``) instead of ``batch=K``: the clause then fires on each
dispatch with probability ``p``, decided by a counter-based hash of
``(seed, kind, dispatch)`` — deterministic and scheduling-independent,
so probabilistic chaos runs replay exactly.

Because a rescheduled batch gets a *fresh* dispatch number, a fault keyed
by ``batch`` fires exactly once: the retry of a crashed or hung batch runs
clean, which is what makes the chaos matrix converge.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from typing import Dict, Optional, Tuple

#: Environment variable holding the fault plan for a run (see module docs).
FAULT_PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

#: The clause kinds a plan may contain, and the keys each accepts.
_CLAUSE_KEYS = {
    "crash": {"batch", "p", "seed"},
    "hang": {"batch", "p", "seed", "secs"},
    "raise": {"trial", "times"},
    "corrupt": {"batch", "p", "seed"},
    "lock": {"commit", "times"},
}

#: Default sleep of a ``hang`` clause, chosen to sit far beyond any sane
#: ``--batch-deadline`` so the hang is detected, not waited out.
DEFAULT_HANG_SECS = 30.0


class FaultPlanError(ValueError):
    """A fault plan string could not be parsed or is inconsistent."""


class InjectedTrialFault(RuntimeError):
    """The deterministic in-trial fault raised by a ``raise`` clause."""


@dataclasses.dataclass(frozen=True)
class TrialFailure:
    """Structured record of one quarantined (permanently failed) trial.

    Written to the checkpoint store's ``failures`` table (schema v3) and
    carried on :class:`~repro.campaign.aggregate.CampaignResult` so a
    campaign that loses a poison trial still reports exactly what was
    lost, with which seed, after how many attempts, and why.
    """

    trial_index: int
    label: str
    replicate: int
    seed: int
    attempts: int
    kind: str
    message: str

    def describe(self) -> str:
        """Render a one-line human-readable account of the failure."""
        return (f"trial {self.trial_index} ({self.label}, replicate "
                f"{self.replicate}, seed {self.seed}) quarantined after "
                f"{self.attempts} attempt(s): [{self.kind}] {self.message}")


@dataclasses.dataclass(frozen=True)
class BatchContext:
    """Per-dispatch metadata the executor attaches to every batch task.

    Attributes:
        dispatch: Global 1-based dispatch sequence number of this
            submission (reschedules get fresh numbers).
        attempts: Per-trial failure counts so far, aligned with the
            batch's runs; lets transient ``raise`` clauses decide whether
            this attempt should still fail.
    """

    dispatch: int
    attempts: Tuple[int, ...]


@dataclasses.dataclass(frozen=True)
class FaultClause:
    """One parsed clause of a fault plan (see the module docs for kinds)."""

    kind: str
    batch: Optional[int] = None
    trial: Optional[int] = None
    commit: Optional[int] = None
    secs: float = DEFAULT_HANG_SECS
    times: Optional[int] = None
    p: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _CLAUSE_KEYS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(_CLAUSE_KEYS)}")
        if self.kind in ("crash", "hang", "corrupt"):
            if (self.batch is None) == (self.p is None):
                raise FaultPlanError(
                    f"{self.kind} clause needs exactly one of batch= or p=")
        if self.kind == "raise" and self.trial is None:
            raise FaultPlanError("raise clause needs trial=")
        if self.kind == "lock" and self.commit is None:
            raise FaultPlanError("lock clause needs commit=")
        if self.p is not None and not 0.0 <= self.p <= 1.0:
            raise FaultPlanError("p must be within [0, 1]")

    def fires_at(self, dispatch: int) -> bool:
        """Whether this dispatch-keyed clause fires on dispatch ``dispatch``."""
        if self.batch is not None:
            return dispatch == self.batch
        digest = hashlib.sha256(
            f"{self.seed}:{self.kind}:{dispatch}".encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / 2 ** 64
        return draw < self.p

    def describe(self) -> str:
        """Render the clause back into plan syntax."""
        parts = []
        for key in ("batch", "trial", "commit", "p", "seed", "times"):
            value = getattr(self, key)
            if value is not None and not (key == "seed" and value == 0):
                parts.append(f"{key}={value:g}" if isinstance(value, float)
                             else f"{key}={value}")
        if self.kind == "hang":
            parts.append(f"secs={self.secs:g}")
        return f"{self.kind}@{','.join(parts)}"


def _parse_clause(text: str) -> FaultClause:
    """Parse one ``kind@key=value,...`` clause of a plan string."""
    head, sep, tail = text.partition("@")
    kind = head.strip()
    if not sep or not tail.strip():
        raise FaultPlanError(f"fault clause {text!r} is missing '@key=value'")
    allowed = _CLAUSE_KEYS.get(kind)
    if allowed is None:
        raise FaultPlanError(
            f"unknown fault kind {kind!r} in clause {text!r}; expected one "
            f"of {sorted(_CLAUSE_KEYS)}")
    kwargs: Dict[str, object] = {}
    for pair in tail.split(","):
        key, eq, value = pair.partition("=")
        key = key.strip()
        if not eq or key not in allowed:
            raise FaultPlanError(
                f"bad key {pair.strip()!r} in {kind} clause; allowed keys: "
                f"{sorted(allowed)}")
        try:
            kwargs[key] = (float(value) if key in ("p", "secs")
                           else int(value))
        except ValueError as exc:
            raise FaultPlanError(
                f"bad value in fault clause {text!r}: {pair.strip()!r}"
            ) from exc
    return FaultClause(kind=kind, **kwargs)


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A deterministic, replayable script of faults for one campaign run.

    Frozen and built from primitives, so it pickles cleanly to pool
    workers (via the executor's pool initializer) and hashes the same
    everywhere.  All query methods are pure functions of the plan and the
    injection-point coordinates — no hidden state, so any two runs with
    the same plan and the same dispatch/commit sequence inject the same
    faults.
    """

    clauses: Tuple[FaultClause, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a plan string (see the module docs for the syntax).

        Args:
            text: Semicolon-separated fault clauses; empty/whitespace
                parses to an empty plan.

        Returns:
            The parsed plan.

        Raises:
            FaultPlanError: On unknown kinds, bad keys or bad values.
        """
        clauses = tuple(_parse_clause(part)
                        for part in text.split(";") if part.strip())
        return cls(clauses=clauses)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """Load the plan from ``REPRO_FAULT_PLAN`` (``None`` when unset)."""
        raw = os.environ.get(FAULT_PLAN_ENV_VAR)
        if raw is None or not raw.strip():
            return None
        return cls.parse(raw)

    def _dispatch_fires(self, kind: str, dispatch: int) -> bool:
        """Whether any dispatch-keyed clause of ``kind`` fires here."""
        return any(c.kind == kind and c.fires_at(dispatch)
                   for c in self.clauses)

    def crash_at(self, dispatch: int) -> bool:
        """Whether the worker picking up dispatch ``dispatch`` must die."""
        return self._dispatch_fires("crash", dispatch)

    def hang_secs(self, dispatch: int) -> float:
        """Seconds the worker must sleep at dispatch ``dispatch`` (0 = none)."""
        return sum(c.secs for c in self.clauses
                   if c.kind == "hang" and c.fires_at(dispatch))

    def raise_in_trial(self, trial_index: int, attempt: int) -> bool:
        """Whether attempt number ``attempt`` of trial ``trial_index`` fails.

        Args:
            trial_index: The trial's campaign index.
            attempt: 0-based count of the trial's previous failures.

        Returns:
            True when a ``raise`` clause targets the trial and either has
            no ``times`` bound (poison) or still has firings left.
        """
        return any(c.kind == "raise" and c.trial == trial_index
                   and (c.times is None or attempt < c.times)
                   for c in self.clauses)

    def corrupt_at(self, dispatch: int) -> bool:
        """Whether the ring records of dispatch ``dispatch`` get bad stamps."""
        return self._dispatch_fires("corrupt", dispatch)

    def lock_commit(self, commit: int, attempt: int) -> bool:
        """Whether store commit ``commit`` must fail on try ``attempt``.

        Args:
            commit: 1-based sequence number of the commit in this process.
            attempt: 0-based retry count of the commit so far.

        Returns:
            True while a matching ``lock`` clause has injected fewer than
            its ``times`` (default 1) failures into this commit.
        """
        return any(c.kind == "lock" and c.commit == commit
                   and attempt < (c.times if c.times is not None else 1)
                   for c in self.clauses)

    def describe(self) -> str:
        """Render the plan back into the ``REPRO_FAULT_PLAN`` syntax."""
        return ";".join(c.describe() for c in self.clauses)

    def __bool__(self) -> bool:
        return bool(self.clauses)


def resolve_fault_plan(plan: "FaultPlan | str | None") -> "FaultPlan | None":
    """Normalize a fault-plan argument (object, plan string, or ``None``).

    Args:
        plan: A ready plan, a plan string to parse, or ``None`` to defer
            to the ``REPRO_FAULT_PLAN`` environment variable.

    Returns:
        The effective plan, or ``None`` when no faults are scripted.
    """
    if plan is None:
        return FaultPlan.from_env()
    if isinstance(plan, str):
        return FaultPlan.parse(plan)
    return plan
