"""Campaign presets: the paper's experiments as :class:`CampaignSpec` data.

Each preset pairs a spec builder (the sweep as data) with a result builder
that folds the campaign's aggregates into the repo's common
:class:`~repro.experiments.runner.ExperimentResult` container, so the
campaign layer plugs straight into the existing rendering, benchmark and
test machinery.

The serial experiment drivers in :mod:`repro.experiments` are thin wrappers
over these presets; the CLI (``python -m repro.campaign``) exposes them
directly, including the joint loss-rate x E(Toff) grid that only exists as
a campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Sequence

from repro.campaign.aggregate import CampaignResult
from repro.campaign.spec import (CampaignSpec, ChannelSpec, SurgeonSpec, TrialSpec,
                                 expand_grid, mode_label)
from repro.casestudy.config import CaseStudyConfig

if TYPE_CHECKING:  # pragma: no cover - avoids campaign <-> experiments cycle
    from repro.experiments.runner import ExperimentResult

#: Legacy per-trial seed offsets of the serial Table I loop
#: (``seed + 101 * toff_index + 13 * mode_index``), preserved so campaign
#: runs reproduce the pre-campaign serial numbers exactly.
_TABLE1_TOFF_STRIDE = 101
_TABLE1_MODE_STRIDE = 13


# --------------------------------------------------------------------------
# Table I
# --------------------------------------------------------------------------

def table1_spec(config: CaseStudyConfig | None = None, *,
                mean_toffs: Sequence[float] = (18.0, 6.0),
                duration: float | None = None, replicates: int = 1,
                legacy_seed: int | None = None) -> CampaignSpec:
    """Build the Table I campaign: {with, without lease} x E(Toff) values.

    When ``legacy_seed`` is given, each cell's first replicate pins the
    exact seed the historical serial loop used, so the campaign reproduces
    the pre-campaign numbers bit-for-bit (additional replicates derive
    their seeds from the campaign master seed).

    Args:
        config: Base case-study configuration (``None`` = paper defaults).
        mean_toffs: Surgeon E(Toff) values, one sweep column each.
        duration: Per-trial duration override (``None`` = config default).
        replicates: Independent trials per cell.
        legacy_seed: Pin each cell's first replicate to the historical
            serial seeds (``None`` = fully derived seeding).

    Returns:
        The Table I campaign spec.
    """
    base = config or CaseStudyConfig()
    trials = []
    for toff_index, mean_toff in enumerate(mean_toffs):
        for mode_index, with_lease in enumerate((True, False)):
            seeds = None
            if legacy_seed is not None:
                seeds = (int(legacy_seed) + _TABLE1_TOFF_STRIDE * toff_index
                         + _TABLE1_MODE_STRIDE * mode_index,)
            trials.append(TrialSpec(
                label=f"{mode_label(with_lease)}, E(Toff)={mean_toff:g}s",
                with_lease=with_lease,
                mean_toff=mean_toff,
                replicates=replicates,
                seeds=seeds,
                params=(("mean_toff", float(mean_toff)),),
            ))
    return CampaignSpec(name="table1", trials=tuple(trials), config=base,
                        duration=duration)


def table1_result(campaign: CampaignResult) -> ExperimentResult:
    """Fold a Table I campaign into the Table I experiment result.

    Args:
        campaign: A completed ``table1`` campaign.

    Returns:
        The rendered Table I rows plus the paper-parity safety checks.
    """
    from repro.experiments.runner import ExperimentResult
    from repro.experiments.table1 import PAPER_TABLE1

    summaries = campaign.summaries
    with_lease = [s for s in summaries if s.with_lease]
    without_lease = [s for s in summaries if not s.with_lease]
    groups = campaign.groups()
    if all(group.trials == 1 for group in groups):
        headers = ["Trial Mode", "E(Toff) (s)", "# Laser Emissions", "# Failures",
                   "# evtToStop", "max pause (s)", "max emission (s)", "loss ratio"]
        rows = [[s.mode, s.mean_toff, s.laser_emissions, s.failures, s.evt_to_stop,
                 round(s.max_pause_duration, 1), round(s.max_emission_duration, 1),
                 round(s.observed_loss_ratio, 2)] for s in summaries]
    else:
        headers = ["Trial Mode", "E(Toff) (s)", "# trials", "# Laser Emissions",
                   "# Failures", "# evtToStop", "failing trials", "max pause (s)",
                   "max emission (s)", "mean loss ratio"]
        rows = [[mode_label(g.with_lease, table_style=True), g.mean_toff, g.trials,
                 g.laser_emissions, g.failures, g.evt_to_stop, g.failing_trials,
                 round(g.max_pause_duration, 1), round(g.max_emission_duration, 1),
                 round(g.mean_loss_ratio, 2)] for g in groups]

    long_toff_stop = sum(s.evt_to_stop for s in with_lease if s.mean_toff >= 18.0)
    return ExperimentResult(
        experiment="table1",
        title="Table I: PTE safety rule violation (failure) statistics of emulation trials",
        headers=headers,
        rows=rows,
        notes=[
            "paper rows (mode, E(Toff), emissions, failures, evtToStop): "
            + "; ".join(str(row) for row in PAPER_TABLE1),
            "losses come from a calibrated Gilbert-Elliott burst channel instead of a "
            "physical 802.11g interferer; absolute counts differ, the win/lose shape "
            "must not.",
            f"campaign: {campaign.total_trials} trials, master seed "
            f"{campaign.master_seed}, {campaign.workers} worker(s), "
            f"{campaign.wall_time:.1f}s wall",
        ],
        checks={
            "with_lease_never_fails": all(s.failures == 0 for s in with_lease),
            "baseline_does_fail": any(s.failures > 0 for s in without_lease),
            "evt_to_stop_only_with_lease": all(s.evt_to_stop == 0
                                               for s in without_lease),
            "lease_forced_stops_happen": long_toff_stop > 0,
        },
    )


# --------------------------------------------------------------------------
# Loss sweep
# --------------------------------------------------------------------------

def loss_sweep_spec(config: CaseStudyConfig | None = None, *,
                    loss_levels: Sequence[float] = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9),
                    duration: float = 900.0,
                    seeds: Sequence[int] = (1, 2),
                    replicates: int | None = None) -> CampaignSpec:
    """Build the loss-rate sweep: memoryless loss x {with, without lease}.

    With ``replicates=None`` every cell pins the explicit ``seeds`` list
    (the historical serial behaviour); passing a replicate count instead
    derives all seeds from the campaign master seed, which is how the CLI
    scales the sweep to 10-100x the seed trial counts.

    Args:
        config: Base case-study configuration (``None`` = paper defaults).
        loss_levels: Bernoulli packet-loss probabilities to sweep.
        duration: Per-trial duration in seconds.
        seeds: Explicit per-cell seed list (used when ``replicates`` is
            ``None``).
        replicates: Derived-seed replicate count per cell, or ``None`` for
            the pinned historical seeds.

    Returns:
        The loss-sweep campaign spec.
    """
    base = config or CaseStudyConfig()
    trials = []
    for loss in loss_levels:
        for with_lease in (True, False):
            trials.append(TrialSpec(
                label=f"loss={loss:g}, {mode_label(with_lease)}",
                with_lease=with_lease,
                duration=float(duration),
                channel=ChannelSpec("bernoulli", loss=float(loss)),
                replicates=replicates if replicates is not None else 1,
                seeds=tuple(int(s) for s in seeds) if replicates is None else None,
                params=(("loss", float(loss)),),
            ))
    return CampaignSpec(name="loss_sweep", trials=tuple(trials), config=base)


def loss_sweep_result(campaign: CampaignResult) -> ExperimentResult:
    """Fold a loss-sweep campaign into the loss-sweep experiment result.

    Args:
        campaign: A completed ``loss_sweep`` campaign.

    Returns:
        The per-loss-level rows plus the lease-safety checks.
    """
    from repro.experiments.runner import ExperimentResult

    rows = []
    lease_failures_total = 0
    high_loss_baseline_fails = False
    groups = campaign.groups()
    for group in groups:
        loss = campaign.spec_of(group).param_dict["loss"]
        rows.append([loss, group.mode, group.laser_emissions, group.failures,
                     group.evt_to_stop])
        if group.with_lease:
            lease_failures_total += group.failures
        elif loss >= 0.5 and group.failures > 0:
            high_loss_baseline_fails = True
    trials_per_cell = groups[0].trials
    duration = campaign.spec.trials[0].duration or campaign.spec.config.trial_duration
    return ExperimentResult(
        experiment="loss_sweep",
        title="Extension: failures vs. packet-loss probability (lease vs. no lease)",
        headers=["loss probability", "mode", "emissions", "failures", "evtToStop"],
        rows=rows,
        notes=[f"each cell aggregates {trials_per_cell} trials of {duration:.0f}s",
               "Theorem 1 promises lease safety under arbitrary loss, so the "
               "with-lease failure column must be all zeros"],
        checks={
            "lease_safe_at_every_loss_level": lease_failures_total == 0,
            "baseline_fails_under_heavy_loss": high_loss_baseline_fails,
        },
    )


# --------------------------------------------------------------------------
# Section V scenarios
# --------------------------------------------------------------------------

def scenarios_spec(config: CaseStudyConfig | None = None, *,
                   horizon: float = 240.0) -> CampaignSpec:
    """Build the scripted Section V failure stories, with and without leases.

    Deterministic by construction: scripted surgeons, scripted loss
    windows, pinned seeds, and no supervisor retransmissions (the paper's
    stories assume single sends).

    Args:
        config: Base case-study configuration (``None`` = paper defaults).
        horizon: Story horizon in seconds.

    Returns:
        The scenarios campaign spec.
    """
    base = config or CaseStudyConfig()
    stories = (
        ("forgetful surgeon", (14.0,), (), ((30.0, horizon),)),
        ("lost cancel", (14.0,), (40.0,), ((38.0, horizon),)),
    )
    trials = []
    for scenario, requests_at, cancels_at, windows in stories:
        for with_lease in (True, False):
            trials.append(TrialSpec(
                label=f"{scenario}, {mode_label(with_lease)}",
                with_lease=with_lease,
                duration=horizon,
                channel=ChannelSpec("scripted", windows=windows),
                surgeon=SurgeonSpec(requests_at=requests_at,
                                    cancels_at=cancels_at),
                supervisor_resend_limit=0,
                seeds=(0,),
                params=(("scenario", scenario),),
            ))
    return CampaignSpec(name="scenarios", trials=tuple(trials), config=base)


def scenarios_result(campaign: CampaignResult) -> ExperimentResult:
    """Fold a scenarios campaign into the scenarios experiment result.

    Args:
        campaign: A completed ``scenarios`` campaign.

    Returns:
        One row per scripted story/mode plus the expected-outcome checks.
    """
    from repro.experiments.runner import ExperimentResult

    rows = []
    checks = {}
    for group in campaign.groups():
        scenario = str(campaign.spec_of(group).param_dict["scenario"])
        rows.append([scenario, group.mode,
                     round(group.max_emission_duration, 1),
                     round(group.max_pause_duration, 1), group.failures])
        key = scenario.replace(" ", "_") + "_" + (
            "lease_safe" if group.with_lease else "baseline_fails")
        checks[key] = ((group.failures == 0) if group.with_lease
                       else (group.failures > 0))
    return ExperimentResult(
        experiment="scenarios",
        title="Section V failure scenarios under scripted losses (lease vs. no lease)",
        headers=["scenario", "mode", "max emission (s)", "max pause (s)", "failures"],
        rows=rows,
        notes=["scenario 3 (T_enter misconfiguration violating c5) is the "
               "ablation_c5 experiment",
               "with leases the laser stops within T_run,2=20 s and the ventilator "
               "resumes within T_run,1=35 s even under a total blackout"],
        checks=checks,
    )


# --------------------------------------------------------------------------
# Joint loss-rate x E(Toff) grid (campaign-only sweep)
# --------------------------------------------------------------------------

def grid_spec(config: CaseStudyConfig | None = None, *,
              loss_levels: Sequence[float] = (0.0, 0.3, 0.6),
              mean_toffs: Sequence[float] = (18.0, 6.0),
              duration: float = 600.0, replicates: int = 1) -> CampaignSpec:
    """Build the joint loss-rate x surgeon E(Toff) grid sweep.

    Args:
        config: Base case-study configuration (``None`` = paper defaults).
        loss_levels: Bernoulli packet-loss probabilities (grid axis 1).
        mean_toffs: Surgeon E(Toff) values (grid axis 2).
        duration: Per-trial duration in seconds.
        replicates: Independent trials per grid cell.

    Returns:
        The grid campaign spec (the "one spec away" sweep).
    """
    base = config or CaseStudyConfig()
    trials = []
    for point in expand_grid(loss=loss_levels, mean_toff=mean_toffs):
        loss = float(point["loss"])
        mean_toff = float(point["mean_toff"])
        for with_lease in (True, False):
            trials.append(TrialSpec(
                label=(f"loss={loss:g}, E(Toff)={mean_toff:g}s, "
                       f"{mode_label(with_lease)}"),
                with_lease=with_lease,
                mean_toff=mean_toff,
                duration=float(duration),
                channel=ChannelSpec("bernoulli", loss=loss),
                replicates=replicates,
                params=(("loss", loss), ("mean_toff", mean_toff)),
            ))
    return CampaignSpec(name="grid", trials=tuple(trials), config=base)


def grid_result(campaign: CampaignResult) -> ExperimentResult:
    """Fold a grid campaign into a generic experiment result.

    Args:
        campaign: A completed ``grid`` campaign.

    Returns:
        One row per grid point/mode plus the lease-safety check.
    """
    from repro.experiments.runner import ExperimentResult

    rows = []
    lease_failures = 0
    for group in campaign.groups():
        params = campaign.spec_of(group).param_dict
        rows.append([params["loss"], params["mean_toff"], group.mode,
                     group.trials, group.laser_emissions, group.failures,
                     group.evt_to_stop, group.failing_trials])
        if group.with_lease:
            lease_failures += group.failures
    return ExperimentResult(
        experiment="grid",
        title="Extension: joint loss-rate x E(Toff) sweep (lease vs. no lease)",
        headers=["loss probability", "E(Toff) (s)", "mode", "trials", "emissions",
                 "failures", "evtToStop", "failing trials"],
        rows=rows,
        notes=[f"campaign: {campaign.total_trials} trials, master seed "
               f"{campaign.master_seed}, {campaign.workers} worker(s)"],
        checks={"lease_safe_across_grid": lease_failures == 0},
    )


# --------------------------------------------------------------------------
# Industrial interlock (the paper's beyond-surgery motivation)
# --------------------------------------------------------------------------

def interlock_spec(config: CaseStudyConfig | None = None, *,
                   horizon: float | None = None,
                   replicates: int = 1) -> CampaignSpec:
    """Build the four-entity industrial-interlock campaign.

    The furnace line of ``examples/industrial_interlock.py`` as campaign
    cells: the lease design and the no-lease baseline under the same
    bursty 90%-loss Gilbert-Elliott channel.  Each cell's first replicate
    pins seed 1 (the example's seed) so the preset reproduces the
    example's outcome — lease SAFE, baseline VIOLATED — exactly;
    additional replicates derive their seeds from the master seed.

    Args:
        config: Accepted for registry uniformity; the interlock runner
            builds its own pattern system and ignores case-study
            configuration.
        horizon: Per-trial horizon in seconds (``None`` = the runner's
            250 s default).
        replicates: Independent trials per cell.

    Returns:
        The interlock campaign spec.
    """
    trials = []
    for with_lease in (True, False):
        trials.append(TrialSpec(
            label=f"interlock, {mode_label(with_lease)}",
            with_lease=with_lease,
            duration=horizon,
            replicates=replicates,
            seeds=(1,),
            runner="interlock",
        ))
    return CampaignSpec(name="interlock", trials=tuple(trials),
                        config=config or CaseStudyConfig())


def interlock_result(campaign: CampaignResult) -> ExperimentResult:
    """Fold an interlock campaign into an experiment result.

    Args:
        campaign: A completed ``interlock`` campaign.

    Returns:
        One row per mode plus the lease-safety checks (lease keeps the
        PTE order under the same bursty loss that breaks the baseline).
    """
    from repro.experiments.runner import ExperimentResult

    rows = []
    lease_failures = 0
    baseline_failures = 0
    for group in campaign.groups():
        rows.append([group.mode, group.trials, group.laser_emissions,
                     group.failures, group.evt_to_stop,
                     round(group.max_emission_duration, 1),
                     round(group.mean_loss_ratio, 2)])
        if group.with_lease:
            lease_failures += group.failures
        else:
            baseline_failures += group.failures
    return ExperimentResult(
        experiment="interlock",
        title="Industrial interlock: four-entity furnace line under bursty loss",
        headers=["mode", "trials", "torch activations", "failures", "evtToStop",
                 "max activation (s)", "mean loss ratio"],
        rows=rows,
        notes=["the paper's beyond-surgery motivation: exhaust fan -> coolant "
               "pump -> conveyor -> plasma torch must enter risky modes in "
               "order and leave in reverse",
               "bursty Gilbert-Elliott channel (90% loss in the bad state) on "
               "every wireless link"],
        checks={
            "lease_keeps_pte_order": lease_failures == 0,
            "baseline_violates_pte_order": baseline_failures > 0,
        },
    )


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Preset:
    """A named campaign recipe: spec builder + experiment-result builder."""

    name: str
    description: str
    build: Callable[..., CampaignSpec]
    to_result: Callable[[CampaignResult], ExperimentResult]


PRESETS: Dict[str, Preset] = {
    "table1": Preset(
        name="table1",
        description="Table I: {with, without lease} x E(Toff) under burst interference",
        build=table1_spec,
        to_result=table1_result,
    ),
    "loss_sweep": Preset(
        name="loss_sweep",
        description="Failures vs. memoryless packet-loss probability",
        build=loss_sweep_spec,
        to_result=loss_sweep_result,
    ),
    "scenarios": Preset(
        name="scenarios",
        description="Section V scripted failure stories (deterministic)",
        build=scenarios_spec,
        to_result=scenarios_result,
    ),
    "grid": Preset(
        name="grid",
        description="Joint loss-rate x E(Toff) grid (campaign-only sweep)",
        build=grid_spec,
        to_result=grid_result,
    ),
    "interlock": Preset(
        name="interlock",
        description="Four-entity industrial interlock under bursty loss",
        build=interlock_spec,
        to_result=interlock_result,
    ),
}
