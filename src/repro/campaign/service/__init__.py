"""Campaign service mode: a long-running job server over one warm pool.

The subsystem splits into four modules:

* :mod:`~repro.campaign.service.protocol` — length-prefixed JSON frames
  and the type-directed spec codec (fingerprint-identical to in-process
  specs).
* :mod:`~repro.campaign.service.server` — the :class:`CampaignService`
  daemon: priority job queue, one shared warm
  :class:`~repro.campaign.executor.CampaignPool`, one durable store per
  job keyed by spec fingerprint, restart recovery from the stores
  directory.
* :mod:`~repro.campaign.service.client` — :class:`ServiceClient` and the
  ``serve``/``submit``/``status``/``watch``/``cancel``/``drain``/
  ``shutdown`` CLI subcommands.
* :mod:`~repro.campaign.service.events` — per-job :class:`EventBus` fan
  -out of streaming aggregate snapshots to ``watch`` subscribers.

See ``docs/service.md`` for the protocol and operational guidance.
"""

from repro.campaign.service.client import (DEFAULT_SOCKET, SERVICE_COMMANDS,
                                           ServiceClient, ServiceError,
                                           service_main)
from repro.campaign.service.events import CellAggregator, EventBus
from repro.campaign.service.protocol import (PROTOCOL_VERSION, ProtocolError,
                                             decode_spec, encode_spec,
                                             recv_frame, send_frame)
from repro.campaign.service.server import (CampaignService, Job, JobState,
                                           serve_main)

__all__ = [
    "DEFAULT_SOCKET",
    "PROTOCOL_VERSION",
    "SERVICE_COMMANDS",
    "CampaignService",
    "CellAggregator",
    "EventBus",
    "Job",
    "JobState",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "decode_spec",
    "encode_spec",
    "recv_frame",
    "send_frame",
    "serve_main",
    "service_main",
]
