"""Client side of the campaign service: ``ServiceClient`` + subcommands.

:class:`ServiceClient` wraps the socket protocol in one method per
operation; the module-level :func:`service_main` implements the CLI
subcommands (``python -m repro.campaign serve|submit|status|watch|
cancel|drain|shutdown``) that :mod:`repro.campaign.cli` dispatches to
when its first argument is a known subcommand — the original flag-only
one-shot invocation is untouched.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import socket
import sys
from typing import Iterator, List, Optional

from repro.campaign.service import protocol

#: First-argument tokens that route ``python -m repro.campaign`` into the
#: service CLI instead of the one-shot campaign runner.
SERVICE_COMMANDS = ("serve", "submit", "status", "watch", "cancel",
                    "drain", "shutdown")

#: Default unix-socket path of a locally run service.
DEFAULT_SOCKET = "/tmp/repro-campaign.sock"


class ServiceError(RuntimeError):
    """The service refused a request (its ``error`` response text)."""


class ServiceClient:
    """A blocking client for one campaign service socket.

    Every method opens its own connection, so a client object is cheap
    and stateless; ``watch`` keeps its connection open for the duration
    of the stream.
    """

    def __init__(self, socket_path: str = DEFAULT_SOCKET) -> None:
        """Point the client at a service socket.

        Args:
            socket_path: The unix socket the daemon listens on.
        """
        self.socket_path = socket_path

    def _connect(self) -> socket.socket:
        """Open one connection to the service."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(self.socket_path)
        return sock

    def _roundtrip(self, message: dict) -> dict:
        """Send one request and return its (successful) response.

        Args:
            message: The request frame.

        Returns:
            The response dict (``ok`` is true).

        Raises:
            ServiceError: If the service responds with an error.
            protocol.ProtocolError: If the connection dies mid-response.
        """
        with self._connect() as sock:
            protocol.send_frame(sock, message)
            response = protocol.recv_frame(sock)
        return _checked(response)

    def submit(self, spec, master_seed: int = 0, *,
               payload: str = "summary", priority: int = 0) -> dict:
        """Submit a campaign; returns ``{"job": fingerprint, ...}``.

        Args:
            spec: The :class:`~repro.campaign.spec.CampaignSpec` to run.
            master_seed: The campaign master seed.
            payload: Per-trial payload mode.
            priority: Queue priority (higher runs earlier).

        Returns:
            The service's response (job id, state, queue position).
        """
        return self._roundtrip(protocol.request(
            "submit", spec=protocol.encode_spec(spec),
            master_seed=int(master_seed), payload=payload,
            priority=int(priority)))

    def status(self, job: Optional[str] = None) -> dict:
        """Fetch one job's status (by id or prefix), or the service's.

        Args:
            job: Job fingerprint or unambiguous prefix (``None`` = the
                whole service).

        Returns:
            The status response.
        """
        fields = {} if job is None else {"job": job}
        return self._roundtrip(protocol.request("status", **fields))

    def cancel(self, job: str) -> dict:
        """Cancel a job (immediate when queued, cooperative when running).

        Args:
            job: Job fingerprint or unambiguous prefix.

        Returns:
            The cancel response (the job's resulting state).
        """
        return self._roundtrip(protocol.request("cancel", job=job))

    def drain(self) -> dict:
        """Block until every accepted job reaches a terminal state.

        Returns:
            The drain response mapping job ids to terminal states.
        """
        return self._roundtrip(protocol.request("drain"))

    def shutdown(self) -> dict:
        """Ask the daemon to shut down gracefully.

        Returns:
            The acknowledgement response.
        """
        return self._roundtrip(protocol.request("shutdown"))

    def watch(self, job: str) -> Iterator[dict]:
        """Stream a job's events until its terminal ``done`` event.

        Args:
            job: Job fingerprint or unambiguous prefix.

        Yields:
            Event dicts (``snapshot``, ``trial``, ``checkpoint``,
            ``recovery``, ``state``, then ``done``).

        Raises:
            ServiceError: If the service rejects the watch request.
        """
        with self._connect() as sock:
            protocol.send_frame(sock, protocol.request("watch", job=job))
            _checked(protocol.recv_frame(sock))
            while True:
                event = protocol.recv_frame(sock)
                if event is None:
                    return
                yield event
                if event.get("event") == "done":
                    return


def _checked(response: Optional[dict]) -> dict:
    """Validate a response frame, raising on errors and dead connections.

    Args:
        response: The decoded response, or ``None`` on EOF.

    Returns:
        The response, when it reports success.

    Raises:
        protocol.ProtocolError: On EOF before a response.
        ServiceError: On an ``ok: false`` response.
    """
    if response is None:
        raise protocol.ProtocolError(
            "service closed the connection without responding")
    if not response.get("ok", False):
        raise ServiceError(str(response.get("error", "request failed")))
    return response


# --------------------------------------------------------------------------
# CLI subcommands
# --------------------------------------------------------------------------

def _build_parser() -> argparse.ArgumentParser:
    """Build the service subcommand parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Campaign service commands (run a daemon, talk to one).")
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser(
        "serve", help="run a campaign service daemon in the foreground")
    serve.add_argument("--socket", default=DEFAULT_SOCKET,
                       help="unix socket path to listen on")
    serve.add_argument("--stores-dir", required=True,
                       help="directory of per-job durable stores")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes in the shared warm pool")
    serve.add_argument("--engine", default=None,
                       choices=("reference", "compiled", "batched"),
                       help="simulation kernel override for every job")
    serve.add_argument("--batch-size", type=int, default=None,
                       help="replicate batch size override for every job")

    submit = commands.add_parser(
        "submit", help="queue a preset campaign on a running service")
    submit.add_argument("--socket", default=DEFAULT_SOCKET)
    submit.add_argument("--experiment", "--preset", dest="experiment",
                        required=True,
                        help="campaign preset to submit")
    submit.add_argument("--seed", type=int, default=0,
                        help="campaign master seed")
    submit.add_argument("--replicates", type=int, default=None,
                        help="scale the preset to this many replicates "
                             "per cell (derived seeding)")
    submit.add_argument("--duration", type=float, default=None,
                        help="campaign-level per-trial duration override "
                             "in seconds")
    submit.add_argument("--payload", default="summary",
                        choices=("summary", "stats", "full"))
    submit.add_argument("--priority", type=int, default=0,
                        help="queue priority (higher runs earlier)")

    for name, needs_job in (("status", False), ("watch", True),
                            ("cancel", True)):
        sub = commands.add_parser(name)
        sub.add_argument("--socket", default=DEFAULT_SOCKET)
        if needs_job:
            sub.add_argument("job", help="job fingerprint (or prefix)")
        else:
            sub.add_argument("job", nargs="?", default=None,
                             help="job fingerprint (or prefix); omit for "
                                  "the whole service")
    for name in ("drain", "shutdown"):
        sub = commands.add_parser(name)
        sub.add_argument("--socket", default=DEFAULT_SOCKET)
    return parser


def _submit_spec(args: argparse.Namespace):
    """Build the campaign spec a ``submit`` invocation describes."""
    from repro.campaign.presets import PRESETS
    if args.experiment not in PRESETS:
        raise SystemExit(f"unknown preset {args.experiment!r}; expected one "
                         f"of {', '.join(sorted(PRESETS))}")
    spec = PRESETS[args.experiment].build()
    if args.replicates is not None:
        spec = spec.scaled(args.replicates)
    if args.duration is not None:
        spec = dataclasses.replace(spec, duration=float(args.duration))
    return spec


def _print_event(event: dict) -> None:
    """Render one watch event as a progress line."""
    kind = event.get("event")
    if kind == "snapshot":
        print(f"[watch] {event['done']}/{event['total']} trials done "
              f"({len(event['cells'])} cell(s) started)")
    elif kind == "trial":
        cell = event["cell"]
        print(f"[watch] {event['done']}/{event['total']} "
              f"{cell['label']}: {cell['trials']} trial(s), "
              f"{cell['failures']} failure(s)")
    elif kind == "recovery":
        print(f"[watch] recovery: {event['kind']} {event['detail']}")
    elif kind == "checkpoint":
        print(f"[watch] checkpoint: {event['rows']} row(s) committed")
    elif kind == "state":
        print(f"[watch] job is {event['state']}")
    elif kind == "done":
        suffix = f": {event['error']}" if "error" in event else ""
        print(f"[watch] job finished: {event['state']}{suffix}")


def service_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the service subcommands.

    Args:
        argv: Argument list (``None`` = ``sys.argv[1:]``).

    Returns:
        Process exit status: 0 on success, 1 when a watched or awaited
        job ends in a non-complete state, 2 on usage/connection errors.
    """
    args = _build_parser().parse_args(argv)
    if args.command == "serve":
        from repro.campaign.service.server import serve_main
        return serve_main(args.socket, args.stores_dir,
                          max_workers=args.workers, engine=args.engine,
                          batch_size=args.batch_size)
    client = ServiceClient(args.socket)
    try:
        if args.command == "submit":
            response = client.submit(_submit_spec(args), args.seed,
                                     payload=args.payload,
                                     priority=args.priority)
            print(json.dumps(response, sort_keys=True))
            return 0
        if args.command == "status":
            print(json.dumps(client.status(args.job), sort_keys=True,
                             indent=2))
            return 0
        if args.command == "watch":
            final = "failed"
            for event in client.watch(args.job):
                _print_event(event)
                if event.get("event") == "done":
                    final = str(event.get("state"))
            return 0 if final == "complete" else 1
        if args.command == "cancel":
            print(json.dumps(client.cancel(args.job), sort_keys=True))
            return 0
        if args.command == "drain":
            response = client.drain()
            print(json.dumps(response, sort_keys=True))
            states = set(response.get("jobs", {}).values())
            return 0 if states <= {"complete", "cancelled"} else 1
        if args.command == "shutdown":
            print(json.dumps(client.shutdown(), sort_keys=True))
            return 0
    except (ServiceError, protocol.ProtocolError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ConnectionRefusedError, FileNotFoundError):
        print(f"error: no campaign service at {args.socket}",
              file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")
