"""Streaming job events: per-cell aggregate snapshots for ``watch``.

Each running job owns one :class:`EventBus`.  The executor's hooks feed
it — ``on_result`` marks a trial done, ``on_event`` surfaces recovery
actions live, the store's ``on_commit`` hook reports durable checkpoint
progress — and every ``watch`` subscriber drains its own queue of the
resulting event dicts.  The bus also keeps a :class:`CellAggregator` up
to date, so a subscriber attaching mid-run starts from a full snapshot
of the per-cell aggregates instead of an empty screen.

Event shapes (all JSON-ready dicts, ``"event"`` discriminates):

* ``{"event": "state", "state": <job state>}`` — lifecycle transition.
* ``{"event": "trial", "done": N, "total": M, "cell": {...}}`` — one
  trial retired; ``cell`` is the updated aggregate of its cell.
* ``{"event": "checkpoint", "rows": N}`` — one durable store commit.
* ``{"event": "recovery", "kind": ..., "detail": ...}`` — a supervisor
  recovery action (pool respawn, deadline kill, quarantine, ...).
* ``{"event": "snapshot", "done": N, "total": M, "cells": [...]}`` — the
  catch-up snapshot sent to a freshly attached subscriber.
* ``{"event": "done", "state": ..., "error": ...?}`` — terminal; closes
  the stream.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
from typing import Dict, List, Optional

from repro.campaign.aggregate import GroupSummary, TrialSummary


class CellAggregator:
    """Order-independent per-cell (per-label) aggregate accumulator.

    Keeps each cell's :class:`~repro.campaign.aggregate.TrialSummary`
    list and folds it through the same
    :meth:`~repro.campaign.aggregate.GroupSummary.from_summaries`
    reduction the final campaign result uses, so a streamed snapshot at
    100% equals the completed job's group rows.
    """

    def __init__(self) -> None:
        """Start with no cells."""
        self._cells: Dict[str, List[TrialSummary]] = {}
        self._order: List[str] = []

    def add(self, summary: TrialSummary) -> GroupSummary:
        """Fold one trial summary in and return its cell's new aggregate.

        Args:
            summary: The retired trial's summary.

        Returns:
            The updated aggregate of the trial's cell.
        """
        if summary.label not in self._cells:
            self._cells[summary.label] = []
            self._order.append(summary.label)
        cell = self._cells[summary.label]
        cell.append(summary)
        return GroupSummary.from_summaries(cell)

    @property
    def done(self) -> int:
        """Number of trials folded in so far."""
        return sum(len(cell) for cell in self._cells.values())

    def snapshot(self) -> List[dict]:
        """Return every cell's aggregate as JSON-ready dicts.

        Returns:
            One dict per cell, in first-seen order.
        """
        return [cell_json(GroupSummary.from_summaries(self._cells[label]))
                for label in self._order]


def cell_json(group: GroupSummary) -> dict:
    """Encode one cell aggregate as a JSON-ready dict.

    Args:
        group: The cell's aggregate.

    Returns:
        The aggregate's fields as JSON primitives.
    """
    return dataclasses.asdict(group)


class EventBus:
    """Fan-out of one job's event stream to any number of subscribers.

    Publishers (the executor hooks, driven from the service's runner
    thread) and subscribers (``watch`` connection threads) never share
    state beyond this class; all methods are thread-safe.
    """

    def __init__(self, total_trials: int) -> None:
        """Create the bus for a job expanding to ``total_trials`` trials.

        Args:
            total_trials: The job's concrete trial count (snapshot and
                trial events carry it as ``total``).
        """
        self.total_trials = int(total_trials)
        self._lock = threading.Lock()
        self._subscribers: List[queue.SimpleQueue] = []
        self._aggregator = CellAggregator()
        self._closed: Optional[dict] = None

    # -- publisher side ----------------------------------------------------

    def publish(self, event: dict) -> None:
        """Broadcast one event dict to every current subscriber.

        Args:
            event: A JSON-ready event (see the module docstring shapes).
        """
        with self._lock:
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            subscriber.put(event)

    def trial_done(self, summary: TrialSummary) -> None:
        """Fold one retired trial in and broadcast its ``trial`` event.

        This is the method bound to the executor's ``on_result`` hook.

        Args:
            summary: The retired trial's summary.
        """
        with self._lock:
            cell = self._aggregator.add(summary)
            done = self._aggregator.done
        self.publish({"event": "trial", "done": done,
                      "total": self.total_trials, "cell": cell_json(cell)})

    def recovery(self, kind: str, detail: str) -> None:
        """Broadcast one executor recovery event (``on_event`` hook)."""
        self.publish({"event": "recovery", "kind": kind, "detail": detail})

    def checkpoint(self, rows: int) -> None:
        """Broadcast one durable-commit event (store ``on_commit`` hook)."""
        self.publish({"event": "checkpoint", "rows": int(rows)})

    def state(self, state: str) -> None:
        """Broadcast a job lifecycle transition."""
        self.publish({"event": "state", "state": state})

    def close(self, final_event: dict) -> None:
        """Broadcast the terminal event and mark the stream finished.

        Subscribers attaching after close receive the snapshot plus the
        terminal event immediately.

        Args:
            final_event: The ``done`` event ending every subscriber's
                stream.
        """
        with self._lock:
            self._closed = final_event
        self.publish(final_event)

    # -- subscriber side ---------------------------------------------------

    def subscribe(self) -> "queue.SimpleQueue[dict]":
        """Attach a new subscriber and seed it with a catch-up snapshot.

        Returns:
            The subscriber's private queue.  The first event is always a
            ``snapshot``; if the job already finished the terminal event
            follows immediately.
        """
        subscriber: "queue.SimpleQueue[dict]" = queue.SimpleQueue()
        with self._lock:
            snapshot = {"event": "snapshot", "done": self._aggregator.done,
                        "total": self.total_trials,
                        "cells": self._aggregator.snapshot()}
            closed = self._closed
            self._subscribers.append(subscriber)
        subscriber.put(snapshot)
        if closed is not None:
            subscriber.put(closed)
        return subscriber

    def unsubscribe(self, subscriber: "queue.SimpleQueue[dict]") -> None:
        """Detach a subscriber (its queue stops receiving events).

        Args:
            subscriber: The queue returned by :meth:`subscribe`.
        """
        with self._lock:
            try:
                self._subscribers.remove(subscriber)
            except ValueError:
                pass
