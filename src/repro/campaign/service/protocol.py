"""Wire protocol of the campaign service: length-prefixed JSON frames.

Every message on the service socket is one *frame*: a 4-byte big-endian
payload length followed by a UTF-8 JSON object serialized with sorted
keys.  Requests carry ``{"v": PROTOCOL_VERSION, "op": <operation>, ...}``;
responses carry ``{"v": ..., "ok": true/false, ...}``.  The ``watch``
operation is the one streaming exception: after the initial ``ok``
response the server keeps sending event frames on the same connection
until the job finishes or the client disconnects.

The module also hosts the spec codec: a type-directed encoder/decoder
pair that round-trips a :class:`~repro.campaign.spec.CampaignSpec`
(nested frozen dataclasses all the way down) through plain JSON.  The
encoder is the *same* canonicalization the store's spec fingerprint uses,
so a spec submitted over the wire fingerprints identically to one built
in process — which is what lets the server key stores and job ids by
fingerprint.
"""

from __future__ import annotations

import dataclasses
import json
import socket
import struct
import types
import typing
from typing import Optional

from repro.campaign.spec import CampaignSpec
from repro.campaign.store import _canonical

#: Version stamp carried by every frame; a server rejects requests from a
#: different major version loudly instead of misreading them.
PROTOCOL_VERSION = 1

#: Upper bound on a single frame's payload, guarding against a corrupt or
#: hostile length prefix allocating unbounded memory.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: The operations a client may request.
OPERATIONS = ("submit", "status", "watch", "cancel", "drain", "shutdown")

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A frame violated the wire protocol (length, encoding, or schema)."""


# --------------------------------------------------------------------------
# Frames
# --------------------------------------------------------------------------

def send_frame(sock: socket.socket, message: dict) -> None:
    """Serialize one message and write it as a single frame.

    Args:
        sock: A connected stream socket.
        message: A JSON-ready dict (the caller adds ``v``/``op`` keys via
            the helpers below).

    Raises:
        ProtocolError: If the encoded payload exceeds
            :data:`MAX_FRAME_BYTES`.
    """
    payload = json.dumps(message, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds the "
                            f"{MAX_FRAME_BYTES}-byte limit")
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """Read one complete frame, or ``None`` on a clean end-of-stream.

    Args:
        sock: A connected stream socket.

    Returns:
        The decoded message dict, or ``None`` if the peer closed the
        connection before sending another frame.

    Raises:
        ProtocolError: On a truncated frame, an oversized length prefix,
            or a payload that is not a JSON object.
    """
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds the "
                            f"{MAX_FRAME_BYTES}-byte limit")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError("connection closed mid-frame")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"frame payload is {type(message).__name__}, "
                            f"expected an object")
    return message


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes, or ``None`` on EOF before any byte.

    Args:
        sock: A connected stream socket.
        count: Number of bytes to read (0 returns ``b""``).

    Returns:
        The bytes read, or ``None`` if the stream ended cleanly before
        the first byte.

    Raises:
        ProtocolError: If the stream ends partway through.
    """
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# --------------------------------------------------------------------------
# Message helpers
# --------------------------------------------------------------------------

def request(op: str, **fields: object) -> dict:
    """Build a versioned request message.

    Args:
        op: One of :data:`OPERATIONS`.
        **fields: Operation-specific fields.

    Returns:
        The request dict.

    Raises:
        ProtocolError: For an unknown operation name.
    """
    if op not in OPERATIONS:
        raise ProtocolError(f"unknown operation {op!r}; "
                            f"expected one of {OPERATIONS}")
    message = {"v": PROTOCOL_VERSION, "op": op}
    message.update(fields)
    return message


def ok(**fields: object) -> dict:
    """Build a success response message."""
    message = {"v": PROTOCOL_VERSION, "ok": True}
    message.update(fields)
    return message


def error(message_text: str, **fields: object) -> dict:
    """Build an error response message carrying ``message_text``."""
    message = {"v": PROTOCOL_VERSION, "ok": False, "error": message_text}
    message.update(fields)
    return message


def check_version(message: dict) -> None:
    """Reject a message whose protocol version is not ours.

    Args:
        message: A decoded frame.

    Raises:
        ProtocolError: On a missing or mismatched version stamp.
    """
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"protocol version {version!r} is not the "
                            f"supported version {PROTOCOL_VERSION}")


# --------------------------------------------------------------------------
# Spec codec
# --------------------------------------------------------------------------

def encode_spec(spec: CampaignSpec) -> dict:
    """Encode a campaign spec as canonical JSON-ready primitives.

    Delegates to the store's fingerprint canonicalization, so the wire
    encoding and the identity digest can never drift apart.

    Args:
        spec: The campaign description.

    Returns:
        A dict of JSON primitives (tuples as lists, dataclasses as
        field dicts).
    """
    return _canonical(spec)


def decode_spec(data: dict) -> CampaignSpec:
    """Reconstruct a campaign spec from its wire encoding.

    Args:
        data: The dict produced by :func:`encode_spec` (possibly after a
            JSON round trip).

    Returns:
        The reconstructed spec; ``decode_spec(encode_spec(s)) == s`` and
        the two fingerprint identically.

    Raises:
        ProtocolError: If the data does not match the spec schema.
    """
    try:
        return _decode(data, CampaignSpec)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"undecodable campaign spec: {exc}") from exc


def _decode(value: object, target: object) -> object:
    """Rebuild ``value`` (JSON primitives) as an instance of ``target``.

    Type-directed: the JSON carries no tags; the expected dataclass field
    types (via ``typing.get_type_hints``) drive the reconstruction of
    nested dataclasses, fixed and variadic tuples, and optionals.

    Args:
        value: JSON-decoded data (dicts/lists/primitives).
        target: The expected type (a dataclass, a ``typing`` generic, a
            primitive type, or ``object`` for pass-through).

    Returns:
        The reconstructed value.

    Raises:
        TypeError: If the value cannot be shaped into the target type.
    """
    if target is object or target is typing.Any:
        return value
    origin = typing.get_origin(target)
    if origin is typing.Union or isinstance(target, types.UnionType):
        last_error: Exception = TypeError(f"no union arm matched {value!r}")
        for arm in typing.get_args(target):
            if arm is type(None):
                if value is None:
                    return None
                continue
            try:
                return _decode(value, arm)
            except (KeyError, TypeError, ValueError) as exc:
                last_error = exc
        raise last_error
    if dataclasses.is_dataclass(target) and isinstance(target, type):
        if not isinstance(value, dict):
            raise TypeError(f"expected an object for {target.__name__}, "
                            f"got {type(value).__name__}")
        hints = typing.get_type_hints(target)
        kwargs = {f.name: _decode(value[f.name], hints[f.name])
                  for f in dataclasses.fields(target) if f.name in value}
        return target(**kwargs)
    if origin is tuple:
        args = typing.get_args(target)
        if not isinstance(value, (list, tuple)):
            raise TypeError(f"expected a sequence, got {type(value).__name__}")
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(_decode(item, args[0]) for item in value)
        if len(args) != len(value):
            raise TypeError(f"expected {len(args)} items, got {len(value)}")
        return tuple(_decode(item, arm) for item, arm in zip(value, args))
    if origin is list:
        (arm,) = typing.get_args(target) or (object,)
        return [_decode(item, arm) for item in value]
    if origin is dict:
        arms = typing.get_args(target) or (object, object)
        return {_decode(key, arms[0]): _decode(val, arms[1])
                for key, val in value.items()}
    if target is float:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TypeError(f"expected a number, got {type(value).__name__}")
        return float(value)
    if target in (int, bool, str):
        if not isinstance(value, target) or (target is int
                                             and isinstance(value, bool)):
            raise TypeError(f"expected {target.__name__}, "
                            f"got {type(value).__name__}")
        return value
    raise TypeError(f"no decoder for target type {target!r}")
