"""The campaign service daemon: queued jobs over one warm worker pool.

``python -m repro.campaign serve --socket PATH --stores-dir DIR`` runs a
:class:`CampaignService`: a unix-socket server that accepts
:class:`~repro.campaign.spec.CampaignSpec` submissions, queues them by
priority, and executes them one at a time on a single warm
:class:`~repro.campaign.executor.CampaignPool` — so back-to-back jobs
skip process-pool spin-up entirely (the integration tests assert the
worker PIDs are identical across jobs).

Job identity *is* the spec fingerprint
(:func:`~repro.campaign.store.spec_fingerprint` over the canonical
``(spec, master_seed)`` encoding): each job owns one durable store at
``<stores-dir>/<fingerprint>.db`` plus a sidecar ``<fingerprint>.job.json``
recording the submission.  That makes submission idempotent (re-submitting
a spec returns the existing job) and makes restart recovery trivial: on
startup the service scans the stores directory, registers finished stores
as COMPLETE, and re-enqueues every sidecar whose store is incomplete —
``run_campaign(resume=True)`` then replays the checkpointed prefix
through the executor's ``RecoveryStateMachine`` and simulates only the
remainder, preserving the repo's bit-identity contract across a mid-job
SIGKILL of the daemon itself.

Job lifecycle::

    QUEUED ──▶ RUNNING ──▶ COMPLETE
      │            ├─────▶ FAILED
      └────────────┴─────▶ CANCELLED

See ``docs/service.md`` for the wire protocol and operational guidance.
"""

from __future__ import annotations

import enum
import heapq
import json
import os
import queue
import signal
import socket
import threading
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.campaign.executor import (CampaignCancelled, CampaignPool,
                                     run_campaign)
from repro.campaign.service import protocol
from repro.campaign.service.events import EventBus, cell_json
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import (CampaignStore, CampaignStoreError,
                                  enumerate_stores, spec_fingerprint)

#: How often (seconds) blocking loops wake to check stop/cancel flags.
_POLL_INTERVAL = 0.2


class JobState(enum.Enum):
    """Lifecycle states of a service job, in order of appearance."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETE = "complete"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States from which a job can never leave.
TERMINAL_STATES = (JobState.COMPLETE, JobState.FAILED, JobState.CANCELLED)


@dataclass
class Job:
    """One submitted campaign and everything the service knows about it."""

    fingerprint: str
    spec: CampaignSpec
    master_seed: int
    payload: str
    priority: int
    seq: int
    state: JobState = JobState.QUEUED
    error: Optional[str] = None
    pool_pids: Tuple[int, ...] = ()
    cells: List[dict] = field(default_factory=list)
    bus: EventBus = None  # type: ignore[assignment]  # set in __post_init__
    cancel: threading.Event = field(default_factory=threading.Event)

    def __post_init__(self) -> None:
        if self.bus is None:
            self.bus = EventBus(self.spec.total_trials)

    def to_json(self, store_status: Optional[dict] = None) -> dict:
        """Encode the job for a ``status`` response.

        Args:
            store_status: The job store's
                :meth:`~repro.campaign.store.CheckpointStatus.to_json`
                snapshot, when the caller read one.

        Returns:
            The JSON-ready job description.
        """
        body = {
            "job": self.fingerprint,
            "name": self.spec.name,
            "state": self.state.value,
            "priority": self.priority,
            "total_trials": self.spec.total_trials,
            "pool_pids": list(self.pool_pids),
            "cells": self.cells,
        }
        if self.error is not None:
            body["error"] = self.error
        if store_status is not None:
            body["store"] = store_status
        return body


class CampaignService:
    """A long-running campaign job server on a unix socket.

    One instance owns the socket, the priority queue, the warm worker
    pool, and the stores directory.  :meth:`serve` runs the accept loop
    in the calling thread until a ``shutdown`` request (or SIGTERM /
    SIGINT) stops it; jobs execute sequentially on a dedicated runner
    thread so a slow campaign never blocks status queries.
    """

    def __init__(self, socket_path: str | os.PathLike,
                 stores_dir: str | os.PathLike, *,
                 max_workers: int = 2, engine: str | None = None,
                 batch_size: int | None = None) -> None:
        """Configure the service (no sockets are opened yet).

        Args:
            socket_path: Unix socket path to listen on; a stale socket
                file from a killed daemon is replaced on startup.
            stores_dir: Directory of per-job durable stores and submission
                sidecars (created if missing).
            max_workers: Worker-process count of the shared warm pool.
            engine: Simulation kernel override for every job (``None`` =
                the campaign default).
            batch_size: Replicate batch size override for every job.
        """
        self.socket_path = os.fspath(socket_path)
        self.stores_dir = os.fspath(stores_dir)
        self.engine = engine
        self.batch_size = batch_size
        self.pool = CampaignPool(max_workers)
        self._lock = threading.Condition()
        self._jobs: Dict[str, Job] = {}
        self._queue: List[Tuple[int, int, str]] = []  # (-priority, seq, fp)
        self._seq = 0
        self._stopping = False
        self._runner: Optional[threading.Thread] = None
        os.makedirs(self.stores_dir, exist_ok=True)
        self._recover()

    # -- paths -------------------------------------------------------------

    def _store_path(self, fingerprint: str) -> str:
        """Return the durable store path of a job."""
        return os.path.join(self.stores_dir, f"{fingerprint}.db")

    def _sidecar_path(self, fingerprint: str) -> str:
        """Return the submission-sidecar path of a job."""
        return os.path.join(self.stores_dir, f"{fingerprint}.job.json")

    # -- startup recovery --------------------------------------------------

    def _recover(self) -> None:
        """Re-register every job found in the stores directory.

        Finished stores come back as COMPLETE entries; incomplete stores
        whose sidecar survives are re-enqueued for a ``resume=True`` run
        (the store replays its checkpointed prefix, so nothing simulated
        before the crash is simulated again).
        """
        statuses = {path: status
                    for path, status in enumerate_stores(self.stores_dir)}
        for name in sorted(os.listdir(self.stores_dir)):
            if not name.endswith(".job.json"):
                continue
            sidecar = os.path.join(self.stores_dir, name)
            try:
                with open(sidecar, "r", encoding="utf-8") as handle:
                    record = json.load(handle)
                spec = protocol.decode_spec(record["spec"])
                master_seed = int(record["master_seed"])
            except (OSError, ValueError, KeyError,
                    protocol.ProtocolError):
                continue
            fingerprint = spec_fingerprint(spec, master_seed)
            if fingerprint != name[:-len(".job.json")]:
                continue
            job = Job(fingerprint=fingerprint, spec=spec,
                      master_seed=master_seed,
                      payload=str(record.get("payload", "summary")),
                      priority=int(record.get("priority", 0)),
                      seq=self._next_seq())
            status = statuses.get(self._store_path(fingerprint))
            if status is not None and status.complete:
                job.state = JobState.COMPLETE
                job.bus.close({"event": "done", "state": job.state.value})
            else:
                heapq.heappush(self._queue,
                               (-job.priority, job.seq, fingerprint))
            self._jobs[fingerprint] = job

    def _next_seq(self) -> int:
        """Return the next submission sequence number (FIFO tiebreaker)."""
        self._seq += 1
        return self._seq

    # -- job execution -----------------------------------------------------

    def _runner_loop(self) -> None:
        """Execute queued jobs one at a time until asked to stop."""
        while True:
            with self._lock:
                while not self._queue and not self._stopping:
                    self._lock.wait(_POLL_INTERVAL)
                if self._stopping:
                    return
                _, _, fingerprint = heapq.heappop(self._queue)
                job = self._jobs[fingerprint]
                if job.state is not JobState.QUEUED:
                    continue
                job.state = JobState.RUNNING
            job.bus.state(JobState.RUNNING.value)
            self._run_job(job)
            with self._lock:
                self._lock.notify_all()

    def _run_job(self, job: Job) -> None:
        """Run one job to a terminal state on the shared warm pool.

        Args:
            job: The job to execute (already marked RUNNING).
        """
        final: JobState
        try:
            store = CampaignStore(self._store_path(job.fingerprint))
            store.on_commit = job.bus.checkpoint
            try:
                result = run_campaign(
                    job.spec, seed=job.master_seed, payload=job.payload,
                    max_workers=self.pool.max_workers,
                    engine=self.engine, batch_size=self.batch_size,
                    store=store, resume=True, pool=self.pool,
                    stop=job.cancel.is_set,
                    on_result=job.bus.trial_done,
                    on_event=job.bus.recovery)
            finally:
                store.close()
            job.cells = [cell_json(group) for group in result.groups()]
            job.pool_pids = self.pool.worker_pids()
            final = JobState.COMPLETE
        except CampaignCancelled:
            final = JobState.CANCELLED
        except Exception as exc:  # noqa: BLE001 - a job must never kill the daemon
            job.error = f"{type(exc).__name__}: {exc}"
            traceback.print_exc()
            final = JobState.FAILED
        with self._lock:
            job.state = final
        done = {"event": "done", "state": final.value}
        if job.error is not None:
            done["error"] = job.error
        job.bus.close(done)

    # -- request handlers --------------------------------------------------

    def _find_job(self, token: str) -> Job:
        """Resolve a job by full fingerprint or unambiguous prefix.

        Args:
            token: A fingerprint, or a prefix of one.

        Returns:
            The matching job.

        Raises:
            KeyError: If no job matches, or the prefix is ambiguous.
        """
        if token in self._jobs:
            return self._jobs[token]
        matches = [job for fp, job in self._jobs.items()
                   if fp.startswith(token)]
        if not matches:
            raise KeyError(f"no job matches {token!r}")
        if len(matches) > 1:
            raise KeyError(f"job prefix {token!r} is ambiguous "
                           f"({len(matches)} matches)")
        return matches[0]

    def _handle_submit(self, message: dict) -> dict:
        """Queue one campaign submission (idempotent by fingerprint)."""
        spec = protocol.decode_spec(message["spec"])
        master_seed = int(message.get("master_seed", 0))
        payload = str(message.get("payload", "summary"))
        priority = int(message.get("priority", 0))
        fingerprint = spec_fingerprint(spec, master_seed)
        with self._lock:
            if self._stopping:
                return protocol.error("service is shutting down")
            existing = self._jobs.get(fingerprint)
            if existing is not None:
                return protocol.ok(job=fingerprint,
                                   state=existing.state.value,
                                   duplicate=True)
            job = Job(fingerprint=fingerprint, spec=spec,
                      master_seed=master_seed, payload=payload,
                      priority=priority, seq=self._next_seq())
            sidecar = {"v": protocol.PROTOCOL_VERSION,
                       "spec": protocol.encode_spec(spec),
                       "master_seed": master_seed, "payload": payload,
                       "priority": priority}
            with open(self._sidecar_path(fingerprint), "w",
                      encoding="utf-8") as handle:
                json.dump(sidecar, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            self._jobs[fingerprint] = job
            heapq.heappush(self._queue, (-priority, job.seq, fingerprint))
            position = len(self._queue)
            self._lock.notify_all()
        return protocol.ok(job=fingerprint, state=JobState.QUEUED.value,
                           position=position)

    def _handle_status(self, message: dict) -> dict:
        """Report one job's status, or the whole service's."""
        token = message.get("job")
        if token is None:
            with self._lock:
                jobs = [job.to_json() for job in
                        sorted(self._jobs.values(), key=lambda j: j.seq)]
                queued = len(self._queue)
            return protocol.ok(jobs=jobs, queued=queued,
                               pool_pids=list(self.pool.worker_pids()),
                               stores_dir=self.stores_dir)
        try:
            with self._lock:
                job = self._find_job(str(token))
        except KeyError as exc:
            return protocol.error(str(exc))
        store_status = None
        store_path = self._store_path(job.fingerprint)
        if os.path.exists(store_path):
            try:
                with CampaignStore(store_path, read_only=True) as store:
                    snapshot = store.status()
                store_status = (snapshot.to_json()
                                if snapshot is not None else None)
            except CampaignStoreError:
                store_status = None
        return protocol.ok(**job.to_json(store_status))

    def _handle_cancel(self, message: dict) -> dict:
        """Cancel one job: immediately if queued, cooperatively if running."""
        try:
            with self._lock:
                job = self._find_job(str(message.get("job", "")))
                if job.state in TERMINAL_STATES:
                    return protocol.ok(job=job.fingerprint,
                                       state=job.state.value)
                job.cancel.set()
                if job.state is JobState.QUEUED:
                    job.state = JobState.CANCELLED
        except KeyError as exc:
            return protocol.error(str(exc))
        if job.state is JobState.CANCELLED:
            job.bus.close({"event": "done",
                           "state": JobState.CANCELLED.value})
        return protocol.ok(job=job.fingerprint, state=job.state.value)

    def _handle_drain(self, message: dict) -> dict:
        """Block until every accepted job reaches a terminal state."""
        with self._lock:
            while any(job.state not in TERMINAL_STATES
                      for job in self._jobs.values()):
                self._lock.wait(_POLL_INTERVAL)
            states = {job.fingerprint: job.state.value
                      for job in self._jobs.values()}
        return protocol.ok(jobs=states)

    def _handle_watch(self, sock: socket.socket, message: dict) -> None:
        """Stream one job's events until its terminal event (or EOF)."""
        try:
            with self._lock:
                job = self._find_job(str(message.get("job", "")))
        except KeyError as exc:
            protocol.send_frame(sock, protocol.error(str(exc)))
            return
        protocol.send_frame(sock, protocol.ok(job=job.fingerprint,
                                              state=job.state.value))
        subscriber = job.bus.subscribe()
        try:
            while True:
                try:
                    event = subscriber.get(timeout=_POLL_INTERVAL)
                except queue.Empty:
                    with self._lock:
                        if self._stopping:
                            return
                    continue
                protocol.send_frame(sock, event)
                if event.get("event") == "done":
                    return
        except OSError:
            return  # subscriber went away; nothing to clean up but the queue
        finally:
            job.bus.unsubscribe(subscriber)

    # -- socket plumbing ---------------------------------------------------

    def _handle_connection(self, sock: socket.socket) -> None:
        """Serve one client connection (one or more request frames)."""
        with sock:
            while True:
                try:
                    message = protocol.recv_frame(sock)
                except protocol.ProtocolError as exc:
                    try:
                        protocol.send_frame(sock, protocol.error(str(exc)))
                    except OSError:
                        pass
                    return
                if message is None:
                    return
                try:
                    protocol.check_version(message)
                    op = message.get("op")
                    if op == "watch":
                        self._handle_watch(sock, message)
                        continue
                    if op == "submit":
                        response = self._handle_submit(message)
                    elif op == "status":
                        response = self._handle_status(message)
                    elif op == "cancel":
                        response = self._handle_cancel(message)
                    elif op == "drain":
                        response = self._handle_drain(message)
                    elif op == "shutdown":
                        response = protocol.ok(stopping=True)
                        protocol.send_frame(sock, response)
                        self.initiate_shutdown()
                        return
                    else:
                        response = protocol.error(
                            f"unknown operation {op!r}")
                except protocol.ProtocolError as exc:
                    response = protocol.error(str(exc))
                except Exception as exc:  # noqa: BLE001 - report, don't die
                    traceback.print_exc()
                    response = protocol.error(
                        f"{type(exc).__name__}: {exc}")
                try:
                    protocol.send_frame(sock, response)
                except OSError:
                    return

    def initiate_shutdown(self) -> None:
        """Ask the accept loop and the runner to stop.

        Graceful: the currently running job (if any) finishes first;
        still-queued jobs stay durably recorded in the stores directory
        and are re-enqueued by the next daemon start.
        """
        with self._lock:
            self._stopping = True
            self._lock.notify_all()

    def serve(self) -> None:
        """Bind the socket and serve requests until shutdown.

        Installs SIGTERM/SIGINT handlers (main thread only) that trigger
        the same graceful shutdown as the ``shutdown`` operation.  The
        socket file is unlinked and the warm pool torn down on the way
        out.
        """
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(self.socket_path)
        server.listen(16)
        server.settimeout(_POLL_INTERVAL)
        self._runner = threading.Thread(target=self._runner_loop,
                                        name="campaign-runner", daemon=True)
        self._runner.start()
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGTERM, signal.SIGINT):
                signal.signal(signum,
                              lambda *_: self.initiate_shutdown())
        handlers: List[threading.Thread] = []
        try:
            while True:
                with self._lock:
                    if self._stopping:
                        break
                try:
                    sock, _ = server.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                thread = threading.Thread(target=self._handle_connection,
                                          args=(sock,), daemon=True)
                thread.start()
                handlers.append(thread)
        finally:
            server.close()
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)
            if self._runner is not None:
                self._runner.join(timeout=30.0)
            for thread in handlers:
                thread.join(timeout=1.0)
            self.pool.shutdown()


def serve_main(socket_path: str, stores_dir: str, *,
               max_workers: int = 2, engine: str | None = None,
               batch_size: int | None = None) -> int:
    """Run a campaign service daemon in the foreground.

    Args:
        socket_path: Unix socket path to listen on.
        stores_dir: Directory of per-job stores and sidecars.
        max_workers: Worker-process count of the shared warm pool.
        engine: Simulation kernel override for every job.
        batch_size: Replicate batch size override for every job.

    Returns:
        Process exit status (0 after a graceful shutdown).
    """
    service = CampaignService(socket_path, stores_dir,
                              max_workers=max_workers, engine=engine,
                              batch_size=batch_size)
    service.serve()
    return 0
