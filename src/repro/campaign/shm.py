"""Shared-memory batch plane and zero-copy results ring for campaigns.

This module is the allocation layer of the campaign's shared-memory fast
path.  Two kinds of segments exist, both plain
:mod:`multiprocessing.shared_memory` blocks wrapped with a small layout
descriptor:

* **State planes** (:class:`StatePlane`) — one per campaign cell, holding
  the batched kernel's global ``(lanes, state_columns)`` state/rate/driven
  matrices and ``(lanes, cross_columns)`` crossing tables.  The parent
  allocates the plane, hands each worker a *lane range* of it (via
  :meth:`StatePlane.buffers`, which yields the
  :class:`~repro.hybrid.simulate.batched.ExternalBatchBuffers` row view
  the engine binds to), and thereby lets one cell's batch span several
  workers instead of being trapped inside one.
* **The results ring** (:class:`ResultsRing`) — a single array of
  fixed-width numeric records (the
  :data:`~repro.campaign.aggregate.SUMMARY_RECORD_FIELDS` columns plus a
  trial index and a generation stamp).  Workers write one record per
  finished trial straight into their task's slot range; the parent and
  the sqlite store read the records in place, so the executor's result
  pipe only ever carries tiny ``(cell, lane-range, generation)`` tokens.

Ownership is strictly parent-side: the process that *creates* a segment
is the only one that ever unlinks it (enforced with an ``atexit`` hook so
crashes don't leak ``/dev/shm`` entries), while workers attach without
registering with the resource tracker (otherwise every forked worker
would try to clean up — or double-free — the parent's segments on exit).
Validity of ring records is established by the pipe token (happens-before
via the pool's result future) and double-checked against the generation
stamp; a mismatch means memory corruption or a protocol bug and raises
:class:`ShmError` rather than silently aggregating garbage.

Segment names carry the ``repro-`` prefix so tests and the CI
crash-cleanup smoke can scan ``/dev/shm`` for leaks.
"""

from __future__ import annotations

import atexit
import operator
import os
import secrets
from typing import Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - numpy is a hard dep of the batched tier anyway
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

try:  # pragma: no cover - absent on exotic/embedded builds
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    resource_tracker = None
    shared_memory = None

from repro.campaign.aggregate import SUMMARY_RECORD_FIELDS, TrialSummary
from repro.hybrid.simulate.batched import ExternalBatchBuffers

#: Name prefix of every segment this module creates (leak-scan anchor).
SEGMENT_PREFIX = "repro-"

#: Pulls a summary's record columns as one tuple; numpy coerces the
#: values during the structured-scalar assignment, so this skips the
#: per-field Python conversions of :meth:`TrialSummary.to_record` on the
#: ring's hot write path.
_SUMMARY_GETTER = operator.attrgetter(
    *(name for name, _ in SUMMARY_RECORD_FIELDS))


class ShmError(RuntimeError):
    """A shared-memory protocol violation (stale generation, bad layout)."""


def shared_memory_available() -> bool:
    """Whether the zero-copy path can run on this interpreter/platform."""
    return shared_memory is not None and np is not None


def summary_record_dtype() -> "np.dtype":
    """Structured dtype of one results-ring record.

    ``trial_index`` identifies the trial, ``generation`` stamps which
    allocation of the slot wrote it (guards against stale reads after a
    slot range is recycled); the remaining columns are exactly
    :data:`~repro.campaign.aggregate.SUMMARY_RECORD_FIELDS`.
    """
    fields = [("trial_index", "i8"), ("generation", "i8")]
    fields.extend((name, "f8" if kind == "f" else "i8")
                  for name, kind in SUMMARY_RECORD_FIELDS)
    return np.dtype(fields)


# ---------------------------------------------------------------------------
# Raw segment wrapper
# ---------------------------------------------------------------------------

def _attach_segment(name: str) -> "shared_memory.SharedMemory":
    """Attach to an existing segment without resource-tracker registration.

    Workers must not register the parent's segments: the tracker would
    either warn about or unlink them when the worker exits, racing the
    owner.  Python 3.13+ exposes ``track=False``; older versions need the
    well-known unregister workaround.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        # Suppress (rather than undo) the registration: forked workers
        # share the parent's tracker process, so an unregister here would
        # erase the owner's registration and make the owner's eventual
        # unlink trip a KeyError inside the tracker.
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedSegment:
    """One shared-memory block with owner-side lifetime management.

    The owner (creator) registers an ``atexit`` unlink so a crashed parent
    never leaks ``/dev/shm`` entries; attachers only ever ``close()``.
    """

    def __init__(self, seg: "shared_memory.SharedMemory", owner: bool):
        self._seg = seg
        self.owner = owner
        self.name = seg.name
        self._closed = False
        self._owner_pid = os.getpid() if owner else None
        if owner:
            atexit.register(self.destroy)

    @classmethod
    def create(cls, size: int) -> "SharedSegment":
        """Create (and own) a fresh segment of ``size`` bytes."""
        for _ in range(8):
            name = SEGMENT_PREFIX + secrets.token_hex(6)
            try:
                seg = shared_memory.SharedMemory(name=name, create=True,
                                                 size=size)
            except FileExistsError:  # pragma: no cover - 48-bit collision
                continue
            return cls(seg, owner=True)
        raise ShmError("could not find a free shared-memory name")

    @classmethod
    def attach(cls, name: str) -> "SharedSegment":
        """Attach (without owning) an existing segment by name."""
        return cls(_attach_segment(name), owner=False)

    @property
    def buf(self) -> memoryview:
        return self._seg.buf

    def close(self) -> None:
        """Unmap the segment (caller must have dropped all array views)."""
        if not self._closed:
            self._closed = True
            self._seg.close()

    def destroy(self) -> None:
        """Close and, if owner, unlink.  Idempotent and atexit-safe.

        A forked child inheriting the owner object must never unlink the
        parent's segment, hence the owning-pid check.
        """
        self.close()
        if self.owner and os.getpid() == self._owner_pid:
            self.owner = False
            atexit.unregister(self.destroy)
            try:
                self._seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


# ---------------------------------------------------------------------------
# Results ring
# ---------------------------------------------------------------------------

class ResultsRing:
    """Fixed-capacity array of summary records shared between processes.

    Not a lock-free queue: slot ranges are allocated by the parent before
    a task is submitted and the worker's completed future is the
    happens-before edge, so readers and the writer of a slot never race.
    The generation stamp is a belt-and-braces consistency check.
    """

    def __init__(self, segment: SharedSegment, capacity: int):
        self.segment = segment
        self.capacity = capacity
        self.records = np.ndarray((capacity,), dtype=summary_record_dtype(),
                                  buffer=segment.buf)

    @classmethod
    def create(cls, capacity: int) -> "ResultsRing":
        ring = cls(SharedSegment.create(capacity
                                        * summary_record_dtype().itemsize),
                   capacity)
        ring.records["generation"] = -1
        return ring

    @classmethod
    def attach(cls, name: str, capacity: int) -> "ResultsRing":
        return cls(SharedSegment.attach(name), capacity)

    def write(self, slot: int, generation: int,
              trial_index: int, summary: TrialSummary) -> None:
        """Publish one trial's summary into ``slot``."""
        # One structured-scalar assignment: numpy unpacks the tuple into
        # the record's fields in declaration order, which is exactly
        # (trial_index, generation) + SUMMARY_RECORD_FIELDS.
        self.records[slot] = (trial_index, generation) + _SUMMARY_GETTER(summary)

    def read(self, start: int, count: int, generation: int,
             labels: Sequence[str]) -> List[TrialSummary]:
        """Decode ``count`` records starting at ``start``, validating stamps.

        Args:
            start: First ring slot of the task's range.
            count: Number of records to read.
            generation: The generation the task was issued with.
            labels: Per-record cell labels (``spec.trials[i].label``),
                aligned with the slots.

        Returns:
            The decoded summaries, in slot order.

        Raises:
            ShmError: If any record's generation stamp does not match —
                i.e. the happens-before protocol was violated.
        """
        block = self.records[start:start + count]
        if not (block["generation"] == generation).all():
            raise ShmError(
                f"stale results-ring records in [{start}, {start + count}): "
                f"expected generation {generation}, "
                f"found {sorted(set(block['generation'].tolist()))}")
        # tolist() converts the whole block to plain Python scalars in one
        # C-level pass; [2:] drops the (trial_index, generation) prefix.
        return [TrialSummary.from_record(row[2:], label)
                for row, label in zip(block.tolist(), labels)]

    def close(self) -> None:
        self.records = None  # drop the view before unmapping
        self.segment.close()

    def destroy(self) -> None:
        self.records = None
        self.segment.destroy()


# ---------------------------------------------------------------------------
# State planes
# ---------------------------------------------------------------------------

#: Array order inside a plane segment: all 8-byte dtypes first, then the
#: bool tables, so every array is naturally aligned without padding.
_PLANE_ORDER: Tuple[Tuple[str, str, str], ...] = (
    ("X", "f8", "state"),
    ("R", "f8", "state"),
    ("C_col", "intp", "cross"),
    ("C_thr", "f8", "cross"),
    ("C_rate", "f8", "cross"),
    ("C_sign", "f8", "cross"),
    ("C_sthr", "f8", "cross"),
    ("D", "?", "state"),
    ("C_strict", "?", "cross"),
    ("C_eq", "?", "cross"),
    ("C_want", "?", "cross"),
)


def plane_layout(lanes: int, state_columns: int,
                 cross_columns: int) -> Tuple[int, Dict[str, Tuple[int, Tuple[int, int], "np.dtype"]]]:
    """Byte layout of one state-plane segment.

    Returns:
        ``(total_size, {array: (offset, shape, dtype)})`` for the eleven
        engine tables of an ``ExternalBatchBuffers`` set.
    """
    layout: Dict[str, Tuple[int, Tuple[int, int], "np.dtype"]] = {}
    offset = 0
    for name, dtype_code, kind in _PLANE_ORDER:
        dtype = np.dtype(dtype_code)
        shape = (lanes, state_columns if kind == "state" else cross_columns)
        layout[name] = (offset, shape, dtype)
        offset += shape[0] * shape[1] * dtype.itemsize
    return max(offset, 1), layout


class StatePlane:
    """One campaign cell's shared batch-state arena.

    Holds full-width engine tables for up to ``lanes`` concurrent lanes of
    one model geometry; workers bind disjoint row ranges of it.
    """

    def __init__(self, segment: SharedSegment, lanes: int,
                 state_columns: int, cross_columns: int):
        self.segment = segment
        self.lanes = lanes
        self.state_columns = state_columns
        self.cross_columns = cross_columns
        size, layout = plane_layout(lanes, state_columns, cross_columns)
        if len(segment.buf) < size:
            raise ShmError(
                f"plane segment {segment.name!r} is {len(segment.buf)} bytes,"
                f" need {size} for {lanes}x({state_columns},{cross_columns})")
        self._arrays = {
            name: np.ndarray(shape, dtype=dtype, buffer=segment.buf,
                             offset=offset)
            for name, (offset, shape, dtype) in layout.items()}

    @classmethod
    def create(cls, lanes: int, state_columns: int,
               cross_columns: int) -> "StatePlane":
        size, _ = plane_layout(lanes, state_columns, cross_columns)
        return cls(SharedSegment.create(size), lanes, state_columns,
                   cross_columns)

    @classmethod
    def attach(cls, name: str, lanes: int, state_columns: int,
               cross_columns: int) -> "StatePlane":
        return cls(SharedSegment.attach(name), lanes, state_columns,
                   cross_columns)

    def buffers(self, start: int, count: int) -> ExternalBatchBuffers:
        """The engine-facing row view of lanes ``[start, start + count)``."""
        if start < 0 or start + count > self.lanes:
            raise ShmError(f"lane range [{start}, {start + count}) outside "
                           f"plane of {self.lanes} lanes")
        sl = slice(start, start + count)
        return ExternalBatchBuffers(
            **{name: arr[sl] for name, arr in self._arrays.items()})

    def close(self) -> None:
        self._arrays = {}  # drop views before unmapping
        self.segment.close()

    def destroy(self) -> None:
        self._arrays = {}
        self.segment.destroy()


# ---------------------------------------------------------------------------
# Range allocation
# ---------------------------------------------------------------------------

class _RangeAllocator:
    """First-fit allocator of contiguous ranges over ``[0, capacity)``.

    The executor's in-flight window bounds live ranges, so the free list
    stays tiny; freed neighbours are merged to keep ranges contiguous.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._free: List[Tuple[int, int]] = [(0, capacity)]

    def allocate(self, count: int) -> Optional[int]:
        """Reserve ``count`` contiguous slots; ``None`` when fragmented/full."""
        if count <= 0:
            raise ValueError("count must be positive")
        for i, (start, length) in enumerate(self._free):
            if length >= count:
                if length == count:
                    del self._free[i]
                else:
                    self._free[i] = (start + count, length - count)
                return start
        return None

    def free(self, start: int, count: int) -> None:
        """Return a previously allocated range, merging with neighbours."""
        i = 0
        while i < len(self._free) and self._free[i][0] < start:
            i += 1
        self._free.insert(i, (start, count))
        # merge with right then left neighbour
        if i + 1 < len(self._free):
            s, c = self._free[i]
            ns, nc = self._free[i + 1]
            if s + c == ns:
                self._free[i] = (s, c + nc)
                del self._free[i + 1]
        if i > 0:
            ps, pc = self._free[i - 1]
            s, c = self._free[i]
            if ps + pc == s:
                self._free[i - 1] = (ps, pc + c)
                del self._free[i]


# ---------------------------------------------------------------------------
# Parent-side session
# ---------------------------------------------------------------------------

class PlaneTicket:
    """One task's reservation on the shared plane + ring (parent-side)."""

    __slots__ = ("spec_index", "lane_start", "lane_count", "ring_start",
                 "generation")

    def __init__(self, spec_index: int, lane_start: int, lane_count: int,
                 ring_start: int, generation: int):
        self.spec_index = spec_index
        self.lane_start = lane_start
        self.lane_count = lane_count
        self.ring_start = ring_start
        self.generation = generation

    def token(self, session: "ShmSession") -> "ShmToken":
        """The picklable worker-facing handle for this reservation."""
        plane = session.plane(self.spec_index)
        return ShmToken(
            ring_name=session.ring.segment.name,
            ring_capacity=session.ring.capacity,
            ring_start=self.ring_start,
            generation=self.generation,
            plane_name=plane.segment.name if plane is not None else None,
            plane_lanes=plane.lanes if plane is not None else 0,
            state_columns=plane.state_columns if plane is not None else 0,
            cross_columns=plane.cross_columns if plane is not None else 0,
            lane_start=self.lane_start,
            lane_count=self.lane_count,
        )


class ShmToken:
    """What actually travels down the pool's pipe for an shm task.

    A few integers and two segment names — the ``(cell, lane-range,
    generation)`` token of the zero-copy protocol.  ``plane_name`` is
    ``None`` for ring-only tasks (scalar engines still benefit from the
    zero-copy results path even without a state plane).
    """

    __slots__ = ("ring_name", "ring_capacity", "ring_start", "generation",
                 "plane_name", "plane_lanes", "state_columns",
                 "cross_columns", "lane_start", "lane_count")

    def __init__(self, *, ring_name: str, ring_capacity: int, ring_start: int,
                 generation: int, plane_name: Optional[str], plane_lanes: int,
                 state_columns: int, cross_columns: int, lane_start: int,
                 lane_count: int):
        self.ring_name = ring_name
        self.ring_capacity = ring_capacity
        self.ring_start = ring_start
        self.generation = generation
        self.plane_name = plane_name
        self.plane_lanes = plane_lanes
        self.state_columns = state_columns
        self.cross_columns = cross_columns
        self.lane_start = lane_start
        self.lane_count = lane_count

    def __reduce__(self):
        return (_rebuild_token, (self.ring_name, self.ring_capacity,
                                 self.ring_start, self.generation,
                                 self.plane_name, self.plane_lanes,
                                 self.state_columns, self.cross_columns,
                                 self.lane_start, self.lane_count))


def _rebuild_token(ring_name, ring_capacity, ring_start, generation,
                   plane_name, plane_lanes, state_columns, cross_columns,
                   lane_start, lane_count) -> ShmToken:
    return ShmToken(ring_name=ring_name, ring_capacity=ring_capacity,
                    ring_start=ring_start, generation=generation,
                    plane_name=plane_name, plane_lanes=plane_lanes,
                    state_columns=state_columns, cross_columns=cross_columns,
                    lane_start=lane_start, lane_count=lane_count)


class ShmSession:
    """Parent-side owner of one campaign run's shared segments.

    Creates the results ring eagerly and one state plane per campaign
    cell lazily (cells differ in geometry when their models differ).
    Capacities are bounded by the executor's in-flight window, not by the
    campaign size, so a million-trial campaign still only maps a few
    hundred kilobytes.  ``close()`` (or the atexit hook each segment
    registers) unlinks everything.
    """

    def __init__(self, ring_capacity: int):
        if not shared_memory_available():  # pragma: no cover - gated earlier
            raise ShmError("multiprocessing.shared_memory is unavailable")
        self.ring = ResultsRing.create(ring_capacity)
        self._ring_alloc = _RangeAllocator(ring_capacity)
        self._planes: Dict[int, Tuple[StatePlane, _RangeAllocator]] = {}
        self._generation = 0
        self._closed = False
        #: Tasks that fell back to the pickled path because the ring or a
        #: plane was momentarily exhausted (observability: the executor
        #: surfaces this as an ``shm-fallback`` recovery event).
        self.fallbacks = 0

    def plane(self, spec_index: int) -> Optional[StatePlane]:
        entry = self._planes.get(spec_index)
        return entry[0] if entry is not None else None

    def ensure_plane(self, spec_index: int, lanes: int, state_columns: int,
                     cross_columns: int) -> StatePlane:
        """Create (idempotently) the cell's plane sized for ``lanes`` lanes."""
        entry = self._planes.get(spec_index)
        if entry is None:
            plane = StatePlane.create(lanes, state_columns, cross_columns)
            entry = (plane, _RangeAllocator(lanes))
            self._planes[spec_index] = entry
        return entry[0]

    def acquire(self, spec_index: int, count: int,
                want_plane: bool) -> Optional[PlaneTicket]:
        """Reserve ring slots (and plane lanes) for one ``count``-trial task.

        Returns:
            The reservation, or ``None`` when the ring or plane cannot fit
            the task right now — the caller then falls back to the pickled
            path for this task (never blocks, never errors).
        """
        ring_start = self._ring_alloc.allocate(count)
        if ring_start is None:
            self.fallbacks += 1
            return None
        lane_start = 0
        if want_plane:
            entry = self._planes.get(spec_index)
            if entry is None:
                self._ring_alloc.free(ring_start, count)
                raise ShmError(f"no plane registered for cell {spec_index}")
            lane_start = entry[1].allocate(count)
            if lane_start is None:
                self._ring_alloc.free(ring_start, count)
                self.fallbacks += 1
                return None
        self._generation += 1
        return PlaneTicket(spec_index if want_plane else -1, lane_start,
                           count if want_plane else 0, ring_start,
                           self._generation)

    def release(self, ticket: PlaneTicket, count: int) -> None:
        """Return a ticket's reservations after its records were consumed."""
        self._ring_alloc.free(ticket.ring_start, count)
        if ticket.lane_count:
            self._planes[ticket.spec_index][1].free(ticket.lane_start,
                                                    ticket.lane_count)

    def read(self, ticket: PlaneTicket, count: int,
             labels: Sequence[str]) -> List[TrialSummary]:
        """Decode one completed task's records from the ring."""
        return self.ring.read(ticket.ring_start, count, ticket.generation,
                              labels)

    def records_view(self, ticket: PlaneTicket, count: int) -> "np.ndarray":
        """The raw structured-record block of a completed task (no copy)."""
        return self.ring.records[ticket.ring_start:ticket.ring_start + count]

    def close(self) -> None:
        """Unlink every segment this session owns.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self.ring.destroy()
        for plane, _ in self._planes.values():
            plane.destroy()
        self._planes = {}


# ---------------------------------------------------------------------------
# Worker-side attachment cache
# ---------------------------------------------------------------------------

_ATTACHED_RINGS: Dict[str, ResultsRing] = {}
_ATTACHED_PLANES: Dict[str, StatePlane] = {}


def attach_ring(name: str, capacity: int) -> ResultsRing:
    """Attach (once per worker process) to the parent's results ring."""
    ring = _ATTACHED_RINGS.get(name)
    if ring is None:
        ring = ResultsRing.attach(name, capacity)
        _ATTACHED_RINGS[name] = ring
    return ring


def attach_plane(name: str, lanes: int, state_columns: int,
                 cross_columns: int) -> StatePlane:
    """Attach (once per worker process) to one cell's state plane."""
    plane = _ATTACHED_PLANES.get(name)
    if plane is None:
        plane = StatePlane.attach(name, lanes, state_columns, cross_columns)
        _ATTACHED_PLANES[name] = plane
    return plane


def detach_all() -> None:
    """Drop every cached worker-side attachment (tests / pool teardown)."""
    for ring in _ATTACHED_RINGS.values():
        ring.close()
    for plane in _ATTACHED_PLANES.values():
        plane.close()
    _ATTACHED_RINGS.clear()
    _ATTACHED_PLANES.clear()


def leaked_segments() -> List[str]:
    """Names of ``repro-`` segments currently present in ``/dev/shm``.

    Linux-only diagnostic used by the crash-cleanup tests and the CI
    smoke; returns an empty list where ``/dev/shm`` does not exist.
    """
    try:
        entries = os.listdir("/dev/shm")
    except OSError:  # pragma: no cover - non-Linux
        return []
    return sorted(e for e in entries if e.startswith(SEGMENT_PREFIX))
