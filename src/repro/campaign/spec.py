"""Declarative campaign descriptions: parameter sweeps as data.

A Monte-Carlo campaign is a list of :class:`TrialSpec` entries, each
describing one cell of a parameter sweep (lease on/off, surgeon E(Toff),
channel model, trial duration, replicate count) as plain data.  Because the
specs are frozen dataclasses built from primitives they pickle cleanly, so
the executor can fan trials out across worker processes, and they hash the
same everywhere, so per-trial seeds derived from them reproduce
bit-for-bit regardless of scheduling.

The paper's experiments (Table I, the loss sweep, the Section V scenario
stories) are each "one spec away": see :mod:`repro.campaign.presets`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.casestudy.config import CaseStudyConfig
from repro.casestudy.surgeon import ScriptedSurgeon
from repro.util.seeding import derive_seed
from repro.wireless.channel import (BernoulliChannel, Channel, PerfectChannel,
                                    ScriptedChannel)

#: Channel kinds understood by :class:`ChannelSpec`.
CHANNEL_KINDS = ("default", "perfect", "bernoulli", "scripted")


def mode_label(with_lease: bool, *, table_style: bool = False) -> str:
    """The lease-mode label used throughout results.

    Args:
        with_lease: The trial mode being labelled.
        table_style: Capitalize like the paper's Table I ("with Lease");
            the default matches the lowercase sweep-row convention.

    Returns:
        The mode label string.
    """
    if table_style:
        return "with Lease" if with_lease else "without Lease"
    return "with lease" if with_lease else "without lease"


@dataclass(frozen=True)
class ChannelSpec:
    """Declarative description of a wireless loss model.

    ``"default"`` defers to the case-study configuration's calibrated burst
    interferer (``config.interference.to_channel``); the other kinds build
    an explicit channel seeded with the trial seed, matching what the
    serial experiment loops used to do inline.
    """

    kind: str = "default"
    loss: float = 0.0
    windows: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in CHANNEL_KINDS:
            raise ValueError(f"unknown channel kind {self.kind!r}; "
                             f"expected one of {CHANNEL_KINDS}")
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError("loss must be within [0, 1]")

    def build(self, seed: int | None) -> Channel | None:
        """Materialize the channel for one trial.

        Args:
            seed: The trial seed, used by stochastic channel kinds.

        Returns:
            The built channel, or ``None`` for the ``"default"`` kind
            (defer to the case-study configuration's calibrated channel).
        """
        if self.kind == "default":
            return None
        if self.kind == "perfect":
            return PerfectChannel()
        if self.kind == "bernoulli":
            return BernoulliChannel(self.loss, seed=seed)
        return ScriptedChannel(list(self.windows))

    def describe(self) -> str:
        """Return a short human-readable description for reports."""
        if self.kind == "bernoulli":
            return f"bernoulli(p={self.loss:g})"
        if self.kind == "scripted":
            spans = ", ".join(f"[{s:g},{e:g}]" for s, e in self.windows)
            return f"scripted({spans})"
        return self.kind


@dataclass(frozen=True)
class SurgeonSpec:
    """Declarative scripted surgeon (``None`` spec = stochastic default)."""

    requests_at: Tuple[float, ...] = ()
    cancels_at: Tuple[float, ...] = ()

    def build(self) -> ScriptedSurgeon:
        """Materialize the scripted surgeon process for one trial."""
        return ScriptedSurgeon(requests_at=list(self.requests_at),
                               cancels_at=list(self.cancels_at))


@dataclass(frozen=True)
class TrialSpec:
    """One cell of a campaign: a trial family to replicate.

    Attributes:
        label: Group label under which replicates aggregate (one results
            row per label).
        with_lease: Trial mode (Table I's first column).
        mean_toff: Surgeon E(Toff) override (``None`` keeps the config's).
        duration: Trial-length override in seconds (``None`` defers to the
            campaign default, then to ``config.trial_duration``).
        channel: Wireless loss model description.
        surgeon: Scripted surgeon description (``None`` = stochastic).
        supervisor_resend_limit: Override of the supervisor's cancel/abort
            retransmission budget (``None`` keeps the config's).
        replicates: Number of independent trials of this cell.
        seeds: Explicit per-replicate seeds.  When given they take priority
            over seeds derived from the campaign master seed — the serial
            experiment drivers use this to reproduce their historical
            numbers exactly.
        params: Free-form ``(name, value)`` pairs recording the swept
            parameters, so result builders need not parse labels.
        runner: Trial-runner registry name.  The default,
            ``"tracheotomy"``, is the paper's laser-tracheotomy case
            study; ``"interlock"`` runs the four-entity industrial
            interlock (:mod:`repro.casestudy.interlock`).  Alternate
            runners build their own system and ignore the case-study
            ``channel``/``surgeon``/config overrides.
    """

    label: str
    with_lease: bool = True
    mean_toff: float | None = None
    duration: float | None = None
    channel: ChannelSpec = field(default_factory=ChannelSpec)
    surgeon: SurgeonSpec | None = None
    supervisor_resend_limit: int | None = None
    replicates: int = 1
    seeds: Tuple[int, ...] | None = None
    params: Tuple[Tuple[str, object], ...] = ()
    runner: str = "tracheotomy"

    def __post_init__(self) -> None:
        if self.replicates < 1:
            raise ValueError("replicates must be at least 1")
        if self.seeds is not None and not self.seeds:
            raise ValueError("explicit seeds must be non-empty (or None)")

    @property
    def effective_replicates(self) -> int:
        """Replicate count, honouring an explicit seed list."""
        if self.seeds is not None:
            return max(self.replicates, len(self.seeds))
        return self.replicates

    @property
    def param_dict(self) -> Dict[str, object]:
        """The swept parameters as a dictionary."""
        return dict(self.params)

    def configure(self, base: CaseStudyConfig) -> CaseStudyConfig:
        """Apply this spec's configuration overrides to a base configuration.

        Args:
            base: The campaign-wide case-study configuration.

        Returns:
            A copy of ``base`` with this cell's overrides applied
            (``base`` itself is never mutated).
        """
        config = base
        if self.mean_toff is not None:
            config = config.with_mean_toff(self.mean_toff)
        if self.supervisor_resend_limit is not None:
            config = replace(config,
                             supervisor_resend_limit=self.supervisor_resend_limit)
        return config

    @property
    def mode(self) -> str:
        """``"with lease"`` or ``"without lease"``."""
        return mode_label(self.with_lease)


@dataclass(frozen=True)
class TrialRun:
    """One concrete trial of an expanded campaign (fully determined)."""

    index: int
    spec_index: int
    replicate: int
    seed: int
    spec: TrialSpec


@dataclass(frozen=True)
class CampaignSpec:
    """A whole Monte-Carlo campaign: base configuration plus trial cells.

    Attributes:
        name: Campaign identifier (seed-derivation namespace).
        trials: The trial cells, in presentation order.
        config: Base case-study configuration shared by every trial.
        duration: Campaign-wide trial-length default (``None`` defers to
            ``config.trial_duration``).
    """

    name: str
    trials: Tuple[TrialSpec, ...]
    config: CaseStudyConfig = field(default_factory=CaseStudyConfig)
    duration: float | None = None

    def __post_init__(self) -> None:
        if not self.trials:
            raise ValueError("a campaign needs at least one trial spec")

    @property
    def total_trials(self) -> int:
        """Number of concrete trials the campaign expands to."""
        return sum(t.effective_replicates for t in self.trials)

    def scaled(self, replicates: int) -> "CampaignSpec":
        """Copy of the campaign with every cell's replicate count replaced.

        Explicit seed lists are dropped in the copy: a scaled campaign
        derives all of its seeds from the master seed, which is what keeps
        10-100x replicate counts deterministic without enumerating seeds.

        Args:
            replicates: The new per-cell replicate count.

        Returns:
            The scaled campaign spec.
        """
        if replicates < 1:
            raise ValueError("replicates must be at least 1")
        trials = tuple(replace(t, replicates=replicates, seeds=None)
                       for t in self.trials)
        return replace(self, trials=trials)

    def expand(self, master_seed: int) -> List[TrialRun]:
        """Expand the campaign into concrete, deterministically-seeded runs.

        The seed of a run depends only on the master seed and the run's
        position in the spec — never on scheduling — so any worker count
        (and any crash/resume point) produces the same trials.

        Args:
            master_seed: The campaign master seed.

        Returns:
            The concrete runs, in trial-index order.
        """
        runs: List[TrialRun] = []
        for spec_index, trial in enumerate(self.trials):
            for replicate in range(trial.effective_replicates):
                if trial.seeds is not None and replicate < len(trial.seeds):
                    seed = int(trial.seeds[replicate])
                else:
                    seed = derive_seed(
                        master_seed,
                        f"campaign:{self.name}:{spec_index}:{replicate}")
                runs.append(TrialRun(index=len(runs), spec_index=spec_index,
                                     replicate=replicate, seed=seed, spec=trial))
        return runs


def expand_grid(**axes: Sequence[object]) -> Iterator[Dict[str, object]]:
    """Yield every combination of the given parameter axes.

    The cartesian-product helper behind joint sweeps (e.g. loss-rate x
    E(Toff) grids)::

        for point in expand_grid(loss=(0.0, 0.3), mean_toff=(18.0, 6.0)):
            ...  # {"loss": 0.0, "mean_toff": 18.0}, ...

    Args:
        **axes: One keyword per swept parameter, each mapping the
            parameter name to its value sequence.

    Yields:
        One ``{name: value}`` dict per point of the cartesian product.
    """
    names = list(axes)
    for values in itertools.product(*(axes[name] for name in names)):
        yield dict(zip(names, values))
