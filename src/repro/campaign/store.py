"""Durable campaign checkpointing: a sqlite store with crash/resume semantics.

A campaign normally lives and dies with one process, so a crash at trial
900k of a million-trial run loses everything.  The :class:`CampaignStore`
makes completed replicate batches durable as the executor retires them:
``run_campaign(..., store=PATH, resume=True)`` — or ``python -m
repro.campaign --store PATH --resume`` — replays the checkpointed prefix
without re-simulating a single trial and then continues the remainder
live.  See ``docs/checkpoint-format.md`` for the on-disk format and
``docs/ARCHITECTURE.md`` for where the store sits in the data flow.

Three existing properties make resume exact, and the store exploits all of
them:

* **Deterministic seeding** (PR 1): a trial's seed depends only on the
  campaign master seed and the trial's position in the spec — never on
  scheduling — so the concrete trial set is a pure function of
  ``(spec, master_seed)``.
* **Streaming statistics** (PR 2): one trial's contribution to every
  aggregate is the slim :class:`~repro.campaign.aggregate.TrialSummary`
  computed online by the ``TrialStatsObserver`` pipeline (plus a picklable
  ``TrialResult`` for the richer payloads), so a checkpoint is a few
  hundred bytes, not a trace.
* **Spec fingerprinting** (this module): the store binds itself to a
  SHA-256 digest of the canonical encoding of ``(spec, master_seed)``;
  resuming with anything that would change the trial set is rejected
  instead of silently mixing results.  Engine, batch size and worker
  count are deliberately *excluded* — they are throughput knobs that the
  bit-identical equivalence contract guarantees cannot change results.

Recovery follows an explicit state machine (the
:class:`RecoveryStateMachine`)::

    FRESH ──▶ REPLAYING ──▶ LIVE ──▶ COMPLETE
      │            │                    ▲
      │            └────────────────────┤   (everything was checkpointed)
      └─────────────────────────────────┘   (fresh store: nothing to replay)

``FRESH`` covers store-less runs and empty stores; ``REPLAYING`` loads the
checkpointed records back through the exact aggregation path live results
use; ``LIVE`` executes and checkpoints the remaining trials; ``COMPLETE``
marks the store finished (resuming a complete store replays everything and
simulates nothing).

The module also hosts the crash-injection harness used by the test suite
and the CI resume smoke: setting ``REPRO_CAMPAIGN_CRASH_AFTER=N`` in the
environment hard-kills the process (``os._exit``, no cleanup — the moral
equivalent of ``SIGKILL``) immediately after the N-th checkpoint commit,
leaving a store holding exactly a partial prefix of the campaign.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pathlib
import pickle
import sqlite3
import time
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.campaign.aggregate import SUMMARY_RECORD_FIELDS, TrialSummary
from repro.campaign.faults import FaultPlan, TrialFailure

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    import numpy as np
    from repro.campaign.spec import CampaignSpec
    from repro.casestudy.emulation import TrialResult

#: Version stamp of the sqlite layout; bumped on incompatible changes so a
#: newer library refuses an older store loudly instead of misreading it.
#: Version 2 replaced the JSON-encoded summary column with one plain
#: numeric column per :data:`~repro.campaign.aggregate.SUMMARY_RECORD_FIELDS`
#: field (plus ``label``), eliminating the double-encode on the hot path
#: and letting the shared results ring feed commits directly.  Version 3
#: added the ``failures`` table recording quarantined (permanently failed)
#: trials, so a self-healed campaign documents exactly what it lost.
#: Version 4 added the ``estimator`` table: keyed JSON state documents of
#: the rare-event estimators (importance-splitting level checkpoints,
#: decided SPRT verdicts), so ``--method split`` / ``--method sprt`` runs
#: resume bit-identically alongside the trial rows.
SCHEMA_VERSION = 4

#: Bounded exponential backoff applied to commits that hit a transient
#: ``sqlite3.OperationalError`` ("database is locked" / "database is
#: busy", e.g. a concurrent ``--status`` reader on a filesystem without
#: POSIX locks): up to ``_COMMIT_RETRY_ATTEMPTS`` tries, sleeping
#: ``_COMMIT_RETRY_BASE * 2**n`` seconds between them, capped at
#: ``_COMMIT_RETRY_CAP``.  Non-transient errors re-raise immediately.
_COMMIT_RETRY_ATTEMPTS = 6
_COMMIT_RETRY_BASE = 0.05
_COMMIT_RETRY_CAP = 1.0

#: sqlite column type per record-field kind (REAL round-trips IEEE doubles
#: exactly, so numeric columns lose nothing over the old JSON encoding).
_SQL_TYPE = {"i": "INTEGER", "b": "INTEGER", "f": "REAL"}

#: The summary columns of the ``trials`` table, in record order.
_SUMMARY_COLUMNS = tuple(name for name, _ in SUMMARY_RECORD_FIELDS)

#: Environment variable read by the crash-injection harness: a positive
#: integer N makes the process ``os._exit(CRASH_EXIT_CODE)`` right after
#: the N-th checkpoint commit of this run.  Test/CI use only.
CRASH_ENV_VAR = "REPRO_CAMPAIGN_CRASH_AFTER"

#: Exit status of a crash-injected process, distinguishable from both
#: success (0) and the CLI's check-failure (1) / usage-error (2) statuses.
CRASH_EXIT_CODE = 86

#: One checkpointed trial as the executor and the replay path exchange it:
#: ``(trial_index, summary, full_result_or_None)``.
CheckpointRecord = Tuple[int, TrialSummary, Optional["TrialResult"]]


class CampaignStoreError(RuntimeError):
    """A checkpoint store refused an operation (mismatch, misuse, corruption)."""


class RecoveryStage(enum.Enum):
    """Stages of the campaign recovery state machine, in lifecycle order."""

    FRESH = "fresh"
    REPLAYING = "replaying"
    LIVE = "live"
    COMPLETE = "complete"


#: Legal stage transitions.  ``FRESH -> LIVE`` skips replay for store-less
#: and empty-store runs; ``REPLAYING -> COMPLETE`` skips the live phase
#: when every trial was already checkpointed.
_RECOVERY_TRANSITIONS = {
    RecoveryStage.FRESH: (RecoveryStage.REPLAYING, RecoveryStage.LIVE,
                          RecoveryStage.COMPLETE),
    RecoveryStage.REPLAYING: (RecoveryStage.LIVE, RecoveryStage.COMPLETE),
    RecoveryStage.LIVE: (RecoveryStage.COMPLETE,),
    RecoveryStage.COMPLETE: (),
}


class RecoveryStateMachine:
    """Explicit ``FRESH -> REPLAYING -> LIVE -> COMPLETE`` stage tracker.

    The executor drives one instance per ``run_campaign`` call; the machine
    exists so the recovery flow is a checked protocol rather than implicit
    control flow — an illegal transition (e.g. replaying twice, or going
    live after completion) raises instead of silently corrupting results.
    """

    def __init__(self) -> None:
        """Start a machine in the ``FRESH`` stage."""
        self._stage = RecoveryStage.FRESH

    @property
    def stage(self) -> RecoveryStage:
        """Return the current recovery stage."""
        return self._stage

    def advance(self, next_stage: RecoveryStage) -> RecoveryStage:
        """Move to ``next_stage``, enforcing the legal transition graph.

        Args:
            next_stage: The stage to enter.

        Returns:
            The new (now current) stage.

        Raises:
            CampaignStoreError: If the transition is not legal from the
                current stage.
        """
        if next_stage not in _RECOVERY_TRANSITIONS[self._stage]:
            raise CampaignStoreError(
                f"illegal recovery transition {self._stage.value!r} -> "
                f"{next_stage.value!r}")
        self._stage = next_stage
        return self._stage


def _canonical(value: object) -> object:
    """Reduce a spec value to canonical JSON-ready primitives, recursively.

    Args:
        value: A dataclass instance, tuple/list, dict, or JSON primitive.

    Returns:
        A structure of dicts/lists/primitives whose ``json.dumps`` with
        sorted keys is identical across processes and machines.

    Raises:
        CampaignStoreError: If the value contains something without a
            canonical encoding (e.g. a function), which would make the
            fingerprint unstable.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _canonical(val) for key, val in sorted(value.items())}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise CampaignStoreError(
        f"campaign spec contains a value with no canonical encoding: "
        f"{value!r} ({type(value).__name__})")


def spec_fingerprint(spec: "CampaignSpec", master_seed: int) -> str:
    """Compute the identity digest a checkpoint store binds itself to.

    The digest is a SHA-256 over the canonical JSON encoding of the whole
    campaign spec (name, trial cells, base configuration, duration) plus
    the master seed — exactly the inputs that determine the expanded trial
    set and every per-trial seed.  Execution knobs (engine, batch size,
    worker count) are excluded on purpose: the engine equivalence contract
    guarantees they cannot change results, so they must not invalidate a
    checkpoint.

    Args:
        spec: The campaign description.
        master_seed: The campaign master seed.

    Returns:
        A 64-character lowercase hex digest.
    """
    payload = {"master_seed": int(master_seed), "spec": _canonical(spec)}
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class CheckpointStatus:
    """Snapshot of a checkpoint store's progress, as shown by ``--status``."""

    name: str
    fingerprint: str
    master_seed: int
    payload: str
    total_trials: int
    checkpointed: int
    complete: bool
    quarantined: int = 0

    @property
    def stage(self) -> RecoveryStage:
        """Return the stage a resume of this store would start from."""
        if self.complete:
            return RecoveryStage.COMPLETE
        if self.checkpointed:
            return RecoveryStage.REPLAYING
        return RecoveryStage.FRESH

    def to_json(self) -> dict:
        """Return the status as a JSON-ready dict.

        One schema serves both ``--status --json`` and the service's
        ``status`` response, so tooling parses a single shape regardless
        of whether it asked a store file or a daemon.

        Returns:
            A dict of JSON primitives (the ``stage`` enum as its string
            value).
        """
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "master_seed": self.master_seed,
            "payload": self.payload,
            "total_trials": self.total_trials,
            "checkpointed": self.checkpointed,
            "complete": self.complete,
            "quarantined": self.quarantined,
            "stage": self.stage.value,
        }

    def describe(self) -> str:
        """Render a short human-readable status report.

        Returns:
            A multi-line string suitable for printing on the CLI.
        """
        state = ("complete" if self.complete
                 else f"in progress ({self.checkpointed}/{self.total_trials} "
                      f"trials checkpointed)")
        lines = [f"campaign:     {self.name}",
                 f"state:        {state}",
                 f"resume stage: {self.stage.value}",
                 f"master seed:  {self.master_seed}",
                 f"payload:      {self.payload}",
                 f"fingerprint:  {self.fingerprint}"]
        if self.quarantined:
            lines.insert(2, f"quarantined:  {self.quarantined} trial(s)")
        return "\n".join(lines)


class CampaignStore:
    """Durable sqlite checkpoint store for one campaign run.

    One store file holds one campaign: identity metadata (spec fingerprint,
    master seed, payload mode, expected trial count) plus one row per
    completed trial — its position, label, one plain numeric column per
    :class:`~repro.campaign.aggregate.TrialSummary` field (the
    :data:`~repro.campaign.aggregate.SUMMARY_RECORD_FIELDS` layout), and
    only for the ``"stats"`` / ``"full"`` payloads a pickled
    ``TrialResult`` blob.  The executor commits one transaction per
    retired batch, so after a crash the store holds exactly the batches
    that completed.

    Typical lifecycle (driven by ``run_campaign``)::

        store = CampaignStore("campaign.db")
        replayed = store.begin(spec, seed, payload, resume=True)
        ...                       # executor replays, then runs the rest
        store.checkpoint_batch(batch_results)   # once per retired batch
        store.mark_complete()
        store.close()
    """

    def __init__(self, path: str | os.PathLike, *, read_only: bool = False,
                 fault_plan: "FaultPlan | None" = None) -> None:
        """Open (creating if necessary) the store database at ``path``.

        Writable stores run in WAL journal mode with a 5-second
        ``busy_timeout``, so a writer and a concurrent ``--status`` reader
        coexist instead of racing into "database is locked"; commits that
        still hit a transient lock retry with bounded exponential backoff
        (observable via :attr:`commit_retries`).

        Args:
            path: Filesystem path of the sqlite database.  Parent
                directories must exist.
            read_only: Open the database read-only (sqlite URI
                ``mode=ro``) — the right mode for status queries against
                a live run: the reader can never take a write lock, never
                creates the file, and never touches the schema.
            fault_plan: Optional deterministic fault plan whose ``lock``
                clauses inject transient ``OperationalError`` failures
                into commits (test/chaos harness; see
                :mod:`repro.campaign.faults`).

        Raises:
            CampaignStoreError: If ``read_only`` is requested for a path
                that does not exist.
        """
        self.path = os.fspath(path)
        self.read_only = bool(read_only)
        self._fault_plan = fault_plan
        #: Optional hook fired after every durable trial commit with the
        #: number of rows just committed — the service's event fan-out
        #: attaches here to stream checkpoint progress to ``watch``
        #: subscribers.  Exceptions from the hook propagate (a broken
        #: hook is a bug, not a storage condition).
        self.on_commit: Optional[Callable[[int], None]] = None
        #: Transient-lock retries performed by this store's commits (an
        #: observability counter; the executor reports it as an event).
        self.commit_retries = 0
        self._commit_seq = 0
        if read_only:
            if not os.path.exists(self.path):
                raise CampaignStoreError(
                    f"{self.path}: no checkpoint store at this path")
            uri = pathlib.Path(self.path).resolve().as_uri() + "?mode=ro"
            self._conn = sqlite3.connect(uri, uri=True)
        else:
            self._conn = sqlite3.connect(self.path)
            self._conn.execute("PRAGMA busy_timeout = 5000")
            self._conn.execute("PRAGMA journal_mode = WAL")
            summary_cols = ", ".join(
                f"{name} {_SQL_TYPE[kind]} NOT NULL"
                for name, kind in SUMMARY_RECORD_FIELDS)
            with self._conn:
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS meta ("
                    " key TEXT PRIMARY KEY, value TEXT NOT NULL)")
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS trials ("
                    " trial_index INTEGER PRIMARY KEY,"
                    " label TEXT NOT NULL,"
                    f" {summary_cols},"
                    " result BLOB)")
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS failures ("
                    " trial_index INTEGER PRIMARY KEY,"
                    " label TEXT NOT NULL,"
                    " replicate INTEGER NOT NULL,"
                    " seed INTEGER NOT NULL,"
                    " attempts INTEGER NOT NULL,"
                    " kind TEXT NOT NULL,"
                    " message TEXT NOT NULL)")
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS estimator ("
                    " kind TEXT NOT NULL,"
                    " identity TEXT NOT NULL,"
                    " state TEXT NOT NULL,"
                    " PRIMARY KEY (kind, identity))")
        self._commits = 0
        crash_after = os.environ.get(CRASH_ENV_VAR)
        self._crash_after = int(crash_after) if crash_after else None

    def set_fault_plan(self, plan: "FaultPlan | None") -> None:
        """Attach (or clear) the fault plan driving ``lock`` injections."""
        self._fault_plan = plan

    def _commit(self, operation: Callable[[], None], what: str) -> None:
        """Run one commit with bounded backoff on transient lock errors.

        Args:
            operation: Zero-argument callable performing the transaction.
            what: Short description of the commit, for error messages.

        Raises:
            CampaignStoreError: When the database is still locked after
                the retry budget is exhausted.
            sqlite3.OperationalError: Re-raised unchanged for
                non-transient operational errors.
        """
        self._commit_seq += 1
        commit_number = self._commit_seq
        attempt = 0
        while True:
            try:
                if (self._fault_plan is not None
                        and self._fault_plan.lock_commit(commit_number,
                                                         attempt)):
                    raise sqlite3.OperationalError(
                        "database is locked (injected)")
                operation()
                return
            except sqlite3.OperationalError as exc:
                text = str(exc)
                if "locked" not in text and "busy" not in text:
                    raise
                attempt += 1
                if attempt >= _COMMIT_RETRY_ATTEMPTS:
                    raise CampaignStoreError(
                        f"{self.path}: {what} still failing after "
                        f"{attempt} attempts: {exc}") from exc
                self.commit_retries += 1
                time.sleep(min(_COMMIT_RETRY_CAP,
                               _COMMIT_RETRY_BASE * 2 ** (attempt - 1)))

    # -- metadata ----------------------------------------------------------

    def _read_meta(self) -> dict:
        """Return the meta table as a plain dict (empty for a fresh store)."""
        rows = self._conn.execute("SELECT key, value FROM meta").fetchall()
        return dict(rows)

    def _write_meta(self, meta: dict) -> None:
        """Replace the meta table contents with ``meta`` in one transaction."""
        def operation() -> None:
            with self._conn:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                    [(key, str(value)) for key, value in meta.items()])
        self._commit(operation, "meta commit")

    def checkpointed_count(self) -> int:
        """Return how many trials have durable checkpoints."""
        (count,) = self._conn.execute("SELECT COUNT(*) FROM trials").fetchone()
        return int(count)

    def completed_indices(self) -> set:
        """Return the trial indices that already have durable checkpoints."""
        rows = self._conn.execute("SELECT trial_index FROM trials").fetchall()
        return {int(index) for (index,) in rows}

    def status(self) -> CheckpointStatus | None:
        """Return the store's progress snapshot, or ``None`` if it is empty.

        Returns:
            A :class:`CheckpointStatus`, or ``None`` when no campaign has
            been bound to this store yet.
        """
        meta = self._read_meta()
        if not meta:
            return None
        return CheckpointStatus(
            name=meta.get("campaign_name", "?"),
            fingerprint=meta.get("fingerprint", "?"),
            master_seed=int(meta.get("master_seed", -1)),
            payload=meta.get("payload", "?"),
            total_trials=int(meta.get("total_trials", -1)),
            checkpointed=self.checkpointed_count(),
            complete=meta.get("complete") == "1",
            quarantined=len(self.failures()),
        )

    # -- lifecycle ---------------------------------------------------------

    def begin(self, spec: "CampaignSpec", master_seed: int, payload: str, *,
              resume: bool = False) -> List[CheckpointRecord]:
        """Bind the store to one campaign run and return the replayable prefix.

        A fresh (empty) store records the campaign's identity and returns
        nothing to replay.  A store that already holds this campaign is
        validated against the spec fingerprint and payload mode; with
        ``resume=True`` its checkpointed trials are returned for replay,
        without it the call is rejected so a stale store is never
        overwritten by accident.

        Args:
            spec: The campaign description about to run.
            master_seed: The run's master seed.
            payload: The run's payload mode (``"summary"`` / ``"stats"`` /
                ``"full"``); must match the checkpointed mode on resume.
            resume: Whether the caller intends to continue a previous run.

        Returns:
            The checkpointed trials, ordered by trial index (empty for a
            fresh store).

        Raises:
            CampaignStoreError: If the store belongs to a different
                campaign/seed (fingerprint mismatch), was written with a
                different payload mode or schema version, or holds
                checkpoints and ``resume`` was not requested.
        """
        if self.read_only:
            raise CampaignStoreError(
                f"{self.path}: store was opened read-only (status mode); "
                f"it cannot be bound to a campaign run")
        fingerprint = spec_fingerprint(spec, master_seed)
        meta = self._read_meta()
        if not meta:
            self._write_meta({
                "schema_version": SCHEMA_VERSION,
                "campaign_name": spec.name,
                "fingerprint": fingerprint,
                "master_seed": int(master_seed),
                "payload": payload,
                "total_trials": spec.total_trials,
                "complete": 0,
            })
            return []
        version = meta.get("schema_version")
        if version != str(SCHEMA_VERSION):
            raise CampaignStoreError(
                f"{self.path}: store schema version {version!r} is not the "
                f"supported version {SCHEMA_VERSION}")
        if meta.get("fingerprint") != fingerprint:
            raise CampaignStoreError(
                f"{self.path}: store holds campaign "
                f"{meta.get('campaign_name')!r} (master seed "
                f"{meta.get('master_seed')}, fingerprint "
                f"{meta.get('fingerprint')[:12]}…) but this run is "
                f"{spec.name!r} with fingerprint {fingerprint[:12]}…; a "
                f"checkpoint is only valid for the exact spec and master "
                f"seed it was created with — rerun with the original "
                f"arguments, or point --store at a fresh path")
        if meta.get("payload") != payload:
            raise CampaignStoreError(
                f"{self.path}: store was checkpointed with payload mode "
                f"{meta.get('payload')!r}; resuming with {payload!r} would "
                f"replay incomplete per-trial records — rerun with "
                f"--payload {meta.get('payload')}")
        if not resume and self.checkpointed_count():
            raise CampaignStoreError(
                f"{self.path}: store already holds "
                f"{self.checkpointed_count()} checkpointed trial(s) of this "
                f"campaign; pass resume=True (--resume) to continue it, or "
                f"use a fresh store path")
        return self.replay()

    def replay(self) -> List[CheckpointRecord]:
        """Load every checkpointed trial back into executor-shaped records.

        Returns:
            ``(trial_index, summary, result)`` tuples ordered by trial
            index; ``result`` is ``None`` for rows checkpointed without a
            full-result blob (the ``"summary"`` payload).
        """
        columns = ", ".join(_SUMMARY_COLUMNS)
        rows = self._conn.execute(
            f"SELECT trial_index, label, {columns}, result FROM trials "
            "ORDER BY trial_index").fetchall()
        records: List[CheckpointRecord] = []
        for row in rows:
            summary = TrialSummary.from_record(row[2:-1], label=row[1])
            blob = row[-1]
            result = pickle.loads(blob) if blob is not None else None
            records.append((int(row[0]), summary, result))
        return records

    def checkpoint_batch(self, results: List[CheckpointRecord]) -> None:
        """Durably commit one retired batch of trials, atomically.

        The executor calls this *before* publishing the batch to the
        in-memory aggregates and the progress callback, so anything the
        user has seen reported is guaranteed to survive a crash.

        Args:
            results: ``(trial_index, summary, result)`` records of the
                batch; ``result`` may be ``None`` (``"summary"`` payload).
        """
        rows = []
        for index, summary, result in results:
            blob = (sqlite3.Binary(pickle.dumps(result))
                    if result is not None else None)
            rows.append((int(index), summary.label) + summary.to_record()
                        + (blob,))
        self._insert_rows(rows)

    def checkpoint_ring(self, records: "np.ndarray",
                        labels: List[str]) -> None:
        """Durably commit one retired batch straight from the results ring.

        The zero-copy counterpart of :meth:`checkpoint_batch`: ``records``
        is the task's structured-record block of the shared results ring
        (see :func:`repro.campaign.shm.summary_record_dtype`), read in
        place — no :class:`TrialSummary` objects, JSON, or pickling on the
        commit path.  Only valid for the ``"summary"`` payload (the ring
        carries no full-result blob).

        Args:
            records: The task's record block, already generation-validated.
            labels: Per-record cell labels, aligned with ``records``.
        """
        # One C-level pass converts the whole block to Python scalars;
        # [2:] drops the generation stamp ([0] is the trial index).
        rows = [(row[0], label) + tuple(row[2:]) + (None,)
                for row, label in zip(records.tolist(), labels)]
        self._insert_rows(rows)

    def _insert_rows(self, rows: List[tuple]) -> None:
        """Commit prepared trial rows atomically, then run the crash hook."""
        columns = ", ".join(_SUMMARY_COLUMNS)
        placeholders = ", ".join("?" * (len(_SUMMARY_COLUMNS) + 3))

        def operation() -> None:
            with self._conn:
                self._conn.executemany(
                    f"INSERT OR REPLACE INTO trials "
                    f"(trial_index, label, {columns}, result) "
                    f"VALUES ({placeholders})", rows)
        self._commit(operation, "checkpoint commit")
        self._commits += 1
        if self._crash_after is not None and self._commits >= self._crash_after:
            # Crash-injection harness: die the hard way (no cleanup, no
            # atexit, nothing flushed) right after a durable commit.
            os._exit(CRASH_EXIT_CODE)
        if self.on_commit is not None:
            self.on_commit(len(rows))

    def record_failure(self, failure: TrialFailure) -> None:
        """Durably record one quarantined trial in the ``failures`` table.

        Args:
            failure: The structured failure row; keyed by trial index, so
                re-recording after a resume is idempotent.
        """
        def operation() -> None:
            with self._conn:
                self._conn.execute(
                    "INSERT OR REPLACE INTO failures "
                    "(trial_index, label, replicate, seed, attempts, kind,"
                    " message) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (int(failure.trial_index), failure.label,
                     int(failure.replicate), int(failure.seed),
                     int(failure.attempts), failure.kind, failure.message))
        self._commit(operation, "failure-row commit")

    def failures(self) -> List[TrialFailure]:
        """Return the quarantined-trial rows, ordered by trial index.

        Returns:
            The recorded :class:`~repro.campaign.faults.TrialFailure`
            rows; empty for stores without a ``failures`` table (e.g. a
            read-only view of a pre-v3 database).
        """
        try:
            rows = self._conn.execute(
                "SELECT trial_index, label, replicate, seed, attempts, kind,"
                " message FROM failures ORDER BY trial_index").fetchall()
        except sqlite3.OperationalError:
            return []
        return [TrialFailure(trial_index=int(row[0]), label=row[1],
                             replicate=int(row[2]), seed=int(row[3]),
                             attempts=int(row[4]), kind=row[5],
                             message=row[6])
                for row in rows]

    def save_estimator_state(self, kind: str, identity: str,
                             state: dict) -> None:
        """Durably commit one rare-event estimator's state document.

        The estimator table is orthogonal to the trial rows: a splitting
        run checkpoints its per-level progress here (with no trial rows at
        all), while an SPRT run stores its decided verdict next to the
        ordinary trial checkpoints its sub-campaign committed.  Writing
        the same ``(kind, identity)`` again replaces the document — state
        progresses monotonically, so the latest write is always the most
        advanced checkpoint.

        Args:
            kind: Estimator family (``"split"`` / ``"sprt"``).
            identity: Digest of everything that determines the estimator's
                numbers (spec fingerprint, cell, settings) — never the
                engine or worker count.
            state: JSON-ready state document.
        """
        encoded = json.dumps(state, sort_keys=True, separators=(",", ":"))

        def operation() -> None:
            with self._conn:
                self._conn.execute(
                    "INSERT OR REPLACE INTO estimator (kind, identity, state)"
                    " VALUES (?, ?, ?)", (kind, identity, encoded))
        self._commit(operation, "estimator-state commit")
        self._commits += 1
        if self._crash_after is not None and self._commits >= self._crash_after:
            # Same crash-injection hook as the trial path, so resume tests
            # can SIGKILL a splitting run between levels.
            os._exit(CRASH_EXIT_CODE)
        if self.on_commit is not None:
            self.on_commit(0)

    def load_estimator_state(self, kind: str, identity: str) -> dict | None:
        """Load one estimator state document, or ``None`` if absent.

        Args:
            kind: Estimator family (``"split"`` / ``"sprt"``).
            identity: The estimator's identity digest.

        Returns:
            The decoded state document, or ``None`` when this estimator
            has no checkpoint (including stores from pre-v4 databases,
            which lack the table entirely).
        """
        try:
            row = self._conn.execute(
                "SELECT state FROM estimator WHERE kind = ? AND identity = ?",
                (kind, identity)).fetchone()
        except sqlite3.OperationalError:
            return None
        return json.loads(row[0]) if row is not None else None

    def mark_complete(self) -> None:
        """Record that every runnable trial of the campaign is checkpointed."""
        def operation() -> None:
            with self._conn:
                self._conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES "
                    "('complete', '1')")
        self._commit(operation, "completion commit")

    def close(self) -> None:
        """Close the underlying sqlite connection."""
        self._conn.close()

    def __enter__(self) -> "CampaignStore":
        """Return the store itself (context-manager support)."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Close the store on context exit."""
        self.close()


def enumerate_stores(directory: str | os.PathLike,
                     ) -> List[Tuple[str, CheckpointStatus]]:
    """Scan a directory for campaign stores and snapshot each one's status.

    The service's restart recovery walks its stores directory with this:
    every ``*.db`` file that opens as a campaign store and has been bound
    to a campaign contributes one ``(path, status)`` pair.  Files that are
    not sqlite databases, stores nobody has bound yet, and unreadable
    files are skipped silently — a stores directory is allowed to contain
    strays (WAL side files, half-created databases from a crash).

    Args:
        directory: The directory to scan (non-recursive).

    Returns:
        ``(path, status)`` pairs sorted by path for determinism.
    """
    found: List[Tuple[str, CheckpointStatus]] = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".db"):
            continue
        path = os.path.join(os.fspath(directory), name)
        try:
            with CampaignStore(path, read_only=True) as store:
                status = store.status()
        except (CampaignStoreError, sqlite3.Error):
            continue
        if status is not None:
            found.append((path, status))
    return found
