"""Laser-tracheotomy wireless CPS case study (paper Section V)."""

from repro.casestudy.config import (LASER, PATIENT, SUPERVISOR, VENTILATOR,
                                    CaseStudyConfig, PatientModel, SurgeonModel,
                                    paper_case_study)
from repro.casestudy.emulation import (CaseStudySystem, TrialResult, build_case_study,
                                       lease_ledger_from_trace, run_table1_trials,
                                       run_trial, run_trial_batch, summarize_trials)
from repro.casestudy.laser import EMITTING_LOCATION, SHUTOFF_LOCATION, build_laser
from repro.casestudy.observers import VENTILATOR_RISKY_CORE, TrialStatsObserver
from repro.casestudy.patient import SPO2, VENTILATED, build_patient, time_to_threshold
from repro.casestudy.supervisor import SUPERVISOR_SPO2, build_tracheotomy_supervisor
from repro.casestudy.surgeon import ScriptedSurgeon, SurgeonProcess
from repro.casestudy.ventilator import (CYLINDER_HEIGHT, CYLINDER_SPEED, CYLINDER_TOP,
                                        build_standalone_ventilator, build_ventilator,
                                        ventilating_locations)

__all__ = [
    "CaseStudyConfig", "PatientModel", "SurgeonModel", "paper_case_study",
    "SUPERVISOR", "VENTILATOR", "LASER", "PATIENT",
    "build_case_study", "run_trial", "run_trial_batch", "run_table1_trials",
    "summarize_trials",
    "CaseStudySystem", "TrialResult", "lease_ledger_from_trace",
    "TrialStatsObserver", "VENTILATOR_RISKY_CORE",
    "build_standalone_ventilator", "build_ventilator", "ventilating_locations",
    "CYLINDER_HEIGHT", "CYLINDER_TOP", "CYLINDER_SPEED",
    "build_laser", "EMITTING_LOCATION", "SHUTOFF_LOCATION",
    "build_patient", "SPO2", "VENTILATED", "time_to_threshold",
    "build_tracheotomy_supervisor", "SUPERVISOR_SPO2",
    "SurgeonProcess", "ScriptedSurgeon",
]
