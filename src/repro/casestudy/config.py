"""Parameters of the laser-tracheotomy case study (paper Section V).

Everything the emulation needs is collected in :class:`CaseStudyConfig`:
the paper's lease-pattern time constants, the PTE safeguards and the
1-minute dwelling bound, the surgeon's exponential timers, the SpO2
physiology used to drive the Supervisor's ``ApprovalCondition``, and the
wireless interference description.  The default values are the ones given
in the paper; experiments construct variations through ``dataclasses.replace``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.configuration import PatternConfiguration, laser_tracheotomy_configuration
from repro.core.rules import PTERuleSet, laser_tracheotomy_rules
from repro.wireless.interference import InterferenceSource

#: Canonical entity names used throughout the case study.
SUPERVISOR = "supervisor"
VENTILATOR = "ventilator"
LASER = "laser_scalpel"
PATIENT = "patient"


@dataclass(frozen=True)
class PatientModel:
    """First-order SpO2 physiology of the (simulated) human subject.

    While the ventilator ventilates, the blood oxygen saturation relaxes
    toward ``spo2_baseline``; while ventilation is paused it falls at
    ``desaturation_rate``.  The supervisor aborts a round whenever the
    oximeter reading drops to ``spo2_threshold`` or below
    (``ApprovalCondition``: ``SpO2(t) > threshold``).
    """

    spo2_baseline: float = 98.0
    spo2_floor: float = 70.0
    spo2_threshold: float = 92.0
    desaturation_rate: float = 0.10       # %/s while ventilation is paused
    resaturation_gain: float = 0.20       # 1/s relaxation rate while ventilated
    initial_spo2: float = 98.0

    def __post_init__(self) -> None:
        if not self.spo2_floor < self.spo2_threshold < self.spo2_baseline:
            raise ValueError("patient model requires floor < threshold < baseline")
        if self.desaturation_rate <= 0 or self.resaturation_gain <= 0:
            raise ValueError("patient model rates must be positive")


@dataclass(frozen=True)
class SurgeonModel:
    """Stochastic surgeon behaviour used by the paper's own emulation.

    ``mean_ton`` is the expectation of the exponential timer armed whenever
    the laser-scalpel dwells in Fall-Back (time until the surgeon requests
    an emission); ``mean_toff`` is the expectation of the timer armed while
    the laser emits (time until the surgeon cancels).

    ``resample_quantum`` caps how far ahead either timer commits to a
    single RNG draw.  ``None`` (the default) draws each delay in one shot,
    which is the cheapest implementation but fixes the whole delay at arm
    time.  A positive quantum instead re-draws the remaining delay every
    ``resample_quantum`` seconds; by the memorylessness of the exponential
    distribution the fire-time law is *exactly* unchanged, but the draw is
    spread over many RNG calls.  The rare-event splitting estimator
    (:mod:`repro.verify.rare`) relies on this: a trial forked mid-emission
    can only diverge from its parent through RNG draws made *after* the
    fork point, so a one-shot delay makes every clone mirror its parent
    until the emission ends, while quantised re-arming restores fresh
    randomness each quantum.
    """

    mean_ton: float = 30.0
    mean_toff: float = 18.0
    resample_quantum: float | None = None

    def __post_init__(self) -> None:
        if self.mean_ton <= 0 or self.mean_toff <= 0:
            raise ValueError("surgeon timer expectations must be positive")
        if self.resample_quantum is not None and self.resample_quantum <= 0:
            raise ValueError("resample_quantum must be positive when set")


@dataclass(frozen=True)
class CaseStudyConfig:
    """Full description of one laser-tracheotomy emulation trial family.

    Attributes:
        pattern: Lease-pattern configuration (paper values by default).
        surgeon: Surgeon behaviour model.
        patient: SpO2 physiology model.
        interference: WiFi interferer next to the base station.
        trial_duration: Length of one trial (the paper uses 30 minutes).
        dwelling_bound: Rule 1 bound used for failure counting (1 minute).
        enter_safeguard: ``T^min_risky:1->2`` (3 s).
        exit_safeguard: ``T^min_safe:2->1`` (1.5 s).
        supervisor_resend_limit: Cancel/abort retransmissions of the
            (reconstructed) supervisor.
        dt_max: Simulator sampling cap (needed for the SpO2 ODE and the
            threshold predicate).
    """

    pattern: PatternConfiguration = field(default_factory=laser_tracheotomy_configuration)
    surgeon: SurgeonModel = field(default_factory=SurgeonModel)
    patient: PatientModel = field(default_factory=PatientModel)
    interference: InterferenceSource = field(
        default_factory=lambda: InterferenceSource(duty_cycle=0.18,
                                                   mean_burst_duration=50.0))
    trial_duration: float = 1800.0
    dwelling_bound: float = 60.0
    enter_safeguard: float = 3.0
    exit_safeguard: float = 1.5
    supervisor_resend_limit: int = 8
    dt_max: float = 0.1

    def with_mean_toff(self, mean_toff: float) -> "CaseStudyConfig":
        """Copy of this configuration with a different surgeon E(Toff)."""
        return replace(self, surgeon=replace(self.surgeon, mean_toff=mean_toff))

    def rules(self) -> PTERuleSet:
        """The PTE rule set checked during emulation trials.

        These are the trial rules of Section V: ventilator pause must
        properly temporally embed laser emission with the 3 s / 1.5 s
        safeguards, and neither may last longer than one minute.
        """
        return laser_tracheotomy_rules(
            ventilator=VENTILATOR, laser=LASER,
            enter_safeguard=self.enter_safeguard,
            exit_safeguard=self.exit_safeguard,
            dwelling_bound=self.dwelling_bound)

    def pattern_with_resends(self) -> PatternConfiguration:
        """The pattern configuration with the supervisor resend limit applied."""
        return replace(self.pattern, supervisor_resend_limit=self.supervisor_resend_limit)


def paper_case_study(mean_toff: float = 18.0, **overrides) -> CaseStudyConfig:
    """The paper's trial configuration with the requested surgeon E(Toff)."""
    config = CaseStudyConfig(**overrides)
    return config.with_mean_toff(mean_toff)
