"""Emulation harness for the laser-tracheotomy case study (Table I).

This module assembles the whole wireless CPS -- supervisor, ventilator,
laser-scalpel, patient physiology, surgeon behaviour and the interfered
wireless network -- and runs timed trials, collecting exactly the
statistics reported in the paper's Table I:

* number of laser emissions,
* number of PTE safety-rule violations (failures),
* number of ``evtToStop`` events (lease expirations forcing the laser to
  stop emitting),

plus a set of auxiliary measurements (maximum pause / emission durations,
observed packet loss, supervisor aborts, lease ledger) used by the other
experiments and by the documentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.casestudy.config import (CaseStudyConfig, LASER, PATIENT, SUPERVISOR,
                                    VENTILATOR)
from repro.casestudy.laser import EMITTING_LOCATION, LASER_INDEX, build_laser
from repro.casestudy.observers import (LEASE_CORE_LOCATIONS, OUTCOME_OF_REASON,
                                       VENTILATOR_RISKY_CORE, TrialStatsObserver,
                                       lease_contracts)
from repro.casestudy.patient import SPO2, VENTILATED, build_patient
from repro.casestudy.supervisor import SUPERVISOR_SPO2, build_tracheotomy_supervisor
from repro.casestudy.surgeon import SurgeonProcess
from repro.casestudy.ventilator import build_ventilator, ventilating_locations
from repro.core.leases import LeaseLedger, LeaseOutcome
from repro.core.monitor import MonitorReport, PTEMonitor
from repro.core.rules import PTERuleSet
from repro.hybrid.simulate import (BatchedEngine, Lane, TraceObserver, build_engine,
                                   compile_system, resolve_engine_kind)
from repro.hybrid.simulate.compiled import CompiledSystem
from repro.hybrid.simulate.processes import (Coupling, EnvironmentProcess,
                                             LocationIndicatorCoupling,
                                             VariableCopyCoupling)
from repro.hybrid.system import HybridSystem
from repro.hybrid.trace import Trace
from repro.wireless.channel import Channel
from repro.wireless.network import SinkWirelessNetwork

__all__ = ["CaseStudySystem", "TrialResult", "VENTILATOR_RISKY_CORE",
           "build_case_study", "lease_ledger_from_trace", "run_trial",
           "run_trial_batch", "run_table1_trials", "summarize_trials"]


@dataclass
class CaseStudySystem:
    """Everything needed to run one laser-tracheotomy trial."""

    system: HybridSystem
    network: SinkWirelessNetwork
    surgeon: SurgeonProcess
    couplings: List[Coupling]
    rules: PTERuleSet
    config: CaseStudyConfig
    with_lease: bool
    extra_processes: List[EnvironmentProcess] = field(default_factory=list)
    #: Pre-lowered system shared across trials of one campaign cell (set by
    #: the per-worker cache); compiled/batched engines reuse it instead of
    #: lowering the model again for every trial.
    lowered: CompiledSystem | None = field(default=None, repr=False)

    def engine(self, *, seed: int | None = None,
               record_variables: Sequence[tuple[str, str]] = (),
               sample_interval: float = 0.5,
               kind: str | None = None,
               observers: Sequence[TraceObserver] = (),
               record_trace: bool = True):
        """Build a simulation engine for one trial with the given seed.

        Args:
            seed: Master seed for the trial's stochastic components.
            record_variables: ``(automaton, variable)`` pairs to sample.
            sample_interval: Sampling period for ``record_variables``.
            kind: Simulation kernel (``"reference"`` / ``"compiled"``);
                ``None`` defers to ``REPRO_ENGINE`` and then the reference.
            observers: Streaming observers attached to the run.
            record_trace: When False no trace is recorded (observers only).
        """
        return build_engine(
            self.lowered if self.lowered is not None else self.system,
            kind=kind,
            network=self.network,
            processes=[self.surgeon, *self.extra_processes],
            couplings=self.couplings,
            seed=seed,
            dt_max=self.config.dt_max,
            record_variables=record_variables,
            sample_interval=sample_interval,
            observers=observers,
            record_trace=record_trace)


def build_case_study(config: CaseStudyConfig, *, with_lease: bool = True,
                     seed: int | None = None,
                     channel: Channel | None = None,
                     surgeon: SurgeonProcess | None = None,
                     extra_processes: Sequence[EnvironmentProcess] = ()) -> CaseStudySystem:
    """Assemble the laser-tracheotomy wireless CPS.

    Args:
        config: Case-study configuration (paper defaults).
        with_lease: False removes the lease-expiry edges from the ventilator
            and the laser-scalpel, producing the Table I baseline.
        seed: Seed for the surgeon model (channels are re-seeded per trial
            by the engine through the network's :meth:`reset`).
        channel: Wireless loss model; defaults to the burst-loss channel
            calibrated from ``config.interference``.
        surgeon: Optional replacement surgeon process (e.g. a
            :class:`~repro.casestudy.surgeon.ScriptedSurgeon` for scenario
            experiments).
        extra_processes: Additional environment processes (fault scripts).

    Returns:
        A :class:`CaseStudySystem` ready to produce simulation engines.
    """
    pattern_config = config.pattern_with_resends()
    supervisor = build_tracheotomy_supervisor(pattern_config, config.patient,
                                              name=SUPERVISOR)
    ventilator = build_ventilator(pattern_config, name=VENTILATOR,
                                  lease_enabled=with_lease)
    laser = build_laser(pattern_config, name=LASER, lease_enabled=with_lease)
    patient = build_patient(config.patient, name=PATIENT)

    system = HybridSystem("laser-tracheotomy-cps")
    system.add(supervisor, entity=SUPERVISOR)
    system.add(ventilator, entity=VENTILATOR)
    system.add(laser, entity=LASER)
    system.add(patient, entity=PATIENT)

    network = _trial_network(config, channel, seed)

    couplings: List[Coupling] = [
        # Physical coupling: the patient is ventilated exactly while the
        # ventilator automaton dwells in its pumping locations.
        LocationIndicatorCoupling(
            source_automaton=VENTILATOR,
            source_locations=ventilating_locations(ventilator),
            target_automaton=PATIENT, target_variable=VENTILATED),
        # Wired oximeter: the supervisor reads the patient's SpO2 directly.
        VariableCopyCoupling(
            source_automaton=PATIENT, source_variable=SPO2,
            target_automaton=SUPERVISOR, target_variable=SUPERVISOR_SPO2),
    ]
    surgeon_process = _trial_surgeon(config, surgeon, seed)
    return CaseStudySystem(
        system=system, network=network, surgeon=surgeon_process,
        couplings=couplings, rules=config.rules(), config=config,
        with_lease=with_lease, extra_processes=list(extra_processes))


#: Per-process cache of lowered case studies, keyed by the (hashable)
#: configuration and lease mode — i.e. by campaign cell.  Campaign workers
#: build and lower each cell's hybrid system once and reuse it for every
#: trial of that cell (the model is identical across replicates, only the
#: seeds differ); both the compiled and the batched engine paths go through
#: it.  The reference engine deliberately does not: the executable
#: specification keeps building everything from scratch.
_CASE_CACHE: Dict[tuple, "tuple[CaseStudySystem, CompiledSystem]"] = {}
_CASE_CACHE_LIMIT = 8


def _lowered_case_study(config: CaseStudyConfig, with_lease: bool):
    """Template case study + lowered system for one campaign cell (cached)."""
    key = (config, with_lease)
    hit = _CASE_CACHE.get(key)
    if hit is None:
        case = build_case_study(config, with_lease=with_lease, seed=0)
        if len(_CASE_CACHE) >= _CASE_CACHE_LIMIT:
            _CASE_CACHE.pop(next(iter(_CASE_CACHE)))
        hit = (case, compile_system(case.system))
        _CASE_CACHE[key] = hit
    return hit


def _trial_network(config: CaseStudyConfig, channel: Channel | None,
                   seed: int | None) -> SinkWirelessNetwork:
    """Fresh per-trial wireless network (also used by ``build_case_study``)."""
    return SinkWirelessNetwork(
        base_station=SUPERVISOR,
        remote_entities=[VENTILATOR, LASER],
        default_channel=channel or config.interference.to_channel(seed))


def _trial_surgeon(config: CaseStudyConfig, surgeon: SurgeonProcess | None,
                   seed: int | None) -> SurgeonProcess:
    """Fresh per-trial surgeon process (also used by ``build_case_study``)."""
    return surgeon or SurgeonProcess(
        config.surgeon, laser_name=LASER, initializer_index=LASER_INDEX, seed=seed)


@dataclass
class TrialResult:
    """Statistics of one emulation trial (one row's worth of Table I data)."""

    with_lease: bool
    mean_toff: float
    duration: float
    seed: int | None
    laser_emissions: int
    failures: int
    evt_to_stop: int
    ventilator_pauses: int
    max_emission_duration: float
    max_pause_duration: float
    min_spo2: float
    supervisor_aborts: int
    surgeon_requests: int
    surgeon_cancels: int
    observed_loss_ratio: float
    monitor: MonitorReport | None = field(repr=False, default=None)
    ledger: LeaseLedger | None = field(repr=False, default=None)
    trace: Trace | None = field(repr=False, default=None)

    @property
    def mode(self) -> str:
        """``"with Lease"`` or ``"without Lease"`` (Table I's Trial Mode)."""
        return "with Lease" if self.with_lease else "without Lease"

    def table_row(self) -> tuple:
        """The row of Table I this trial contributes."""
        return (self.mode, self.mean_toff, self.laser_emissions,
                self.failures, self.evt_to_stop)


def lease_ledger_from_trace(trace: Trace, config: CaseStudyConfig) -> LeaseLedger:
    """Reconstruct the lease ledger of one trial from its trace.

    A lease opens when an entity enters its "Risky Core" and closes when it
    leaves it; the closing transition's reason tells whether the lease
    expired, was aborted, or was released cooperatively.
    """
    ledger = LeaseLedger()
    contracts = lease_contracts(config)
    for entity, core_location in LEASE_CORE_LOCATIONS.items():
        for record in trace.transitions_of(entity):
            if record.target == core_location:
                ledger.open(entity, record.time, contracts[entity])
            elif record.source == core_location:
                outcome = OUTCOME_OF_REASON.get(record.reason, LeaseOutcome.COMPLETED)
                ledger.close(entity, outcome, record.time)
    return ledger


def run_trial(config: CaseStudyConfig, *, with_lease: bool = True,
              seed: int | None = 0, duration: float | None = None,
              channel: Channel | None = None,
              surgeon: SurgeonProcess | None = None,
              extra_processes: Sequence[EnvironmentProcess] = (),
              keep_trace: bool = False,
              record_variables: Sequence[tuple[str, str]] = (),
              engine: str | None = None,
              fault=None,
              observers: Sequence = ()) -> TrialResult:
    """Run one emulation trial and collect the Table I statistics.

    By default the statistics stream through a
    :class:`~repro.casestudy.observers.TrialStatsObserver`: no trace is
    ever materialised, so memory does not grow with the trial duration.
    ``keep_trace=True`` records the full trace instead and computes the
    same statistics from it post hoc (the historical oracle path); the two
    paths produce identical numbers for any seed and either kernel.

    Args:
        config: Case-study configuration.
        with_lease: Trial mode (Table I's first column).
        seed: Master seed for every stochastic component of the trial.
        duration: Trial length; defaults to ``config.trial_duration`` (30 min).
        channel: Optional wireless loss model override.
        surgeon: Optional surgeon process override.
        extra_processes: Additional environment processes.
        keep_trace: Keep the full trace on the result (memory heavy) and
            derive the statistics from it instead of streaming.
        record_variables: ``(automaton, variable)`` pairs to sample.
        engine: Simulation kernel (``"reference"`` / ``"compiled"`` /
            ``"batched"``); ``None`` defers to the ``REPRO_ENGINE``
            environment variable and then to the reference kernel.
        fault: Optional zero-argument fault hook, invoked once after the
            trial's system is assembled and before the engine runs.  The
            campaign fault-injection harness uses it to raise a
            deterministic in-trial failure
            (:class:`repro.campaign.faults.InjectedTrialFault`); ``None``
            (the default, and every production path) is a no-op.
        observers: Extra :class:`~repro.hybrid.simulate.observers.TraceObserver`
            instances attached after the statistics observer (streaming
            path only; ignored with ``keep_trace=True``).  The rare-event
            splitting estimator attaches its
            :class:`~repro.casestudy.observers.RiskLevelObserver` here.

    Returns:
        The trial's :class:`TrialResult`.
    """
    duration = config.trial_duration if duration is None else float(duration)
    kind = resolve_engine_kind(engine)
    if kind == "reference":
        case = build_case_study(config, with_lease=with_lease, seed=seed,
                                channel=channel, surgeon=surgeon,
                                extra_processes=extra_processes)
    else:
        # Fast kernels reuse the per-process lowered model of this campaign
        # cell; only the trial's stochastic ingredients are rebuilt.
        template, lowered = _lowered_case_study(config, with_lease)
        case = CaseStudySystem(
            system=template.system,
            network=_trial_network(config, channel, seed),
            surgeon=_trial_surgeon(config, surgeon, seed),
            couplings=template.couplings, rules=template.rules,
            config=config, with_lease=with_lease,
            extra_processes=list(extra_processes), lowered=lowered)
    sampled = list(record_variables) or [(PATIENT, SPO2)]
    surgeon_process = case.surgeon
    if fault is not None:
        fault()

    if not keep_trace:
        stats = TrialStatsObserver(config)
        sim = case.engine(seed=seed, record_variables=sampled, kind=kind,
                          observers=[stats, *observers], record_trace=False)
        sim.run(duration)
        measured = dict(
            laser_emissions=stats.laser_emissions,
            failures=stats.failures,
            evt_to_stop=stats.evt_to_stop,
            ventilator_pauses=stats.ventilator_pauses,
            max_emission_duration=stats.max_emission_duration,
            max_pause_duration=stats.max_pause_duration,
            min_spo2=stats.min_spo2,
            supervisor_aborts=stats.supervisor_aborts,
            monitor=stats.report,
            ledger=stats.ledger,
            trace=None,
        )
    else:
        sim = case.engine(seed=seed, record_variables=sampled, kind=kind)
        trace = sim.run(duration)

        report = PTEMonitor(case.rules).check(trace)
        emission_intervals = trace.dwell_intervals(LASER, {EMITTING_LOCATION})
        pause_intervals = trace.risky_intervals(VENTILATOR)
        spo2_times, spo2_values = trace.series(PATIENT, SPO2)
        measured = dict(
            laser_emissions=trace.count_entries(LASER, EMITTING_LOCATION),
            failures=report.failure_count,
            evt_to_stop=len(trace.transitions_of(LASER, reason="lease_expiry",
                                                 source=EMITTING_LOCATION)),
            ventilator_pauses=trace.count_entries(VENTILATOR,
                                                  VENTILATOR_RISKY_CORE),
            max_emission_duration=max((e - s for s, e in emission_intervals),
                                      default=0.0),
            max_pause_duration=max((e - s for s, e in pause_intervals),
                                   default=0.0),
            min_spo2=min(spo2_values, default=config.patient.initial_spo2),
            supervisor_aborts=len([r for r in trace.transitions_of(SUPERVISOR)
                                   if r.reason == "approval_violated"]),
            monitor=report,
            ledger=lease_ledger_from_trace(trace, config),
            trace=trace,
        )

    return TrialResult(
        with_lease=with_lease,
        mean_toff=config.surgeon.mean_toff,
        duration=duration,
        seed=seed,
        surgeon_requests=getattr(surgeon_process, "requests_issued", 0),
        surgeon_cancels=getattr(surgeon_process, "cancels_issued", 0),
        observed_loss_ratio=case.network.observed_loss_ratio(),
        **measured,
    )


def run_trial_batch(config: CaseStudyConfig, *, with_lease: bool = True,
                    seeds: Sequence[int], duration: float | None = None,
                    channel_builder=None, surgeon_builder=None,
                    record_variables: Sequence[tuple[str, str]] = (),
                    buffers=None, fault=None) -> List[TrialResult]:
    """Run one batch of replicate trials in vectorized lockstep.

    The campaign counterpart of :func:`run_trial`: all trials share one
    cached, pre-lowered model (they are replicates of the same campaign
    cell) and execute as lanes of a single
    :class:`~repro.hybrid.simulate.batched.BatchedEngine`, each lane with
    its own seed, wireless network, surgeon process and streaming
    statistics observer.  Per seed the returned :class:`TrialResult` is
    identical to ``run_trial(config, seed=seed, ...)`` on any kernel.

    Args:
        config: Case-study configuration of the cell.
        with_lease: Trial mode (Table I's first column).
        seeds: One master seed per replicate lane.
        duration: Trial length; defaults to ``config.trial_duration``.
        channel_builder: Optional ``seed -> Channel | None`` factory (e.g.
            ``spec.channel.build``); ``None``/returned ``None`` uses the
            configuration's calibrated burst channel seeded per trial.
        surgeon_builder: Optional ``seed -> SurgeonProcess`` factory for
            scripted surgeons; ``None`` uses the stochastic surgeon model
            seeded per trial.
        record_variables: ``(automaton, variable)`` pairs to sample.
        buffers: Optional
            :class:`~repro.hybrid.simulate.batched.ExternalBatchBuffers`
            (e.g. a shared-memory plane's lane range from
            :meth:`repro.campaign.shm.StatePlane.buffers`) for the engine
            to run on; ``None`` keeps the engine's private allocations.
            Results are bit-identical either way.
        fault: Optional per-lane fault hook ``fault(offset)``, invoked
            with each lane's position before the batch engine is built.
            Raising aborts the whole batch — by design: the campaign
            supervisor then bisects the batch to isolate the poisoned
            trial.  ``None`` (the default) is a no-op.

    Returns:
        One :class:`TrialResult` per seed, in seed order.
    """
    duration = config.trial_duration if duration is None else float(duration)
    template, lowered = _lowered_case_study(config, with_lease)
    sampled = list(record_variables) or [(PATIENT, SPO2)]
    lanes: List[Lane] = []
    stats_list: List[TrialStatsObserver] = []
    networks: List[SinkWirelessNetwork] = []
    surgeons: List[SurgeonProcess] = []
    for offset, seed in enumerate(seeds):
        if fault is not None:
            fault(offset)
        channel = channel_builder(seed) if channel_builder is not None else None
        network = _trial_network(config, channel, seed)
        surgeon = _trial_surgeon(
            config, surgeon_builder(seed) if surgeon_builder is not None else None,
            seed)
        stats = TrialStatsObserver(config)
        lanes.append(Lane(seed=seed, network=network, processes=[surgeon],
                          observers=[stats]))
        stats_list.append(stats)
        networks.append(network)
        surgeons.append(surgeon)
    # Same sampling cadence as CaseStudySystem.engine's default, so lane
    # statistics match run_trial's streaming path sample for sample.
    engine = BatchedEngine(lowered, lanes=lanes, couplings=template.couplings,
                           dt_max=config.dt_max, record_variables=sampled,
                           sample_interval=0.5, record_trace=False,
                           buffers=buffers)
    engine.run(duration)
    results = []
    for seed, stats, network, surgeon in zip(seeds, stats_list, networks,
                                             surgeons):
        results.append(TrialResult(
            with_lease=with_lease,
            mean_toff=config.surgeon.mean_toff,
            duration=duration,
            seed=seed,
            laser_emissions=stats.laser_emissions,
            failures=stats.failures,
            evt_to_stop=stats.evt_to_stop,
            ventilator_pauses=stats.ventilator_pauses,
            max_emission_duration=stats.max_emission_duration,
            max_pause_duration=stats.max_pause_duration,
            min_spo2=stats.min_spo2,
            supervisor_aborts=stats.supervisor_aborts,
            surgeon_requests=getattr(surgeon, "requests_issued", 0),
            surgeon_cancels=getattr(surgeon, "cancels_issued", 0),
            observed_loss_ratio=network.observed_loss_ratio(),
            monitor=stats.report,
            ledger=stats.ledger,
            trace=None,
        ))
    return results


def run_table1_trials(config: CaseStudyConfig | None = None, *,
                      mean_toffs: Sequence[float] = (18.0, 6.0),
                      seed: int = 2013,
                      duration: float | None = None,
                      max_workers: int = 1) -> List[TrialResult]:
    """Run the four trials of Table I (with/without lease x E(Toff) values).

    Routes through the campaign layer with the streaming ``"stats"``
    payload (full per-trial results, statistics computed online, no traces
    retained); trial seeds are pinned to the historical per-trial
    derivation, so results are identical for any worker count and to the
    pre-campaign serial loop.  Like every campaign entry point this now
    defaults to the compiled kernel (bit-identical to the reference engine,
    several times faster); set ``REPRO_ENGINE=reference`` — or pass
    ``--engine reference`` on the campaign CLI — to fall back to the
    executable specification.

    Args:
        config: Base case-study configuration (paper defaults when omitted).
        mean_toffs: Surgeon E(Toff) values, one pair of trials per value.
        seed: Master seed; each trial derives its own sub-seed.
        duration: Optional trial-length override (the paper uses 30 minutes).
        max_workers: Worker processes (1 = serial in-process execution).

    Returns:
        Trial results ordered exactly like the rows of Table I.
    """
    # Imported lazily: repro.campaign builds on this module.
    from repro.campaign.executor import run_campaign
    from repro.campaign.presets import table1_spec

    spec = table1_spec(config, mean_toffs=mean_toffs, duration=duration,
                       legacy_seed=seed)
    campaign = run_campaign(spec, seed=seed, max_workers=max_workers,
                            payload="stats")
    return list(campaign.results)


def summarize_trials(results: Sequence[TrialResult]) -> Dict[str, object]:
    """Aggregate check of the Table I reproduction shape.

    Returns a dictionary with the headline claims: every with-lease trial
    must be failure-free, and the without-lease trials should exhibit
    failures (given enough interference).
    """
    with_lease = [r for r in results if r.with_lease]
    without_lease = [r for r in results if not r.with_lease]
    return {
        "with_lease_failures": sum(r.failures for r in with_lease),
        "without_lease_failures": sum(r.failures for r in without_lease),
        "with_lease_emissions": sum(r.laser_emissions for r in with_lease),
        "without_lease_emissions": sum(r.laser_emissions for r in without_lease),
        "with_lease_evt_to_stop": sum(r.evt_to_stop for r in with_lease),
        "lease_always_safe": all(r.failures == 0 for r in with_lease),
        "baseline_fails": any(r.failures > 0 for r in without_lease),
    }
