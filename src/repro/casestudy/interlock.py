"""Industrial-interlock trial runner: the furnace line as a campaign cell.

The paper's introduction motivates PTE safety rules beyond surgery: any
distributed procedure whose entities must enter "risky" modes in a fixed
order with minimum spacings and leave in reverse order.  This module is
the campaign-grade version of ``examples/industrial_interlock.py`` — a
four-entity furnace line (exhaust fan, coolant pump, conveyor, plasma
torch) whose wireless link suffers bursty 90% loss — packaged as a trial
runner the executor dispatches via ``TrialSpec(runner="interlock")``.

The runner maps the interlock's statistics onto the campaign's
:class:`~repro.casestudy.emulation.TrialResult` container: the plasma
torch (the Initializer, the laser's counterpart) fills the emission
columns, the exhaust fan (the outermost entity, the ventilator's
counterpart) fills the pause columns, and the PTE verdict of
:func:`repro.core.check_trace` fills ``failures``.  Surgery-only fields
(SpO2, E(Toff)) are zeroed.

Like every campaign path this is engine-agnostic: the pattern system is
lowered once per worker process and the compiled/batched kernels produce
traces bit-identical to the reference engine.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.casestudy.emulation import TrialResult
from repro.core import (build_baseline_system, build_pattern_system, check_trace,
                        synthesize_configuration)
from repro.hybrid import CallbackProcess
from repro.hybrid.simulate import build_engine, resolve_engine_kind
from repro.hybrid.simulate.compiled import CompiledSystem, compile_system
from repro.wireless import GilbertElliottChannel

#: The furnace line's entities, in PTE (enter) order.
ENTITIES = ("exhaust_fan", "coolant_pump", "conveyor", "plasma_torch")

#: The Initializer entity (fires last, stops first) — the "laser" of this
#: system — and the outermost entity — its "ventilator".
INITIALIZER = ENTITIES[-1]
OUTERMOST = ENTITIES[0]

#: Default trial horizon in seconds (matches the example).
DEFAULT_HORIZON = 250.0

#: Simulation time at which the operator requests the procedure.
_REQUEST_AT = 6.0

#: Per-process cache of built-and-lowered interlock systems, keyed by
#: lease mode — the interlock counterpart of
#: :func:`repro.casestudy.emulation._lowered_case_study`, so pooled
#: campaigns lower the pattern once per worker, not once per trial.
_SYSTEM_CACHE: Dict[bool, Tuple[object, CompiledSystem]] = {}


def _interlock_system(with_lease: bool):
    """Build (or fetch) the furnace-line pattern system and its lowering.

    Args:
        with_lease: ``True`` builds the lease design, ``False`` the
            no-lease baseline (same topology, no lease-expiry edges).

    Returns:
        ``(pattern, compiled)``: the built
        :class:`~repro.core.pattern.builder.PatternSystem` and its
        pre-lowered :class:`~repro.hybrid.simulate.compiled.CompiledSystem`.
    """
    cached = _SYSTEM_CACHE.get(with_lease)
    if cached is not None:
        return cached
    config = synthesize_configuration(
        n_entities=len(ENTITIES),
        enter_safeguards=[4.0, 2.0, 2.0],
        exit_safeguards=[2.0, 1.0, 1.0],
        t_fallback_min=5.0)
    builder = build_pattern_system if with_lease else build_baseline_system
    pattern = builder(config, entity_names=list(ENTITIES),
                      supervisor_name="plc")
    cached = (pattern, compile_system(pattern.system))
    _SYSTEM_CACHE[with_lease] = cached
    return cached


def run_interlock_trial(*, with_lease: bool, seed: int | None,
                        duration: float | None = None,
                        engine: str | None = None,
                        fault: Callable[[], None] | None = None,
                        ) -> TrialResult:
    """Run one furnace-interlock trial under bursty wireless loss.

    The trial places the four-entity line under a Gilbert-Elliott channel
    (90% loss in the bad state) seeded with the trial seed, injects one
    operator request at t=6s, and scores the run with the PTE monitor.
    With leases the entry/exit order survives arbitrary loss; the baseline
    violates it under the same loss trace.

    Args:
        with_lease: Trial mode (lease design vs. no-lease baseline).
        seed: Trial seed for the channel and the engine.
        duration: Trial horizon in seconds (``None`` =
            :data:`DEFAULT_HORIZON`).
        engine: Simulation kernel (``None`` defers to ``REPRO_ENGINE``
            and then the reference kernel; the campaign executor passes
            its resolved default).
        fault: Optional zero-argument fault hook, invoked after the
            system is assembled and before the engine runs (the campaign
            fault-injection harness).

    Returns:
        The trial's statistics in the campaign's
        :class:`~repro.casestudy.emulation.TrialResult` container:
        Initializer (plasma-torch) activations as emissions, outermost
        (exhaust-fan) activations as pauses, PTE violations as failures.
    """
    horizon = DEFAULT_HORIZON if duration is None else float(duration)
    kind = resolve_engine_kind(engine)
    pattern, compiled = _interlock_system(with_lease)
    system = pattern.system if kind == "reference" else compiled
    operator = CallbackProcess([
        (_REQUEST_AT,
         lambda e: e.inject_event(pattern.vocabulary.command_request)),
    ])
    channel = GilbertElliottChannel(mean_good_duration=40.0,
                                    mean_bad_duration=30.0,
                                    loss_good=0.1, loss_bad=0.9, seed=seed)
    network = pattern.build_network(default_channel=channel)
    sim = build_engine(system, kind=kind, network=network,
                       processes=[operator], seed=seed)
    if fault is not None:
        fault()
    trace = sim.run(horizon)
    report = check_trace(trace, pattern.rules)
    torch_intervals = trace.risky_intervals(INITIALIZER)
    fan_intervals = trace.risky_intervals(OUTERMOST)
    return TrialResult(
        with_lease=with_lease,
        mean_toff=0.0,
        duration=horizon,
        seed=seed,
        laser_emissions=len(torch_intervals),
        failures=report.failure_count,
        evt_to_stop=len(trace.transitions_of(INITIALIZER,
                                             reason="lease_expiry")),
        ventilator_pauses=len(fan_intervals),
        max_emission_duration=max((e - s for s, e in torch_intervals),
                                  default=0.0),
        max_pause_duration=max((e - s for s, e in fan_intervals),
                               default=0.0),
        min_spo2=0.0,
        supervisor_aborts=0,
        surgeon_requests=1,
        surgeon_cancels=0,
        observed_loss_ratio=network.observed_loss_ratio(),
        monitor=report,
    )
