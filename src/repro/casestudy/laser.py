"""The (surgeon-operated) laser-scalpel: the case study's Initializer.

The paper notes that the Initializer design-pattern automaton ``A_initzr``
can be used directly as the laser-scalpel design -- no elaboration needed
(Section V).  This module simply instantiates it with the case study's
names and exposes the location names the rest of the case study refers to
(which location means "emitting", etc.).
"""

from __future__ import annotations

from repro.casestudy.config import LASER
from repro.core.configuration import PatternConfiguration
from repro.core.pattern.initializer import build_initializer
from repro.core.pattern.roles import FALL_BACK, RISKY_CORE, qualified
from repro.hybrid.automaton import HybridAutomaton

#: PTE index of the laser-scalpel in the case study (the Initializer, xi_2).
LASER_INDEX = 2

#: Entity identifier used to namespace the laser automaton's locations.
LASER_ENTITY_ID = f"xi{LASER_INDEX}"

#: Location in which the laser-scalpel actually emits laser.
EMITTING_LOCATION = qualified(LASER_ENTITY_ID, RISKY_CORE)

#: Location in which the laser-scalpel idles.
SHUTOFF_LOCATION = qualified(LASER_ENTITY_ID, FALL_BACK)


def build_laser(config: PatternConfiguration, *, name: str = LASER,
                lease_enabled: bool = True) -> HybridAutomaton:
    """Build the laser-scalpel automaton (Initializer ``xi_2``).

    Args:
        config: Lease-pattern configuration (paper values for the case study).
        name: Automaton name (also the wireless entity name).
        lease_enabled: False builds the no-lease baseline variant in which
            the laser keeps emitting until explicitly stopped.
    """
    laser = build_initializer(config, entity_id=LASER_ENTITY_ID, name=name,
                              lease_enabled=lease_enabled)
    laser.metadata["entity_index"] = LASER_INDEX
    return laser
