"""Streaming Table-I statistics for emulation trials.

:class:`TrialStatsObserver` subscribes to an engine's observer pipeline and
computes every :class:`~repro.casestudy.emulation.TrialResult` statistic
online -- emission/pause counters, ``evtToStop``, dwell maxima, minimum
SpO2, the lease ledger, and the PTE safety verdict (through the monitor's
trace-free :meth:`~repro.core.monitor.PTEMonitor.check_risky_intervals`
entry point).

Nothing about the run is retained beyond per-entity maximal risky
intervals (bounded by the number of lease rounds, not by the horizon), so
a ``payload="stats"`` campaign's memory footprint is flat no matter how
long the trials are.  Given the same execution, the numbers are
bit-identical to the historical post-hoc scan over a recorded
:class:`~repro.hybrid.trace.Trace` (asserted by the compiled-equivalence
test suite).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from repro.casestudy.config import (CaseStudyConfig, LASER, PATIENT, SUPERVISOR,
                                    VENTILATOR)
from repro.casestudy.laser import EMITTING_LOCATION
from repro.casestudy.patient import SPO2
from repro.core.intervals import Interval, IntervalSet
from repro.core.leases import LeaseLedger, LeaseOutcome
from repro.core.monitor import MonitorReport, PTEMonitor
from repro.core.pattern.roles import RISKY_CORE, qualified
from repro.hybrid.simulate.observers import DwellTracker, TraceObserver
from repro.hybrid.trace import TransitionRecord
from repro.util.seeding import RngLedger, StreamKey

#: Location in which the ventilator is paused and "running" its risky core.
VENTILATOR_RISKY_CORE = qualified("xi1", RISKY_CORE)

#: Per-entity "Risky Core" location (a lease opens on entry, closes on exit).
LEASE_CORE_LOCATIONS = {VENTILATOR: VENTILATOR_RISKY_CORE,
                        LASER: EMITTING_LOCATION}

#: How a risky-core-leaving transition's reason maps to a lease outcome.
#: Shared with ``lease_ledger_from_trace`` so the streaming and post-hoc
#: lease reconstructions can never classify the same transition differently.
OUTCOME_OF_REASON = {
    "lease_expiry": LeaseOutcome.EXPIRED,
    "abort": LeaseOutcome.ABORTED,
    "cancel": LeaseOutcome.COMPLETED,
    "user_cancel": LeaseOutcome.COMPLETED,
}

#: The observer-owned columns of the campaign's fixed-width results record,
#: as ``(field, kind)`` with ``kind`` ``"i"`` (int64) or ``"f"`` (float64).
#: ``pte_satisfied`` is the PTE verdict (1 when no failure episode was
#: found).  See :meth:`TrialStatsObserver.stats_record` and the results
#: ring in :mod:`repro.campaign.shm`.
STATS_RECORD_FIELDS = (
    ("laser_emissions", "i"),
    ("failures", "i"),
    ("evt_to_stop", "i"),
    ("ventilator_pauses", "i"),
    ("supervisor_aborts", "i"),
    ("max_emission_duration", "f"),
    ("max_pause_duration", "f"),
    ("min_spo2", "f"),
    ("pte_satisfied", "i"),
)


def lease_contracts(config: CaseStudyConfig) -> Dict[str, float]:
    """Contracted maximum risky dwell per lease-holding entity."""
    return {
        VENTILATOR: config.pattern.timing(1).t_run_max,
        LASER: config.pattern.timing(2).t_run_max,
    }


class TrialStatsObserver(TraceObserver):
    """Compute one trial's Table-I statistics without retaining the trace."""

    def __init__(self, config: CaseStudyConfig):
        self.config = config
        self.monitor = PTEMonitor(config.rules())
        self._monitored = self.monitor.monitored_entities()
        self._lease_contracts = lease_contracts(config)
        self._lease_core = LEASE_CORE_LOCATIONS

        self.laser_emissions = 0
        self.ventilator_pauses = 0
        self.evt_to_stop = 0
        self.supervisor_aborts = 0
        self.min_spo2 = config.patient.initial_spo2
        self._saw_spo2 = False
        self.ledger = LeaseLedger()
        self.report: MonitorReport | None = None
        self.end_time = 0.0
        self._risky_trackers: Dict[str, DwellTracker] = {}
        self._emission_tracker = DwellTracker({EMITTING_LOCATION})

    # -- observer hooks ----------------------------------------------------------
    def begin_run(self, risky_locations: Mapping[str, set[str]]) -> None:
        self.__init__(self.config)

    def register_automaton(self, name: str, initial_location: str,
                           risky_locations: Iterable[str] = ()) -> None:
        if name in self._monitored:
            tracker = DwellTracker(risky_locations)
            tracker.enter(initial_location, 0.0)
            self._risky_trackers[name] = tracker
        if name == LASER:
            self._emission_tracker.enter(initial_location, 0.0)

    def on_transition(self, record: TransitionRecord) -> None:
        name = record.automaton
        tracker = self._risky_trackers.get(name)
        if tracker is not None:
            tracker.enter(record.target, record.time)
        if name == LASER:
            self._emission_tracker.enter(record.target, record.time)
            if record.target == EMITTING_LOCATION:
                self.laser_emissions += 1
            if (record.source == EMITTING_LOCATION
                    and record.reason == "lease_expiry"):
                self.evt_to_stop += 1
        elif name == VENTILATOR:
            if record.target == VENTILATOR_RISKY_CORE:
                self.ventilator_pauses += 1
        elif name == SUPERVISOR and record.reason == "approval_violated":
            self.supervisor_aborts += 1
        core = self._lease_core.get(name)
        if core is not None:
            if record.target == core:
                self.ledger.open(name, record.time, self._lease_contracts[name])
            elif record.source == core:
                outcome = OUTCOME_OF_REASON.get(record.reason,
                                                LeaseOutcome.COMPLETED)
                self.ledger.close(name, outcome, record.time)

    def on_sample(self, automaton: str, variable: str, time: float,
                  value: float) -> None:
        if automaton == PATIENT and variable == SPO2:
            if not self._saw_spo2 or value < self.min_spo2:
                self.min_spo2 = value
                self._saw_spo2 = True

    def end_run(self, end_time: float) -> None:
        self.end_time = end_time
        self._emission_tracker.finish(end_time)
        # Entities the rule set monitors but that were never registered
        # (partial systems) get empty interval sets, matching how the
        # trace-based monitor treats automata absent from a trace.
        risky_sets: Dict[str, IntervalSet] = {entity: IntervalSet()
                                              for entity in self._monitored}
        for name, tracker in self._risky_trackers.items():
            tracker.finish(end_time)
            risky_sets[name] = IntervalSet(Interval(start, end)
                                           for start, end in tracker.intervals)
        self.report = self.monitor.check_risky_intervals(risky_sets, end_time)

    # -- derived statistics --------------------------------------------------------
    @property
    def failures(self) -> int:
        """Number of distinct PTE failure episodes (Table I's column)."""
        return self.report.failure_count if self.report is not None else 0

    @property
    def max_emission_duration(self) -> float:
        """Longest continuous laser emission observed."""
        return max((end - start
                    for start, end in self._emission_tracker.intervals),
                   default=0.0)

    @property
    def max_pause_duration(self) -> float:
        """Longest continuous ventilation pause (risky dwell) observed."""
        tracker = self._risky_trackers.get(VENTILATOR)
        intervals = tracker.intervals if tracker is not None else []
        return max((end - start for start, end in intervals), default=0.0)

    def stats_record(self) -> Dict[str, float]:
        """The observer-owned Table-I statistics as a flat numeric mapping.

        Every value is a plain Python ``int``/``float``, covering exactly
        the ``STATS_RECORD_FIELDS`` columns — the observer's share of the
        fixed-width record that the shared results ring
        (:mod:`repro.campaign.shm`) carries instead of a pickle.  The
        campaign-level fields (seed, mean_toff, surgeon counters, loss
        ratio) are added by the executor when it completes the
        :data:`~repro.campaign.aggregate.SUMMARY_RECORD_FIELDS` row.
        """
        return {
            "laser_emissions": int(self.laser_emissions),
            "failures": int(self.failures),
            "evt_to_stop": int(self.evt_to_stop),
            "ventilator_pauses": int(self.ventilator_pauses),
            "supervisor_aborts": int(self.supervisor_aborts),
            "max_emission_duration": float(self.max_emission_duration),
            "max_pause_duration": float(self.max_pause_duration),
            "min_spo2": float(self.min_spo2),
            "pte_satisfied": int(self.failures == 0),
        }


class RiskLevelObserver(TraceObserver):
    """Streaming PTE risk score for rare-event importance splitting.

    The observer tracks, for every entity the rule set monitors, the
    longest continuous risky dwell seen so far (open dwells included, with
    the same zero-duration-excursion merge rule as the monitor) and scores
    the trial by the largest *fraction of the PTE dwelling bound* any
    entity has consumed.  A score of 1.0 means some entity dwelt risky for
    its full Rule-1 budget — the boundary of a violation.

    The score is a non-decreasing step function of time.  Each time the
    running maximum strictly increases, the observer records a
    ``(score, watermark)`` staircase entry, where the watermark is the
    active :class:`~repro.util.seeding.RngLedger`'s draw-count snapshot at
    that instant (``None`` when no ledger is supplied).  The splitting
    estimator later asks :meth:`watermark_at` for the first entry at or
    above a threshold: replaying the trial's RNG streams up to that
    watermark and diverging afterwards yields a child trial conditionally
    distributed given "parent reached this risk level".

    Heartbeats run *before* a transition is applied, so the watermark
    recorded for a level crossing never includes draws from events after
    the crossing instant.
    """

    def __init__(self, config: CaseStudyConfig, ledger: RngLedger | None = None):
        self.config = config
        self._ledger = ledger
        rules = config.rules()
        self._bounds = {entity: rules.dwelling_bound(entity)
                        for entity in rules.entities}
        self._trackers: Dict[str, DwellTracker] = {}
        #: Strictly increasing ``(score, watermark)`` records, in time order.
        self.staircase: List[Tuple[float, Dict[StreamKey, int] | None]] = []
        self.score = 0.0

    # -- observer hooks ----------------------------------------------------------
    def begin_run(self, risky_locations: Mapping[str, set[str]]) -> None:
        self.__init__(self.config, self._ledger)

    def register_automaton(self, name: str, initial_location: str,
                           risky_locations: Iterable[str] = ()) -> None:
        if name in self._bounds:
            tracker = DwellTracker(risky_locations)
            tracker.enter(initial_location, 0.0)
            self._trackers[name] = tracker

    def on_transition(self, record: TransitionRecord) -> None:
        self._heartbeat(record.time)
        tracker = self._trackers.get(record.automaton)
        if tracker is not None:
            tracker.enter(record.target, record.time)

    def on_sample(self, automaton: str, variable: str, time: float,
                  value: float) -> None:
        self._heartbeat(time)

    def end_run(self, end_time: float) -> None:
        self._heartbeat(end_time)
        for tracker in self._trackers.values():
            tracker.finish(end_time)

    # -- scoring ---------------------------------------------------------------
    def _heartbeat(self, now: float) -> None:
        score = 0.0
        for name, tracker in self._trackers.items():
            dwell = max((end - start for start, end in tracker.intervals),
                        default=0.0)
            dwell = max(dwell, tracker.ongoing(now))
            bound = self._bounds[name]
            if bound > 0:
                score = max(score, dwell / bound)
        if score > self.score:
            self.score = score
            marks = self._ledger.snapshot() if self._ledger is not None else None
            self.staircase.append((score, marks))

    def watermark_at(self, threshold: float) -> Dict[StreamKey, int] | None:
        """RNG watermark of the first staircase step at/above ``threshold``.

        Returns ``None`` when the trial never reached the threshold or no
        ledger was attached; an empty dict (no draws yet) is a valid,
        non-``None`` watermark.
        """
        for score, marks in self.staircase:
            if score >= threshold:
                return marks
        return None
