"""Patient (SpO2 physiology) and oximeter model.

In the paper's emulation the "patient" is a real human subject breathing in
sync with the ventilator emulator, wearing a Nonin 9843 oximeter wired to
the supervisor computer.  Here the patient is a hybrid automaton with a
single location whose flow is a first-order saturation/desaturation ODE:

* while ventilated, ``SpO2`` relaxes toward the baseline with rate
  ``resaturation_gain``;
* while the ventilator is paused, ``SpO2`` falls at ``desaturation_rate``
  until it reaches the physiological floor.

The ``ventilated`` input variable is driven by a physical coupling from the
ventilator automaton's current location (not by wireless messages), and the
oximeter reading reaches the supervisor through another wired coupling --
mirroring the paper's layout where the SpO2 sensor is wired to the
supervisor, forming entity ``xi_0``.
"""

from __future__ import annotations

from repro.casestudy.config import PATIENT, PatientModel
from repro.hybrid.automaton import HybridAutomaton
from repro.hybrid.flows import CallableFlow
from repro.hybrid.locations import Location
from repro.hybrid.variables import Valuation

try:  # NumPy backs the lane-vectorized twin of the SpO2 ODE (batched kernel).
    import numpy as _np
except ImportError:  # pragma: no cover - container images bake NumPy in
    _np = None

#: Variable names of the patient automaton.
SPO2 = "spo2"
VENTILATED = "ventilated"


def spo2_derivative(valuation: Valuation, model: PatientModel) -> float:
    """Right-hand side of the SpO2 ODE for the given patient model."""
    spo2 = valuation.get(SPO2, model.initial_spo2)
    ventilated = valuation.get(VENTILATED, 1.0) > 0.5
    if ventilated:
        if spo2 >= model.spo2_baseline:
            return 0.0
        return model.resaturation_gain * (model.spo2_baseline - spo2)
    if spo2 <= model.spo2_floor:
        return 0.0
    return -model.desaturation_rate


def spo2_derivative_vector(valuation, model: PatientModel):
    """Lane-vectorized twin of :func:`spo2_derivative` (batched kernel).

    ``valuation`` yields one NumPy array element per replicate lane.  Every
    element-wise operation mirrors the scalar function exactly (same
    multiplications, same branch selection), so batched integration stays
    bit-identical to the reference engine per lane.
    """
    spo2 = valuation.get(SPO2, model.initial_spo2)
    ventilated = valuation.get(VENTILATED, 1.0) > 0.5
    saturating = model.resaturation_gain * (model.spo2_baseline - spo2)
    while_ventilated = _np.where(spo2 >= model.spo2_baseline, 0.0, saturating)
    while_paused = _np.where(spo2 <= model.spo2_floor, 0.0,
                             -model.desaturation_rate)
    return {SPO2: _np.where(ventilated, while_ventilated, while_paused)}


def build_patient(model: PatientModel, *, name: str = PATIENT,
                  substep: float = 0.05) -> HybridAutomaton:
    """Build the patient automaton with its SpO2 physiology flow.

    Args:
        model: Physiological parameters.
        name: Automaton name.
        substep: RK4 integration sub-step for the SpO2 ODE.

    Returns:
        A single-location hybrid automaton with variables ``spo2`` and
        ``ventilated``.
    """
    flow = CallableFlow(
        lambda valuation: {SPO2: spo2_derivative(valuation, model)},
        variables=(SPO2,),
        description="first-order SpO2 saturation/desaturation",
        substep=substep,
        vector_func=(None if _np is None
                     else lambda valuation: spo2_derivative_vector(valuation, model)))
    automaton = HybridAutomaton(
        name,
        variables=[SPO2, VENTILATED],
        initial_valuation={SPO2: model.initial_spo2, VENTILATED: 1.0},
        metadata={"description": "patient SpO2 physiology + wired oximeter"},
    )
    automaton.add_location(Location(name="Physiology", flow=flow))
    automaton.initial_location = "Physiology"
    automaton.validate()
    return automaton


def time_to_threshold(model: PatientModel, *, from_spo2: float | None = None) -> float:
    """Seconds of ventilation pause before SpO2 crosses the abort threshold.

    A closed-form helper used by tests and by the experiment documentation:
    starting from ``from_spo2`` (default: the baseline) and desaturating at
    the model's constant rate, how long until the supervisor's
    ``ApprovalCondition`` (``SpO2 > threshold``) is violated?
    """
    start = model.spo2_baseline if from_spo2 is None else from_spo2
    if start <= model.spo2_threshold:
        return 0.0
    return (start - model.spo2_threshold) / model.desaturation_rate
