"""The laser-tracheotomy supervisor (base station, entity ``xi_0``).

The supervisor is the Supervisor design-pattern automaton instantiated with
the case study's ``ApprovalCondition``: the wired oximeter reading must
exceed the ``theta_SpO2`` threshold (92 % in the paper).  The oximeter
value lives in the supervisor automaton's own ``spo2_xi0`` variable, which
is written every integration step by a wired-sensor coupling from the
patient model -- it never crosses the lossy wireless network.
"""

from __future__ import annotations

from repro.casestudy.config import SUPERVISOR, PatientModel
from repro.core.configuration import PatternConfiguration
from repro.core.pattern.supervisor import build_supervisor
from repro.hybrid.automaton import HybridAutomaton
from repro.hybrid.expressions import var_gt

#: Name of the supervisor-side oximeter reading variable.
SUPERVISOR_SPO2 = "spo2_xi0"


def build_tracheotomy_supervisor(config: PatternConfiguration,
                                 patient_model: PatientModel, *,
                                 name: str = SUPERVISOR,
                                 use_abort_on_violation: bool = True) -> HybridAutomaton:
    """Build the laser-tracheotomy supervisor automaton.

    Args:
        config: Lease-pattern configuration.
        patient_model: Supplies the initial oximeter reading and the
            ``theta_SpO2`` approval threshold.
        name: Automaton name (also the base-station entity name).
        use_abort_on_violation: Forwarded to the pattern builder; False
            disables mid-round aborts (used only by ablation experiments).
    """
    approval_condition = var_gt(SUPERVISOR_SPO2, patient_model.spo2_threshold)
    return build_supervisor(
        config, entity_id="xi0", name=name,
        approval_condition=approval_condition,
        extra_variables={SUPERVISOR_SPO2: patient_model.initial_spo2},
        use_abort_on_violation=use_abort_on_violation)
