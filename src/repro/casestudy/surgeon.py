"""Surgeon behaviour model.

The paper's emulation replaces the surgeon's free will with two exponential
timers (Section V):

* ``Ton`` -- armed whenever the laser-scalpel dwells in "Fall-Back"; when it
  fires, the (emulated) surgeon asks the supervisor for permission to emit
  (our local ``cmd_initiate`` event).  The timer is destroyed whenever the
  laser-scalpel leaves "Fall-Back".
* ``Toff`` -- armed whenever the laser-scalpel is emitting (dwells in
  "Risky Core"); when it fires, the surgeon cancels the emission (our local
  ``cmd_cancel`` event).  The timer is destroyed whenever the laser-scalpel
  returns to "Fall-Back".

The surgeon is an :class:`~repro.hybrid.simulate.processes.EnvironmentProcess`:
it observes the laser automaton's transitions, keeps its timers, and injects
the command events locally (they are never carried over the wireless
network, hence never lost).
"""

from __future__ import annotations

from repro.casestudy.config import SurgeonModel
from repro.core.pattern import events
from repro.core.pattern.roles import FALL_BACK, RISKY_CORE, qualified
from repro.hybrid.simulate.engine import SimulationEngine
from repro.hybrid.simulate.processes import EnvironmentProcess
from repro.hybrid.trace import TransitionRecord
from repro.util.seeding import spawn_rng


class SurgeonProcess(EnvironmentProcess):
    """Stochastic surgeon driving the laser-scalpel Initializer.

    Args:
        model: Expectations of the ``Ton``/``Toff`` exponential timers.
        laser_name: Automaton name of the laser-scalpel.
        initializer_index: PTE index of the Initializer (``N``), used to
            derive the command event roots and the namespaced location names.
        seed: RNG seed (independent of every other stochastic component).
    """

    name = "surgeon"

    def __init__(self, model: SurgeonModel, *, laser_name: str,
                 initializer_index: int = 2, entity_id: str | None = None,
                 seed: int | None = None):
        self.model = model
        self.laser_name = laser_name
        self.initializer_index = initializer_index
        entity_id = entity_id or f"xi{initializer_index}"
        self._fallback_location = qualified(entity_id, FALL_BACK)
        self._emitting_location = qualified(entity_id, RISKY_CORE)
        self._cmd_request = events.command_request(initializer_index)
        self._cmd_cancel = events.command_cancel(initializer_index)
        self._rng = spawn_rng(seed, "surgeon")
        self._ton_at: float | None = None
        self._toff_at: float | None = None
        self._ton_fires = True
        self._toff_fires = True
        self.requests_issued = 0
        self.cancels_issued = 0

    # -- timer management ----------------------------------------------------------
    # With ``model.resample_quantum`` set, a draw that exceeds the quantum
    # schedules a re-arm checkpoint instead of a fire: at the checkpoint the
    # remaining delay is drawn afresh.  Because the exponential distribution
    # is memoryless this changes nothing in law -- it only spreads the delay
    # over several RNG draws, which the splitting estimator needs (see
    # :class:`~repro.casestudy.config.SurgeonModel`).
    def _draw_delay(self, now: float, mean: float) -> tuple[float, bool]:
        delay = self._rng.expovariate(1.0 / mean)
        quantum = self.model.resample_quantum
        if quantum is not None and delay > quantum:
            return now + quantum, False
        return now + delay, True

    def _arm_ton(self, now: float) -> None:
        self._ton_at, self._ton_fires = self._draw_delay(now, self.model.mean_ton)

    def _arm_toff(self, now: float) -> None:
        self._toff_at, self._toff_fires = self._draw_delay(now, self.model.mean_toff)

    def initialize(self, engine: SimulationEngine) -> None:
        self._ton_at = None
        self._toff_at = None
        self.requests_issued = 0
        self.cancels_issued = 0
        if engine.location_of(self.laser_name) == self._fallback_location:
            self._arm_ton(engine.now)

    def notify_transition(self, engine: SimulationEngine,
                          record: TransitionRecord) -> None:
        if record.automaton != self.laser_name:
            return
        if record.target == self._fallback_location:
            # Back in Fall-Back: Toff is destroyed, Ton is (re-)armed.
            self._toff_at = None
            self._arm_ton(record.time)
        elif record.source == self._fallback_location:
            # Leaving Fall-Back destroys the pending Ton timer.
            self._ton_at = None
        if record.target == self._emitting_location:
            # Emission started: arm Toff.
            self._arm_toff(record.time)

    def next_wakeup(self, now: float) -> float | None:
        candidates = [t for t in (self._ton_at, self._toff_at) if t is not None]
        return min(candidates) if candidates else None

    def wake(self, engine: SimulationEngine, now: float) -> None:
        if self._ton_at is not None and now >= self._ton_at - 1e-9:
            fires = self._ton_fires
            self._ton_at = None
            if engine.location_of(self.laser_name) == self._fallback_location:
                if fires:
                    self.requests_issued += 1
                    engine.inject_event(self._cmd_request, sender=self.name)
                else:
                    self._arm_ton(now)
            else:  # pragma: no cover - defensive: timer should have been destroyed
                pass
        if self._toff_at is not None and now >= self._toff_at - 1e-9:
            fires = self._toff_fires
            self._toff_at = None
            if engine.location_of(self.laser_name) == self._emitting_location:
                if fires:
                    self.cancels_issued += 1
                    engine.inject_event(self._cmd_cancel, sender=self.name)
                else:
                    self._arm_toff(now)


class ScriptedSurgeon(EnvironmentProcess):
    """Deterministic surgeon used by scenario experiments and tests.

    Args:
        requests_at: Times at which the surgeon asks for an emission.
        cancels_at: Times at which the surgeon cancels.
        initializer_index: PTE index of the Initializer.
    """

    name = "scripted-surgeon"

    def __init__(self, *, requests_at: list[float] = (), cancels_at: list[float] = (),
                 initializer_index: int = 2):
        self._cmd_request = events.command_request(initializer_index)
        self._cmd_cancel = events.command_cancel(initializer_index)
        actions = [(float(t), self._cmd_request) for t in requests_at]
        actions += [(float(t), self._cmd_cancel) for t in cancels_at]
        self._actions = sorted(actions, key=lambda item: item[0])
        self._index = 0
        self.requests_issued = 0
        self.cancels_issued = 0

    def initialize(self, engine: SimulationEngine) -> None:
        self._index = 0
        self.requests_issued = 0
        self.cancels_issued = 0

    def next_wakeup(self, now: float) -> float | None:
        if self._index >= len(self._actions):
            return None
        return self._actions[self._index][0]

    def wake(self, engine: SimulationEngine, now: float) -> None:
        while self._index < len(self._actions) and self._actions[self._index][0] <= now + 1e-9:
            _, root = self._actions[self._index]
            self._index += 1
            if root == self._cmd_request:
                self.requests_issued += 1
            else:
                self.cancels_issued += 1
            engine.inject_event(root, sender=self.name)
