"""The ventilator: stand-alone automaton (Fig. 2) and its PTE-safe design.

Two constructions are provided:

* :func:`build_standalone_ventilator` -- the simple hybrid automaton
  ``A'_vent`` of Fig. 2: the cylinder moves down at 0.1 m/s in "PumpOut",
  up at 0.1 m/s in "PumpIn", bouncing between 0 and 0.3 m, broadcasting an
  (internal) event at each turnaround.  This automaton is *simple* in the
  sense of Definition 3 and independent from the Participant pattern, so it
  can be used as an elaboration child.
* :func:`build_ventilator` -- the PTE-safe ventilator of the case study:
  the Participant design pattern ``A_ptcpnt,1`` elaborated at "Fall-Back"
  with ``A'_vent`` (Section V).  While leased (paused), the cylinder height
  freezes, exactly as the elaboration rule prescribes for child variables
  outside the child automaton.
"""

from __future__ import annotations

from repro.casestudy.config import VENTILATOR
from repro.core.configuration import PatternConfiguration
from repro.core.pattern.participant import build_participant
from repro.core.pattern.roles import FALL_BACK, qualified
from repro.hybrid.automaton import HybridAutomaton
from repro.hybrid.edges import Edge
from repro.hybrid.elaboration import elaborate
from repro.hybrid.expressions import BoxPredicate, Predicate, TRUE, var_ge, var_le
from repro.hybrid.flows import ConstantFlow
from repro.hybrid.locations import Location

#: Name of the cylinder-height data state variable (meters).
CYLINDER_HEIGHT = "h_vent"

#: Cylinder stroke of the paper's ventilator (meters).
CYLINDER_TOP = 0.3

#: Cylinder speed of the paper's ventilator (meters per second).
CYLINDER_SPEED = 0.1

#: Locations of the stand-alone ventilator in which it actively ventilates.
VENTILATING_LOCATIONS = frozenset({"PumpOut", "PumpIn"})

#: Internal events broadcast at the cylinder turnarounds (Fig. 2).
EVT_PUMP_IN = "evt_vent_pump_in"
EVT_PUMP_OUT = "evt_vent_pump_out"


def build_standalone_ventilator(*, initial_height: float = CYLINDER_TOP,
                                name: str = "standalone_ventilator") -> HybridAutomaton:
    """Build ``A'_vent``, the stand-alone ventilator of Fig. 2.

    Args:
        initial_height: Initial cylinder height ``H_vent(0)`` in ``[0, 0.3]``.
        name: Automaton name.

    Returns:
        A simple hybrid automaton with locations "PumpOut" (initial) and
        "PumpIn".
    """
    if not 0.0 <= initial_height <= CYLINDER_TOP:
        raise ValueError(f"initial cylinder height must lie in [0, {CYLINDER_TOP}]")
    invariant = BoxPredicate(CYLINDER_HEIGHT, 0.0, CYLINDER_TOP)
    automaton = HybridAutomaton(
        name,
        variables=[CYLINDER_HEIGHT],
        initial_valuation={CYLINDER_HEIGHT: initial_height},
        metadata={"figure": "Fig. 2", "description": "stand-alone ventilator"},
    )
    automaton.add_location(Location(
        name="PumpOut", invariant=invariant,
        flow=ConstantFlow({CYLINDER_HEIGHT: -CYLINDER_SPEED})))
    automaton.add_location(Location(
        name="PumpIn", invariant=invariant,
        flow=ConstantFlow({CYLINDER_HEIGHT: +CYLINDER_SPEED})))
    automaton.initial_location = "PumpOut"
    automaton.add_edge(Edge("PumpOut", "PumpIn",
                            guard=var_le(CYLINDER_HEIGHT, 0.0),
                            emits=[EVT_PUMP_IN], reason="cylinder_bottom"))
    automaton.add_edge(Edge("PumpIn", "PumpOut",
                            guard=var_ge(CYLINDER_HEIGHT, CYLINDER_TOP),
                            emits=[EVT_PUMP_OUT], reason="cylinder_top"))
    automaton.validate()
    return automaton


def build_ventilator(config: PatternConfiguration, *,
                     name: str = VENTILATOR,
                     participation_condition: Predicate = TRUE,
                     lease_enabled: bool = True,
                     initial_height: float = CYLINDER_TOP) -> HybridAutomaton:
    """Build the case study's PTE-safe ventilator (Participant xi_1 + A'_vent).

    The Participant pattern automaton for entity ``xi_1`` is elaborated at
    its "Fall-Back" location with the stand-alone ventilator, so the
    resulting automaton ventilates (pumps the cylinder) exactly while it is
    not leased and holds the cylinder still while paused.

    Args:
        config: Lease-pattern configuration (paper values for the case study).
        name: Automaton name (also used as the wireless entity name).
        participation_condition: ``ParticipationCondition`` of the ventilator.
        lease_enabled: False builds the no-lease baseline variant.
        initial_height: Initial cylinder height.

    Returns:
        The elaborated ventilator automaton.
    """
    pattern = build_participant(config, 1, entity_id="xi1", name=name,
                                participation_condition=participation_condition,
                                lease_enabled=lease_enabled)
    child = build_standalone_ventilator(initial_height=initial_height,
                                        name="standalone_ventilator")
    ventilator = elaborate(pattern, qualified("xi1", FALL_BACK), child, name=name)
    ventilator.metadata["role"] = pattern.metadata["role"]
    ventilator.metadata["entity_index"] = 1
    ventilator.metadata["lease_enabled"] = lease_enabled
    return ventilator


def ventilating_locations(ventilator: HybridAutomaton) -> set[str]:
    """Locations of the (elaborated) ventilator in which it actively ventilates.

    These are the locations contributed by the stand-alone child automaton
    ("PumpOut"/"PumpIn"); everywhere else the ventilator is paused.  The
    patient physiology coupling uses this set to decide whether the patient
    is being ventilated.
    """
    return {name for name in ventilator.location_names
            if name in VENTILATING_LOCATIONS}
