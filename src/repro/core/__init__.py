"""Core contribution: PTE safety rules, Theorem 1 constraints, lease pattern."""

from repro.core.compliance import (ComplianceReport, ElaborationClaim, check_claim,
                                   check_compliance)
from repro.core.configuration import (EntityTiming, PatternConfiguration,
                                      laser_tracheotomy_configuration,
                                      synthesize_configuration)
from repro.core.constraints import (ConditionResult, ConstraintReport, assert_valid,
                                    check_conditions, guaranteed_dwelling_bound,
                                    theoretical_guarantees)
from repro.core.intervals import Interval, IntervalSet, intervals_from_pairs
from repro.core.leases import Lease, LeaseLedger, LeaseOutcome
from repro.core.monitor import (EmbeddingMeasurement, MonitorReport, PTEMonitor,
                                check_trace)
from repro.core.pattern import (EventVocabulary, PatternSystem, Role,
                                build_baseline_system, build_initializer,
                                build_participant, build_pattern_system,
                                build_supervisor, has_lease, strip_lease)
from repro.core.rules import (EmbeddingProperty, PTEOrderSpec, PTEPairRequirement,
                              PTERuleSet, RuleKind, SafetyViolation,
                              laser_tracheotomy_rules, uniform_rules)

__all__ = [
    # rules and monitoring
    "PTEOrderSpec", "PTEPairRequirement", "PTERuleSet", "RuleKind",
    "EmbeddingProperty", "SafetyViolation", "laser_tracheotomy_rules", "uniform_rules",
    "PTEMonitor", "MonitorReport", "EmbeddingMeasurement", "check_trace",
    "Interval", "IntervalSet", "intervals_from_pairs",
    # configuration and Theorem 1
    "EntityTiming", "PatternConfiguration", "laser_tracheotomy_configuration",
    "synthesize_configuration", "check_conditions", "assert_valid", "ConstraintReport",
    "ConditionResult", "guaranteed_dwelling_bound", "theoretical_guarantees",
    # leases
    "Lease", "LeaseLedger", "LeaseOutcome",
    # design pattern
    "Role", "EventVocabulary", "PatternSystem", "build_pattern_system",
    "build_baseline_system", "build_supervisor", "build_initializer",
    "build_participant", "strip_lease", "has_lease",
    # Theorem 2 compliance
    "ElaborationClaim", "ComplianceReport", "check_claim", "check_compliance",
]
