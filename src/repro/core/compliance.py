"""Design-pattern compliance checking (Theorem 2, Section IV-C).

Theorem 2 states: if every member automaton of a concrete hybrid system
elaborates its corresponding design-pattern automaton (Supervisor,
Participant or Initializer) at distinct locations with simple, mutually
independent child automata, and the configuration satisfies Theorem 1's
conditions c1-c7, then the concrete system satisfies the PTE safety rules.

This module checks those premises mechanically for a candidate design:

* the children used at each elaborated location must be *simple*
  (Definition 3) and independent from the pattern automaton and from each
  other (Definition 2);
* re-running the elaboration operator on the pattern automaton with those
  children must reproduce the candidate automaton (same locations, same
  edge structure), which is how we certify "A' elaborates A at v1..vk";
* the shared configuration must pass conditions c1-c7.

The result is a :class:`ComplianceReport`; when it is satisfied, Theorem 2
applies and the candidate design inherits the PTE guarantee.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.core.configuration import PatternConfiguration
from repro.core.constraints import check_conditions
from repro.hybrid.automaton import HybridAutomaton
from repro.hybrid.edges import Edge
from repro.hybrid.elaboration import (are_mutually_independent, assert_independent,
                                      elaborate_parallel, is_simple)
from repro.errors import IndependenceError


def _edge_signature(edge: Edge) -> tuple:
    """Structural fingerprint of an edge used for design comparison."""
    trigger = str(edge.trigger) if edge.trigger is not None else ""
    return (edge.source, edge.target, trigger, tuple(edge.emits), edge.reason)


def _same_structure(expected: HybridAutomaton, actual: HybridAutomaton) -> List[str]:
    """Compare two automata structurally; return a list of differences."""
    problems: List[str] = []
    if expected.location_names != actual.location_names:
        missing = expected.location_names - actual.location_names
        extra = actual.location_names - expected.location_names
        if missing:
            problems.append(f"missing locations: {sorted(missing)}")
        if extra:
            problems.append(f"unexpected locations: {sorted(extra)}")
    expected_risky = expected.risky_locations
    actual_risky = actual.risky_locations
    if expected_risky != actual_risky:
        problems.append(
            f"risky partition differs: expected {sorted(expected_risky)}, "
            f"got {sorted(actual_risky)}")
    expected_edges = Counter(_edge_signature(e) for e in expected.edges)
    actual_edges = Counter(_edge_signature(e) for e in actual.edges)
    if expected_edges != actual_edges:
        missing_edges = expected_edges - actual_edges
        extra_edges = actual_edges - expected_edges
        if missing_edges:
            problems.append(f"missing edges: {sorted(missing_edges)}")
        if extra_edges:
            problems.append(f"unexpected edges: {sorted(extra_edges)}")
    if expected.initial_location != actual.initial_location:
        problems.append(
            f"initial location differs: expected {expected.initial_location!r}, "
            f"got {actual.initial_location!r}")
    return problems


@dataclass(frozen=True)
class ElaborationClaim:
    """One member automaton's claim of elaborating a pattern automaton.

    Attributes:
        pattern: The design-pattern automaton (Supervisor / Participant /
            Initializer instance) being elaborated.
        locations: The distinct pattern locations that were elaborated.
        children: The simple child automata used, one per location.
        candidate: The concrete automaton claimed to be the elaboration.
    """

    pattern: HybridAutomaton
    locations: tuple[str, ...]
    children: tuple[HybridAutomaton, ...]
    candidate: HybridAutomaton

    def __init__(self, pattern: HybridAutomaton, locations: Sequence[str],
                 children: Sequence[HybridAutomaton], candidate: HybridAutomaton):
        object.__setattr__(self, "pattern", pattern)
        object.__setattr__(self, "locations", tuple(locations))
        object.__setattr__(self, "children", tuple(children))
        object.__setattr__(self, "candidate", candidate)


@dataclass
class ComplianceReport:
    """Outcome of checking Theorem 2's premises for one concrete design."""

    problems: List[str] = field(default_factory=list)
    constraint_report: object | None = None

    @property
    def compliant(self) -> bool:
        """True when every premise of Theorem 2 holds."""
        constraints_ok = (self.constraint_report is None
                          or getattr(self.constraint_report, "satisfied", False))
        return not self.problems and constraints_ok

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = ["Theorem 2 compliance: "
                 + ("SATISFIED" if self.compliant else "NOT satisfied")]
        lines.extend(f"  - {problem}" for problem in self.problems)
        if self.constraint_report is not None and not self.constraint_report.satisfied:
            for result in self.constraint_report.violated:
                lines.append(f"  - Theorem 1 {result}")
        return "\n".join(lines)


def check_claim(claim: ElaborationClaim) -> List[str]:
    """Check one member automaton's elaboration claim; return its problems."""
    problems: List[str] = []
    if len(claim.locations) != len(claim.children):
        return ["an elaboration claim needs one child automaton per elaborated location"]
    if len(set(claim.locations)) != len(claim.locations):
        problems.append("elaborated locations must be distinct")
    for location in claim.locations:
        if location not in claim.pattern.locations:
            problems.append(
                f"{location!r} is not a location of pattern automaton "
                f"{claim.pattern.name!r}")
    for child in claim.children:
        simple, why = is_simple(child)
        if not simple:
            problems.append(f"child {child.name!r} is not simple: {why}")
        try:
            assert_independent(claim.pattern, child)
        except IndependenceError as exc:
            problems.append(str(exc))
    if not are_mutually_independent(list(claim.children)):
        problems.append("the child automata are not mutually independent")
    if problems:
        return problems
    if not claim.locations:
        # No elaboration at all: the candidate must be structurally identical
        # to the pattern automaton (this is the common case for Supervisor
        # and Initializer in the case study).
        expected = claim.pattern
    else:
        expected = elaborate_parallel(claim.pattern, list(claim.locations),
                                      list(claim.children))
    differences = _same_structure(expected, claim.candidate)
    problems.extend(
        f"{claim.candidate.name!r} does not elaborate {claim.pattern.name!r}: {difference}"
        for difference in differences)
    return problems


def check_compliance(claims: Sequence[ElaborationClaim],
                     config: PatternConfiguration) -> ComplianceReport:
    """Check every premise of Theorem 2 for a concrete design.

    Args:
        claims: One :class:`ElaborationClaim` per member automaton of the
            concrete design (Supervisor, every Participant, Initializer).
        config: The shared configuration; checked against c1-c7.

    Returns:
        A :class:`ComplianceReport`; its :attr:`ComplianceReport.compliant`
        flag tells whether Theorem 2 applies.
    """
    report = ComplianceReport(constraint_report=check_conditions(config))
    for claim in claims:
        report.problems.extend(check_claim(claim))
    # Cross-claim independence (Theorem 2 condition 4): every child used
    # anywhere in the design must be independent of every other child.
    all_children: List[HybridAutomaton] = []
    for claim in claims:
        all_children.extend(claim.children)
    for i, first in enumerate(all_children):
        for second in all_children[i + 1:]:
            try:
                assert_independent(first, second)
            except IndependenceError as exc:
                report.problems.append(str(exc))
    return report
