"""Configuration parameters of the lease-based design pattern.

The design pattern of Section IV-A is parameterized by a handful of
software (cyber) time constants:

* supervisor: ``T^min_fb,0`` (minimum Fall-Back dwell before accepting a
  new request) and ``T^max_wait`` (per-step coordination timeout);
* initializer ``xi_N``: ``T^max_req,N`` (requesting timeout) plus the lease
  trio ``T^max_enter,N``, ``T^max_run,N``, ``T_exit,N``;
* each participant ``xi_i``: its lease trio ``T^max_enter,i``,
  ``T^max_run,i``, ``T_exit,i``;
* the physical safeguard requirements ``T^min_risky:i->i+1`` and
  ``T^min_safe:i+1->i`` the configuration must protect.

:class:`PatternConfiguration` bundles all of them; Theorem 1's closed-form
constraints over these values are implemented in
:mod:`repro.core.constraints`, and :func:`synthesize_configuration` builds
a feasible configuration from the safeguard requirements alone.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from repro.core.rules import PTEOrderSpec, PTERuleSet
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class EntityTiming:
    """Lease timing of one remote entity (participant or initializer).

    Attributes:
        t_enter_max: ``T^max_enter,i`` -- dwell in the "Entering" location
            before reaching "Risky Core".
        t_run_max: ``T^max_run,i`` -- the lease duration: maximum dwell in
            "Risky Core" before the entity exits on its own.
        t_exit: ``T_exit,i`` -- mandatory dwell in the "Exiting" locations
            on the way back to "Fall-Back".
    """

    t_enter_max: float
    t_run_max: float
    t_exit: float

    @property
    def total(self) -> float:
        """``T^max_enter + T^max_run + T_exit`` -- worst-case round trip."""
        return self.t_enter_max + self.t_run_max + self.t_exit

    @property
    def max_risky_dwell(self) -> float:
        """Worst-case continuous dwell in risky locations of this entity.

        Risky locations are "Risky Core" and "Exiting 1", so the bound is
        ``T^max_run + T_exit``.
        """
        return self.t_run_max + self.t_exit

    def scaled(self, factor: float) -> "EntityTiming":
        """Return a copy with every duration multiplied by ``factor``."""
        return EntityTiming(self.t_enter_max * factor, self.t_run_max * factor,
                            self.t_exit * factor)


@dataclass(frozen=True)
class PatternConfiguration:
    """Full parameterization of the lease design pattern for ``N`` entities.

    Entities are indexed ``1..N`` in PTE order; index ``N`` is the
    Initializer, indices ``1..N-1`` are Participants.  ``entity_timing[i-1]``
    holds entity ``xi_i``'s lease trio.

    Attributes:
        t_fallback_min: ``T^min_fb,0`` of the Supervisor.
        t_wait_max: ``T^max_wait`` of the Supervisor.
        t_req_max: ``T^max_req,N`` of the Initializer.
        entity_timing: Lease timings in PTE order (``xi_1`` first).
        enter_safeguards: ``T^min_risky:i->i+1`` for consecutive pairs.
        exit_safeguards: ``T^min_safe:i+1->i`` for consecutive pairs.
        supervisor_resend_limit: How many times the (reconstructed)
            Supervisor re-sends an unconfirmed cancel/abort before giving up
            and waiting out the lease horizon.  This is an implementation
            parameter of our conservative supervisor reconstruction, not a
            paper constant; it does not affect safety, only liveness.
    """

    t_fallback_min: float
    t_wait_max: float
    t_req_max: float
    entity_timing: tuple[EntityTiming, ...]
    enter_safeguards: tuple[float, ...]
    exit_safeguards: tuple[float, ...]
    supervisor_resend_limit: int = 0

    def __init__(self, *, t_fallback_min: float, t_wait_max: float, t_req_max: float,
                 entity_timing: Sequence[EntityTiming],
                 enter_safeguards: Sequence[float],
                 exit_safeguards: Sequence[float],
                 supervisor_resend_limit: int = 0):
        timings = tuple(entity_timing)
        if len(timings) < 2:
            raise ConfigurationError(
                "the design pattern requires at least two remote entities (N >= 2)")
        if len(enter_safeguards) != len(timings) - 1:
            raise ConfigurationError(
                "need exactly one enter-risky safeguard per consecutive entity pair")
        if len(exit_safeguards) != len(timings) - 1:
            raise ConfigurationError(
                "need exactly one exit-risky safeguard per consecutive entity pair")
        object.__setattr__(self, "t_fallback_min", float(t_fallback_min))
        object.__setattr__(self, "t_wait_max", float(t_wait_max))
        object.__setattr__(self, "t_req_max", float(t_req_max))
        object.__setattr__(self, "entity_timing", timings)
        object.__setattr__(self, "enter_safeguards",
                           tuple(float(v) for v in enter_safeguards))
        object.__setattr__(self, "exit_safeguards",
                           tuple(float(v) for v in exit_safeguards))
        object.__setattr__(self, "supervisor_resend_limit", int(supervisor_resend_limit))

    # -- derived quantities --------------------------------------------------------
    @property
    def n_entities(self) -> int:
        """Number of remote entities ``N``."""
        return len(self.entity_timing)

    def timing(self, index: int) -> EntityTiming:
        """Lease timing of entity ``xi_index`` (1-based, in PTE order)."""
        if not 1 <= index <= self.n_entities:
            raise ConfigurationError(
                f"entity index must lie in 1..{self.n_entities}, got {index}")
        return self.entity_timing[index - 1]

    @property
    def initializer_timing(self) -> EntityTiming:
        """Lease timing of the Initializer ``xi_N``."""
        return self.entity_timing[-1]

    @property
    def t_ls1_max(self) -> float:
        """``T^max_LS1 = T^max_enter,1 + T^max_run,1 + T_exit,1`` (condition c2)."""
        return self.entity_timing[0].total

    @property
    def dwelling_bound(self) -> float:
        """Theorem 1's bound on any entity's continuous risky dwelling.

        Theorem 1 guarantees every entity's continuous risky dwelling is at
        most ``T^max_wait + T^max_LS1``.
        """
        return self.t_wait_max + self.t_ls1_max

    @property
    def round_horizon(self) -> float:
        """Time by which every entity is guaranteed back in Fall-Back.

        Measured from the instant the Supervisor issues
        ``evt xi0->xi1 LeaseReq`` (i.e. from the start of a coordination
        round); equal to the Rule 1 bound ``T^max_wait + T^max_LS1``.
        """
        return self.dwelling_bound

    def initializer_horizon(self) -> float:
        """Worst-case time for the Initializer to return to Fall-Back.

        Measured from the instant the Supervisor approves (or would have
        approved) the Initializer; accounts for the possibility that the
        approval was lost and the Initializer instead times out of its
        "Requesting" location.
        """
        timing = self.initializer_timing
        return max(self.t_req_max, timing.total)

    def enter_safeguard(self, inner_index: int) -> float:
        """``T^min_risky:i->i+1`` for the pair ``(xi_i, xi_{i+1})``."""
        return self.enter_safeguards[inner_index - 1]

    def exit_safeguard(self, inner_index: int) -> float:
        """``T^min_safe:i+1->i`` for the pair ``(xi_i, xi_{i+1})``."""
        return self.exit_safeguards[inner_index - 1]

    # -- conversions -----------------------------------------------------------------
    def to_rule_set(self, entity_names: Sequence[str],
                    dwelling_bound: float | None = None) -> PTERuleSet:
        """Build the PTE rule set this configuration is meant to guarantee.

        Args:
            entity_names: Names of the ``N`` remote entities in PTE order.
            dwelling_bound: Rule 1 bound; defaults to Theorem 1's
                ``T^max_wait + T^max_LS1``.
        """
        if len(entity_names) != self.n_entities:
            raise ConfigurationError(
                f"expected {self.n_entities} entity names, got {len(entity_names)}")
        bound = self.dwelling_bound if dwelling_bound is None else float(dwelling_bound)
        order = PTEOrderSpec(entities=list(entity_names),
                             enter_safeguards=list(self.enter_safeguards),
                             exit_safeguards=list(self.exit_safeguards))
        return PTERuleSet(order=order,
                          dwelling_bounds={name: bound for name in entity_names},
                          default_dwelling_bound=bound)

    def with_timing(self, index: int, timing: EntityTiming) -> "PatternConfiguration":
        """Return a copy with entity ``xi_index``'s timing replaced."""
        timings = list(self.entity_timing)
        timings[index - 1] = timing
        return replace(self, entity_timing=tuple(timings))

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary of every parameter (for reports and EXPERIMENTS.md)."""
        result: Dict[str, object] = {
            "N": self.n_entities,
            "T_fb_min": self.t_fallback_min,
            "T_wait_max": self.t_wait_max,
            "T_req_max": self.t_req_max,
            "T_LS1_max": self.t_ls1_max,
            "dwelling_bound": self.dwelling_bound,
        }
        for i, timing in enumerate(self.entity_timing, start=1):
            result[f"T_enter_max[{i}]"] = timing.t_enter_max
            result[f"T_run_max[{i}]"] = timing.t_run_max
            result[f"T_exit[{i}]"] = timing.t_exit
        for i, value in enumerate(self.enter_safeguards, start=1):
            result[f"T_min_risky[{i}->{i + 1}]"] = value
        for i, value in enumerate(self.exit_safeguards, start=1):
            result[f"T_min_safe[{i + 1}->{i}]"] = value
        return result


def laser_tracheotomy_configuration(*, supervisor_resend_limit: int = 0) -> PatternConfiguration:
    """The exact parameter values used by the paper's case study (Section V).

    ``N = 2``: the ventilator is Participant ``xi_1`` and the laser-scalpel
    is Initializer ``xi_2``.
    """
    return PatternConfiguration(
        t_fallback_min=13.0,
        t_wait_max=3.0,
        t_req_max=5.0,
        entity_timing=(
            EntityTiming(t_enter_max=3.0, t_run_max=35.0, t_exit=6.0),   # ventilator
            EntityTiming(t_enter_max=10.0, t_run_max=20.0, t_exit=1.5),  # laser-scalpel
        ),
        enter_safeguards=(3.0,),
        exit_safeguards=(1.5,),
        supervisor_resend_limit=supervisor_resend_limit,
    )


def synthesize_configuration(*, n_entities: int,
                             enter_safeguards: Sequence[float],
                             exit_safeguards: Sequence[float],
                             t_wait_max: float = 3.0,
                             t_fallback_min: float = 10.0,
                             initializer_timing: EntityTiming | None = None,
                             margin: float = 1.0) -> PatternConfiguration:
    """Constructively synthesize a configuration satisfying Theorem 1.

    The construction works backwards from the Initializer:

    * ``T^max_enter`` grows along the PTE order so that condition c5 holds
      with ``margin`` to spare;
    * ``T_exit,i`` is set above the exit safeguard (condition c7);
    * ``T^max_run,i`` is set from condition c6 so each entity's natural
      lease outlasts its successor's whole round trip plus ``T^max_wait``;
    * ``T^max_req,N`` is placed between ``(N-1) T^max_wait`` and
      ``T^max_LS1`` (condition c3).

    The result is validated against all of c1--c7 before being returned.

    Raises:
        ConfigurationError: If the inputs are inconsistent (wrong number of
            safeguards, non-positive margin or timeout).
    """
    from repro.core.constraints import assert_valid  # local import avoids a cycle

    if n_entities < 2:
        raise ConfigurationError("the design pattern requires N >= 2")
    if len(enter_safeguards) != n_entities - 1 or len(exit_safeguards) != n_entities - 1:
        raise ConfigurationError(
            "need exactly one enter and one exit safeguard per consecutive pair")
    if margin <= 0 or t_wait_max <= 0 or t_fallback_min <= 0:
        raise ConfigurationError("margin, T_wait_max and T_fb_min must be positive")

    initializer = initializer_timing or EntityTiming(
        t_enter_max=float(enter_safeguards[-1]) + 2.0 * margin if enter_safeguards else 2.0 * margin,
        t_run_max=10.0 * margin,
        t_exit=float(exit_safeguards[-1]) + margin if exit_safeguards else margin)

    # Enter times grow along the order (condition c5): start from xi_1 and
    # make sure xi_N's given t_enter_max is still large enough; otherwise
    # scale the chain down to fit under it.
    enters: List[float] = [margin]
    for safeguard in enter_safeguards[:-1]:
        enters.append(enters[-1] + float(safeguard) + margin)
    required_last = enters[-1] + float(enter_safeguards[-1]) + margin
    if initializer.t_enter_max < required_last:
        initializer = EntityTiming(required_last, initializer.t_run_max, initializer.t_exit)

    # Exit dwell above the exit safeguard (condition c7).
    exits: List[float] = [float(g) + margin for g in exit_safeguards]

    # Run times from condition c6, computed from the initializer backwards.
    timings: List[EntityTiming] = [initializer]
    successor = initializer
    for i in range(n_entities - 2, -1, -1):
        run = (t_wait_max + successor.total + margin) - enters[i]
        run = max(run, margin)
        timing = EntityTiming(t_enter_max=enters[i], t_run_max=run, t_exit=exits[i])
        timings.insert(0, timing)
        successor = timing

    t_ls1 = timings[0].total
    t_req = min(max((n_entities - 1) * t_wait_max + margin, initializer.t_run_max / 2.0),
                t_ls1 - margin)
    config = PatternConfiguration(
        t_fallback_min=t_fallback_min,
        t_wait_max=t_wait_max,
        t_req_max=t_req,
        entity_timing=tuple(timings),
        enter_safeguards=tuple(float(v) for v in enter_safeguards),
        exit_safeguards=tuple(float(v) for v in exit_safeguards))
    assert_valid(config)
    return config
