"""Theorem 1's closed-form configuration constraints (conditions c1--c7).

Theorem 1 (Design Pattern Validity) states that a hybrid system following
the Supervisor / Initializer / Participant design pattern satisfies the PTE
safety rules under arbitrary event loss, provided its time constants
satisfy the seven closed-form conditions below (paper Section IV-B):

* **c1** every configuration time constant is positive;
* **c2** ``T^max_LS1 := T^max_enter,1 + T^max_run,1 + T_exit,1 > N * T^max_wait``;
* **c3** ``(N-1) T^max_wait < T^max_req,N < T^max_LS1``;
* **c4** for every ``i``:
  ``(i-1) T^max_wait + T^max_enter,i + T^max_run,i + T_exit,i <= T^max_LS1``;
* **c5** for every ``i < N``:
  ``T^max_enter,i + T^min_risky:i->i+1 < T^max_enter,i+1``;
* **c6** for every ``i < N``:
  ``T^max_enter,i + T^max_run,i >
  T^max_wait + T^max_enter,i+1 + T^max_run,i+1 + T_exit,i+1``;
* **c7** for every ``i < N``: ``T_exit,i > T^min_safe:i+1->i``.

The module checks each condition individually, produces a readable report
and can raise :class:`~repro.errors.ConstraintViolation` for the first
failing condition.  It also exposes the guaranteed dwelling bound
``T^max_wait + T^max_LS1`` of Theorem 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.core.configuration import PatternConfiguration
from repro.errors import ConstraintViolation


@dataclass(frozen=True)
class ConditionResult:
    """Outcome of evaluating one of the conditions c1--c7."""

    name: str
    satisfied: bool
    detail: str

    def __str__(self) -> str:
        mark = "OK " if self.satisfied else "VIOLATED"
        return f"{self.name}: {mark} ({self.detail})"


@dataclass(frozen=True)
class ConstraintReport:
    """Results of evaluating all of Theorem 1's conditions."""

    results: tuple[ConditionResult, ...]

    @property
    def satisfied(self) -> bool:
        """True when every condition holds."""
        return all(result.satisfied for result in self.results)

    @property
    def violated(self) -> List[ConditionResult]:
        """The failing conditions (empty when the configuration is valid)."""
        return [result for result in self.results if not result.satisfied]

    def result(self, name: str) -> ConditionResult:
        """The result of one named condition (e.g. ``"c5"``)."""
        for candidate in self.results:
            if candidate.name == name:
                return candidate
        raise KeyError(name)

    def summary(self) -> str:
        """Multi-line human-readable report."""
        return "\n".join(str(result) for result in self.results)


def condition_c1(config: PatternConfiguration) -> ConditionResult:
    """c1: every configuration time constant is positive."""
    values = {
        "T_wait_max": config.t_wait_max,
        "T_fb_min": config.t_fallback_min,
        "T_LS1_max": config.t_ls1_max,
        "T_req_max": config.t_req_max,
    }
    for i, timing in enumerate(config.entity_timing, start=1):
        values[f"T_enter_max[{i}]"] = timing.t_enter_max
        values[f"T_run_max[{i}]"] = timing.t_run_max
        values[f"T_exit[{i}]"] = timing.t_exit
    offenders = [name for name, value in values.items() if value <= 0]
    if offenders:
        return ConditionResult("c1", False,
                               f"non-positive constants: {', '.join(offenders)}")
    return ConditionResult("c1", True, "all configuration time constants are positive")


def condition_c2(config: PatternConfiguration) -> ConditionResult:
    """c2: ``T^max_LS1 > N * T^max_wait``."""
    lhs = config.t_ls1_max
    rhs = config.n_entities * config.t_wait_max
    detail = f"T_LS1_max={lhs:g} vs N*T_wait_max={rhs:g}"
    return ConditionResult("c2", lhs > rhs, detail)


def condition_c3(config: PatternConfiguration) -> ConditionResult:
    """c3: ``(N-1) T^max_wait < T^max_req,N < T^max_LS1``."""
    lower = (config.n_entities - 1) * config.t_wait_max
    upper = config.t_ls1_max
    value = config.t_req_max
    detail = f"(N-1)*T_wait_max={lower:g} < T_req_max={value:g} < T_LS1_max={upper:g}"
    return ConditionResult("c3", lower < value < upper, detail)


def condition_c4(config: PatternConfiguration) -> ConditionResult:
    """c4: staggered round trips all fit inside ``T^max_LS1``."""
    t_ls1 = config.t_ls1_max
    for i in range(1, config.n_entities + 1):
        timing = config.timing(i)
        lhs = (i - 1) * config.t_wait_max + timing.total
        if lhs > t_ls1 + 1e-12:
            return ConditionResult(
                "c4", False,
                f"entity {i}: (i-1)*T_wait_max + round trip = {lhs:g} exceeds "
                f"T_LS1_max = {t_ls1:g}")
    return ConditionResult("c4", True,
                           f"every staggered round trip fits in T_LS1_max = {t_ls1:g}")


def condition_c5(config: PatternConfiguration) -> ConditionResult:
    """c5: enter-phase dwell grows fast enough to create the enter safeguard."""
    for i in range(1, config.n_entities):
        lhs = config.timing(i).t_enter_max + config.enter_safeguard(i)
        rhs = config.timing(i + 1).t_enter_max
        if not lhs < rhs:
            return ConditionResult(
                "c5", False,
                f"pair ({i},{i + 1}): T_enter_max[{i}] + T_min_risky = {lhs:g} "
                f"is not < T_enter_max[{i + 1}] = {rhs:g}")
    return ConditionResult("c5", True,
                           "enter-phase dwell increases by more than each enter safeguard")


def condition_c6(config: PatternConfiguration) -> ConditionResult:
    """c6: each entity's natural lease outlasts its successor's whole round."""
    for i in range(1, config.n_entities):
        inner = config.timing(i)
        outer = config.timing(i + 1)
        lhs = inner.t_enter_max + inner.t_run_max
        rhs = config.t_wait_max + outer.total
        if not lhs > rhs:
            return ConditionResult(
                "c6", False,
                f"pair ({i},{i + 1}): T_enter_max[{i}] + T_run_max[{i}] = {lhs:g} "
                f"is not > T_wait_max + round trip of {i + 1} = {rhs:g}")
    return ConditionResult("c6", True,
                           "each lease outlasts the successor's worst-case round trip")


def condition_c7(config: PatternConfiguration) -> ConditionResult:
    """c7: the exit dwell of each inner entity exceeds the exit safeguard."""
    for i in range(1, config.n_entities):
        lhs = config.timing(i).t_exit
        rhs = config.exit_safeguard(i)
        if not lhs > rhs:
            return ConditionResult(
                "c7", False,
                f"pair ({i},{i + 1}): T_exit[{i}] = {lhs:g} is not > "
                f"T_min_safe = {rhs:g}")
    return ConditionResult("c7", True,
                           "every exit dwell exceeds the corresponding exit safeguard")


_CONDITIONS: tuple[Callable[[PatternConfiguration], ConditionResult], ...] = (
    condition_c1, condition_c2, condition_c3, condition_c4,
    condition_c5, condition_c6, condition_c7,
)


def check_conditions(config: PatternConfiguration) -> ConstraintReport:
    """Evaluate all of Theorem 1's conditions c1--c7 on ``config``."""
    return ConstraintReport(tuple(check(config) for check in _CONDITIONS))


def assert_valid(config: PatternConfiguration) -> None:
    """Raise :class:`ConstraintViolation` for the first failing condition."""
    report = check_conditions(config)
    for result in report.results:
        if not result.satisfied:
            raise ConstraintViolation(result.name, result.detail)


def guaranteed_dwelling_bound(config: PatternConfiguration) -> float:
    """Theorem 1's bound on continuous risky dwelling: ``T^max_wait + T^max_LS1``."""
    return config.dwelling_bound


def theoretical_guarantees(config: PatternConfiguration) -> dict[str, float]:
    """Closed-form guarantees implied by Theorem 1 for a valid configuration.

    Returns a mapping with the Rule 1 dwelling bound and, for each
    consecutive pair, the guaranteed enter and exit safeguard margins
    implied by conditions c5 and c7 (useful for comparing against margins
    measured from traces).
    """
    guarantees: dict[str, float] = {"dwelling_bound": config.dwelling_bound}
    for i in range(1, config.n_entities):
        enter_margin = config.timing(i + 1).t_enter_max - config.timing(i).t_enter_max
        exit_margin = config.timing(i).t_exit
        guarantees[f"enter_margin[{i}->{i + 1}]"] = enter_margin
        guarantees[f"exit_margin[{i + 1}->{i}]"] = exit_margin
    return guarantees
