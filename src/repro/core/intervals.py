"""Interval algebra for dwelling-time analysis.

The PTE safety rules are statements about the time intervals during which
each entity dwells in its risky locations.  This module provides the small
interval toolkit the monitor needs: normalized unions of closed intervals,
membership and coverage queries, and measurement of continuous dwelling
durations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence

from repro.util.timebase import EPSILON


@dataclass(frozen=True)
class Interval:
    """A closed time interval ``[start, end]`` (seconds)."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start - EPSILON:
            raise ValueError(f"interval end {self.end} precedes start {self.start}")

    @property
    def duration(self) -> float:
        """Length of the interval."""
        return max(0.0, self.end - self.start)

    def contains(self, time: float, eps: float = EPSILON) -> bool:
        """True when ``time`` lies inside the interval (with tolerance)."""
        return self.start - eps <= time <= self.end + eps

    def covers(self, other: "Interval", eps: float = EPSILON) -> bool:
        """True when this interval fully covers ``other`` (with tolerance)."""
        return self.start - eps <= other.start and other.end <= self.end + eps

    def overlaps(self, other: "Interval", eps: float = EPSILON) -> bool:
        """True when the two intervals share at least one point."""
        return self.start - eps <= other.end and other.start - eps <= self.end

    def intersection(self, other: "Interval") -> "Interval | None":
        """The overlapping part of two intervals, or ``None`` when disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if end < start - EPSILON:
            return None
        return Interval(start, min(max(start, end), end) if end >= start else start)

    def shifted(self, delta: float) -> "Interval":
        """Return the interval translated by ``delta`` seconds."""
        return Interval(self.start + delta, self.end + delta)

    def __repr__(self) -> str:
        return f"[{self.start:g}, {self.end:g}]"


class IntervalSet:
    """A normalized (sorted, disjoint) union of closed intervals."""

    def __init__(self, intervals: Iterable[Interval | tuple[float, float]] = ()):
        converted = [iv if isinstance(iv, Interval) else Interval(*iv)
                     for iv in intervals]
        self._intervals: List[Interval] = self._normalize(converted)

    @staticmethod
    def _normalize(intervals: Sequence[Interval]) -> List[Interval]:
        if not intervals:
            return []
        ordered = sorted(intervals, key=lambda iv: iv.start)
        merged: List[Interval] = [ordered[0]]
        for interval in ordered[1:]:
            last = merged[-1]
            if interval.start <= last.end + EPSILON:
                merged[-1] = Interval(last.start, max(last.end, interval.end))
            else:
                merged.append(interval)
        return merged

    # -- container protocol ------------------------------------------------------
    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __repr__(self) -> str:
        return "IntervalSet(" + ", ".join(repr(iv) for iv in self._intervals) + ")"

    # -- queries ------------------------------------------------------------------
    @property
    def intervals(self) -> List[Interval]:
        """The normalized list of member intervals."""
        return list(self._intervals)

    @property
    def total_duration(self) -> float:
        """Sum of the member interval durations."""
        return sum(iv.duration for iv in self._intervals)

    @property
    def max_duration(self) -> float:
        """Duration of the longest member interval (0 when empty).

        This is exactly the quantity bounded by PTE Safety Rule 1: the
        maximum *continuous* dwelling time.
        """
        return max((iv.duration for iv in self._intervals), default=0.0)

    def contains(self, time: float, eps: float = EPSILON) -> bool:
        """True when ``time`` lies inside some member interval."""
        return any(iv.contains(time, eps) for iv in self._intervals)

    def covers(self, interval: Interval, eps: float = EPSILON) -> bool:
        """True when a single member interval covers the whole ``interval``.

        Coverage by a union of abutting members also counts because the set
        is normalized (abutting members are merged at construction).
        """
        return any(member.covers(interval, eps) for member in self._intervals)

    def covering_interval(self, time: float, eps: float = EPSILON) -> Interval | None:
        """The member interval containing ``time``, when one exists."""
        for member in self._intervals:
            if member.contains(time, eps):
                return member
        return None

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        """The pointwise intersection of two interval sets."""
        result: List[Interval] = []
        for a in self._intervals:
            for b in other._intervals:
                overlap = a.intersection(b)
                if overlap is not None and overlap.duration > EPSILON:
                    result.append(overlap)
        return IntervalSet(result)

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """The union of two interval sets."""
        return IntervalSet(self._intervals + other._intervals)

    def complement_within(self, horizon: Interval) -> "IntervalSet":
        """The portion of ``horizon`` not covered by this set."""
        gaps: List[Interval] = []
        cursor = horizon.start
        for member in self._intervals:
            if member.end < horizon.start or member.start > horizon.end:
                continue
            clipped_start = max(member.start, horizon.start)
            if clipped_start > cursor + EPSILON:
                gaps.append(Interval(cursor, clipped_start))
            cursor = max(cursor, min(member.end, horizon.end))
        if cursor < horizon.end - EPSILON:
            gaps.append(Interval(cursor, horizon.end))
        return IntervalSet(gaps)


def intervals_from_pairs(pairs: Iterable[tuple[float, float]]) -> IntervalSet:
    """Build an :class:`IntervalSet` from plain ``(start, end)`` tuples."""
    return IntervalSet(Interval(start, end) for start, end in pairs)
