"""Lease bookkeeping.

The lease design philosophy (paper Section IV-A, after Gray & Cheriton):
every dwelling of an entity in its risky locations happens under a *lease*,
a contract with a start time and an expiration time; if the supervisor has
not cancelled or aborted the lease by its expiration, the entity exits its
risky locations on its own.

Inside the hybrid automata, leases are realized by clock guards
(``c >= T^max_run``), so the automata need no extra machinery.  This module
provides an explicit :class:`Lease` / :class:`LeaseLedger` representation
that the emulation harness reconstructs from traces: it is what lets the
Table I benchmark count how often a lease expiration actually rescued the
system (the ``evtToStop`` column) and audit that no lease ever overran its
contract.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List

from repro.util.timebase import EPSILON


class LeaseOutcome(enum.Enum):
    """How a lease ended."""

    ACTIVE = "active"               # still running at the end of the trace
    COMPLETED = "completed"         # cancelled or released through messages
    EXPIRED = "expired"             # the lease timer fired (auto-reset)
    ABORTED = "aborted"             # supervisor abort (ApprovalCondition)


@dataclass(frozen=True)
class Lease:
    """One lease: a bounded permission to dwell in risky locations.

    Attributes:
        holder: Entity holding the lease.
        granted_at: Time the entity entered its risky locations.
        duration: Contracted maximum risky dwell (``T^max_run + T_exit``
            when measured over the full risky partition).
        outcome: How the lease ended.
        released_at: Time the entity actually left its risky locations.
    """

    holder: str
    granted_at: float
    duration: float
    outcome: LeaseOutcome = LeaseOutcome.ACTIVE
    released_at: float | None = None

    @property
    def expires_at(self) -> float:
        """Contractual expiration instant."""
        return self.granted_at + self.duration

    @property
    def held_for(self) -> float | None:
        """Actual risky dwell, when the lease has ended."""
        if self.released_at is None:
            return None
        return self.released_at - self.granted_at

    @property
    def overran(self) -> bool:
        """True when the entity stayed risky beyond the contract.

        A correct lease-based design never overruns; the no-lease baseline
        of Table I does.
        """
        if self.released_at is None:
            return False
        return self.released_at > self.expires_at + EPSILON

    def closed(self, outcome: LeaseOutcome, released_at: float) -> "Lease":
        """Return a finished copy of this lease."""
        return replace(self, outcome=outcome, released_at=released_at)


@dataclass
class LeaseLedger:
    """A per-entity record of every lease taken during one trial."""

    leases: Dict[str, List[Lease]] = field(default_factory=dict)

    def open(self, holder: str, granted_at: float, duration: float) -> Lease:
        """Record the start of a new lease for ``holder``."""
        lease = Lease(holder=holder, granted_at=granted_at, duration=duration)
        self.leases.setdefault(holder, []).append(lease)
        return lease

    def close(self, holder: str, outcome: LeaseOutcome, released_at: float) -> Lease:
        """Close the most recent open lease of ``holder``."""
        history = self.leases.get(holder, [])
        for index in range(len(history) - 1, -1, -1):
            if history[index].outcome is LeaseOutcome.ACTIVE:
                history[index] = history[index].closed(outcome, released_at)
                return history[index]
        raise ValueError(f"entity {holder!r} has no open lease to close")

    def of(self, holder: str) -> List[Lease]:
        """Every lease taken by ``holder`` (chronological)."""
        return list(self.leases.get(holder, []))

    def all_leases(self) -> List[Lease]:
        """Every lease across all entities (chronological per entity)."""
        return [lease for history in self.leases.values() for lease in history]

    def count(self, holder: str, outcome: LeaseOutcome) -> int:
        """Number of ``holder``'s leases that ended with ``outcome``."""
        return sum(1 for lease in self.of(holder) if lease.outcome is outcome)

    def expirations(self, holder: str | None = None) -> int:
        """Number of leases that ended by expiring (the ``evtToStop`` events)."""
        leases = self.all_leases() if holder is None else self.of(holder)
        return sum(1 for lease in leases if lease.outcome is LeaseOutcome.EXPIRED)

    def overruns(self, holder: str | None = None) -> int:
        """Number of leases whose holder overstayed the contract."""
        leases = self.all_leases() if holder is None else self.of(holder)
        return sum(1 for lease in leases if lease.overran)
