"""Trace monitor for the PTE safety rules.

Given a recorded :class:`~repro.hybrid.trace.Trace` and a
:class:`~repro.core.rules.PTERuleSet`, the monitor decides whether the
execution satisfied both PTE safety rules, reports every violation with the
measured and required quantities, and extracts the embedding measurements
(the ``t1``--``t4`` quantities of the paper's Fig. 1) used by the timeline
benchmark.

The checks are the literal quantified statements of Section III translated
to interval algebra:

* Rule 1: every maximal risky-dwelling interval of entity ``xi_i`` must be
  no longer than its bound.
* Rule 2 / p2: every risky interval of the outer entity must be covered by
  the risky intervals of the inner entity.
* Rule 2 / p1: the coverage must extend ``T^min_risky`` *before* the outer
  entity's risky interval (enter-risky safeguard).
* Rule 2 / p3: the coverage must extend ``T^min_safe`` *after* the outer
  entity's risky interval (exit-risky safeguard).

Safeguard windows are clipped to the observed horizon so that an execution
cut off by the end of a trial is not blamed for what it could not show.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.core.intervals import Interval, IntervalSet
from repro.core.rules import (EmbeddingProperty, PTERuleSet, RuleKind, SafetyViolation)
from repro.errors import SafetyViolationError
from repro.hybrid.trace import Trace
from repro.util.timebase import EPSILON


@dataclass(frozen=True)
class EmbeddingMeasurement:
    """Measured safeguard margins around one outer-entity risky episode.

    These are the concrete ``t1`` (enter margin) and ``t2`` (exit margin)
    quantities of the paper's Fig. 1, measured from a trace.

    Attributes:
        inner: Inner (lower-ordered) entity name.
        outer: Outer (higher-ordered) entity name.
        outer_interval: The outer entity's risky interval being measured.
        enter_margin: How long the inner entity had already been risky when
            the outer entity entered risky (``None`` when containment
            already fails at the entry instant).
        exit_margin: How long the inner entity remained risky after the
            outer entity returned to safe (``None`` when containment fails
            at the exit instant, or not measurable because the trace ended).
        contained: Whether p2 containment held for the whole interval.
    """

    inner: str
    outer: str
    outer_interval: Interval
    enter_margin: float | None
    exit_margin: float | None
    contained: bool


@dataclass
class MonitorReport:
    """Outcome of checking one trace against a PTE rule set.

    Attributes:
        violations: Every individual violation found.
        max_dwell: Per-entity longest continuous risky dwelling observed.
        risky_episodes: Per-entity number of maximal risky intervals.
        measurements: Embedding measurements for every consecutive pair.
        horizon: Duration of the checked trace.
    """

    violations: List[SafetyViolation] = field(default_factory=list)
    max_dwell: Dict[str, float] = field(default_factory=dict)
    risky_episodes: Dict[str, int] = field(default_factory=dict)
    measurements: List[EmbeddingMeasurement] = field(default_factory=list)
    horizon: float = 0.0

    @property
    def safe(self) -> bool:
        """True when no PTE safety rule was violated."""
        return not self.violations

    @property
    def failure_count(self) -> int:
        """Number of distinct failure episodes (Table I's "# of Failures").

        Several violations produced by the same risky episode (same entity,
        same episode start time) count as one failure, mirroring how the
        paper counts one failure per offending laser emission / ventilator
        pause rather than one per violated sub-property.
        """
        episodes = {(v.entity, round(v.time, 6)) for v in self.violations}
        return len(episodes)

    def violations_of(self, rule: RuleKind) -> List[SafetyViolation]:
        """Violations restricted to one of the two PTE rules."""
        return [v for v in self.violations if v.rule is rule]

    def min_enter_margin(self) -> float | None:
        """Smallest observed enter-risky margin across all measurements."""
        margins = [m.enter_margin for m in self.measurements if m.enter_margin is not None]
        return min(margins, default=None)

    def min_exit_margin(self) -> float | None:
        """Smallest observed exit-risky margin across all measurements."""
        margins = [m.exit_margin for m in self.measurements if m.exit_margin is not None]
        return min(margins, default=None)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        verdict = "SAFE" if self.safe else f"{len(self.violations)} violation(s)"
        dwell = ", ".join(f"{k}:{v:.1f}s" for k, v in sorted(self.max_dwell.items()))
        return f"PTE check over {self.horizon:.0f}s: {verdict}; max risky dwell {dwell}"


class PTEMonitor:
    """Checks recorded traces against a PTE rule set.

    Args:
        rules: The PTE safety-rule set to enforce.
        automaton_of: Optional mapping from rule-set entity names to trace
            automaton names when they differ (defaults to the identity).
    """

    def __init__(self, rules: PTERuleSet,
                 automaton_of: Mapping[str, str] | None = None):
        self.rules = rules
        self._automaton_of = dict(automaton_of or {})

    def _trace_name(self, entity: str) -> str:
        return self._automaton_of.get(entity, entity)

    def _risky_set(self, trace: Trace, entity: str) -> IntervalSet:
        pairs = trace.risky_intervals(self._trace_name(entity))
        return IntervalSet(Interval(start, end) for start, end in pairs)

    def monitored_entities(self) -> set[str]:
        """Every entity whose risky intervals the rule set needs."""
        entities = set(self.rules.entities)
        for pair in self.rules.order.consecutive_pairs():
            entities.add(pair.inner)
            entities.add(pair.outer)
        return entities

    # -- rule 1 -------------------------------------------------------------------
    def _check_bounded_dwelling(self, risky_sets: Mapping[str, IntervalSet],
                                report: MonitorReport) -> None:
        for entity in self.rules.entities:
            risky = risky_sets[entity]
            report.max_dwell[entity] = risky.max_duration
            report.risky_episodes[entity] = len(risky)
            bound = self.rules.dwelling_bound(entity)
            for interval in risky:
                if interval.duration > bound + EPSILON:
                    report.violations.append(SafetyViolation(
                        rule=RuleKind.BOUNDED_DWELLING,
                        entity=entity,
                        time=interval.start,
                        measured=interval.duration,
                        required=bound,
                        detail=(f"continuous risky dwelling of {interval.duration:.3f}s "
                                f"exceeds the bound of {bound:.3f}s")))

    # -- rule 2 -------------------------------------------------------------------
    def _check_pair(self, risky_sets: Mapping[str, IntervalSet],
                    inner: str, outer: str,
                    enter_safeguard: float, exit_safeguard: float,
                    horizon: float, report: MonitorReport) -> None:
        inner_risky = risky_sets[inner]
        outer_risky = risky_sets[outer]
        for outer_interval in outer_risky:
            contained = inner_risky.covers(outer_interval)
            covering = inner_risky.covering_interval(outer_interval.start)
            enter_margin: float | None = None
            exit_margin: float | None = None
            if covering is not None:
                enter_margin = outer_interval.start - covering.start
            end_cover = inner_risky.covering_interval(outer_interval.end)
            if end_cover is not None:
                exit_margin = end_cover.end - outer_interval.end
                if outer_interval.end + exit_safeguard > horizon - EPSILON:
                    # The trace ended before the exit safeguard window closed;
                    # report the observable margin but do not judge it.
                    exit_margin_observable = False
                else:
                    exit_margin_observable = True
            else:
                exit_margin_observable = outer_interval.end + EPSILON < horizon
            report.measurements.append(EmbeddingMeasurement(
                inner=inner, outer=outer, outer_interval=outer_interval,
                enter_margin=enter_margin, exit_margin=exit_margin,
                contained=contained))

            # p2 -- containment
            if not contained:
                report.violations.append(SafetyViolation(
                    rule=RuleKind.TEMPORAL_EMBEDDING,
                    property=EmbeddingProperty.P2_CONTAINMENT,
                    entity=outer, counterpart=inner,
                    time=outer_interval.start,
                    detail=(f"{outer} dwelled in risky locations during "
                            f"{outer_interval} without {inner} being risky the whole time")))
                continue

            # p1 -- enter-risky safeguard (clipped at the start of the trace)
            required_start = max(0.0, outer_interval.start - enter_safeguard)
            enter_window = Interval(required_start, outer_interval.start)
            if enter_window.duration > EPSILON and not inner_risky.covers(enter_window):
                report.violations.append(SafetyViolation(
                    rule=RuleKind.TEMPORAL_EMBEDDING,
                    property=EmbeddingProperty.P1_ENTER_SAFEGUARD,
                    entity=outer, counterpart=inner,
                    time=outer_interval.start,
                    measured=enter_margin,
                    required=enter_safeguard,
                    detail=(f"{outer} entered risky at t={outer_interval.start:.3f}s only "
                            f"{0.0 if enter_margin is None else enter_margin:.3f}s after "
                            f"{inner}; required enter safeguard is {enter_safeguard:.3f}s")))

            # p3 -- exit-risky safeguard (clipped at the end of the trace).
            # The violation is stamped with the episode's start time so that
            # several violated sub-properties of one risky episode aggregate
            # into a single failure (Table I counts failures per episode).
            required_end = min(horizon, outer_interval.end + exit_safeguard)
            exit_window = Interval(outer_interval.end, required_end)
            if (exit_margin_observable and exit_window.duration > EPSILON
                    and not inner_risky.covers(exit_window)):
                report.violations.append(SafetyViolation(
                    rule=RuleKind.TEMPORAL_EMBEDDING,
                    property=EmbeddingProperty.P3_EXIT_SAFEGUARD,
                    entity=outer, counterpart=inner,
                    time=outer_interval.start,
                    measured=exit_margin,
                    required=exit_safeguard,
                    detail=(f"{inner} left risky only "
                            f"{0.0 if exit_margin is None else exit_margin:.3f}s after "
                            f"{outer} at t={outer_interval.end:.3f}s; required exit "
                            f"safeguard is {exit_safeguard:.3f}s")))

    # -- public API -----------------------------------------------------------------
    def check(self, trace: Trace, *, strict: bool = False) -> MonitorReport:
        """Check one trace; optionally raise on the first violation.

        Extracts each monitored entity's risky intervals from the trace and
        delegates to :meth:`check_risky_intervals`, so both the post-hoc
        and the streaming path run the identical rule logic.

        Args:
            trace: The recorded execution to check.
            strict: When True, raise :class:`SafetyViolationError` if any
                violation is found (after the full report is assembled).

        Returns:
            The complete :class:`MonitorReport`.
        """
        risky_sets = {entity: self._risky_set(trace, entity)
                      for entity in self.monitored_entities()}
        return self.check_risky_intervals(risky_sets, trace.end_time,
                                          strict=strict)

    def check_risky_intervals(self, risky_sets: Mapping[str, IntervalSet],
                              horizon: float, *,
                              strict: bool = False) -> MonitorReport:
        """Check pre-extracted risky intervals (the trace-free entry point).

        Streaming observers maintain each entity's maximal risky-dwell
        intervals online and call this at the end of a run; given the same
        interval endpoints it produces a report identical to
        :meth:`check` over the full trace.

        Args:
            risky_sets: Risky :class:`IntervalSet` per monitored entity
                (every name in :meth:`monitored_entities` must be present).
            horizon: Duration of the observed execution.
            strict: When True, raise :class:`SafetyViolationError` if any
                violation is found (after the full report is assembled).
        """
        report = MonitorReport(horizon=horizon)
        self._check_bounded_dwelling(risky_sets, report)
        for pair in self.rules.order.consecutive_pairs():
            self._check_pair(risky_sets, pair.inner, pair.outer,
                             pair.enter_safeguard, pair.exit_safeguard,
                             horizon, report)
        if strict and report.violations:
            raise SafetyViolationError(
                f"{len(report.violations)} PTE violation(s); first: {report.violations[0]}")
        return report


def check_trace(trace: Trace, rules: PTERuleSet,
                automaton_of: Mapping[str, str] | None = None,
                *, strict: bool = False) -> MonitorReport:
    """Convenience wrapper: build a :class:`PTEMonitor` and check one trace."""
    return PTEMonitor(rules, automaton_of).check(trace, strict=strict)
