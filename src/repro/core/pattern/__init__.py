"""The lease-based design pattern: Supervisor, Initializer, Participants."""

from repro.core.pattern import events
from repro.core.pattern.baseline import build_baseline_system, has_lease, strip_lease
from repro.core.pattern.builder import (PatternSystem, build_pattern_system,
                                        default_entity_names)
from repro.core.pattern.events import EventVocabulary
from repro.core.pattern.initializer import build_initializer
from repro.core.pattern.participant import build_participant
from repro.core.pattern.roles import (ENTERING, EXITING_1, EXITING_2, FALL_BACK, L0,
                                      REMOTE_RISKY_BASES, REMOTE_SAFE_BASES, REQUESTING,
                                      RISKY_CORE, SETTLE, Role, abort_location, base_name,
                                      cancel_location, lease_location, qualified)
from repro.core.pattern.supervisor import build_supervisor, supervisor_location_names

__all__ = [
    "events",
    "EventVocabulary",
    "Role",
    "build_supervisor",
    "build_initializer",
    "build_participant",
    "build_pattern_system",
    "build_baseline_system",
    "strip_lease",
    "has_lease",
    "PatternSystem",
    "default_entity_names",
    "supervisor_location_names",
    "qualified",
    "base_name",
    "lease_location",
    "cancel_location",
    "abort_location",
    "FALL_BACK", "REQUESTING", "L0", "ENTERING", "RISKY_CORE",
    "EXITING_1", "EXITING_2", "SETTLE",
    "REMOTE_RISKY_BASES", "REMOTE_SAFE_BASES",
]
