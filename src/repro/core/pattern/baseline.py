"""The no-lease baseline used by Table I's "without Lease" rows.

Section V compares the lease-based design against trials with the same
configuration "but without using the leasing mechanism": the ventilator
does not set a lease timer while pausing and the laser-scalpel does not set
one while emitting.  Concretely this removes the lease-expiry edge out of
"Risky Core" in every remote entity, so an entity stuck without incoming
cancel/abort events stays in its risky locations indefinitely -- which is
exactly how the failures of Table I arise when the wireless channel drops
those events.

Two entry points are provided:

* :func:`build_baseline_system` -- assemble a whole pattern system with
  leases disabled (the normal way to run the baseline);
* :func:`strip_lease` -- remove the lease-expiry edge from an existing
  remote-entity automaton, for tests that want to surgically compare the
  two variants of a single automaton.
"""

from __future__ import annotations

from repro.core.configuration import PatternConfiguration
from repro.core.pattern.builder import PatternSystem, build_pattern_system
from repro.hybrid.automaton import HybridAutomaton


def build_baseline_system(config: PatternConfiguration, **kwargs) -> PatternSystem:
    """Assemble the design pattern with every remote lease disabled.

    Accepts the same keyword arguments as
    :func:`~repro.core.pattern.builder.build_pattern_system` (except
    ``lease_enabled``, which is forced to False).
    """
    kwargs.pop("lease_enabled", None)
    return build_pattern_system(config, lease_enabled=False, **kwargs)


def strip_lease(automaton: HybridAutomaton) -> HybridAutomaton:
    """Return a copy of a remote-entity automaton without its lease-expiry edge.

    The copy is identical except that every edge tagged with the
    ``"lease_expiry"`` reason is removed and the metadata records
    ``lease_enabled = False``.
    """
    clone = automaton.copy()
    clone.edges = [edge for edge in clone.edges if edge.reason != "lease_expiry"]
    clone.metadata["lease_enabled"] = False
    return clone


def has_lease(automaton: HybridAutomaton) -> bool:
    """True when the automaton still contains a lease-expiry edge."""
    return any(edge.reason == "lease_expiry" for edge in automaton.edges)
