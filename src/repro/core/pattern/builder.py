"""Assembly of a complete lease-pattern hybrid system.

:func:`build_pattern_system` instantiates one Supervisor, ``N-1``
Participants and one Initializer from a
:class:`~repro.core.configuration.PatternConfiguration`, wires them into a
:class:`~repro.hybrid.system.HybridSystem` and returns a
:class:`PatternSystem` handle bundling everything an experiment needs:
the hybrid system, the per-role automata, the event vocabulary, the PTE
rule set the configuration is meant to guarantee, and a ready-made sink
wireless network description.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from repro.core.configuration import PatternConfiguration
from repro.core.constraints import check_conditions
from repro.core.pattern.events import EventVocabulary
from repro.core.pattern.initializer import build_initializer
from repro.core.pattern.participant import build_participant
from repro.core.pattern.roles import Role
from repro.core.pattern.supervisor import build_supervisor
from repro.core.rules import PTERuleSet
from repro.errors import ConfigurationError
from repro.hybrid.automaton import HybridAutomaton
from repro.hybrid.expressions import Predicate, TRUE
from repro.hybrid.system import HybridSystem
from repro.wireless.channel import Channel
from repro.wireless.network import SinkWirelessNetwork


@dataclass
class PatternSystem:
    """A fully assembled lease-pattern wireless CPS.

    Attributes:
        system: The hybrid system containing every member automaton.
        supervisor: The Supervisor automaton (``xi_0``).
        participants: Participant automata in PTE order (``xi_1 .. xi_{N-1}``).
        initializer: The Initializer automaton (``xi_N``).
        config: The configuration the automata were built from.
        vocabulary: Event roots of this pattern instance.
        entity_names: Remote entity names in PTE order (``xi_1`` first).
        rules: The PTE rule set this design is meant to guarantee.
        lease_enabled: False for the no-lease baseline variant.
    """

    system: HybridSystem
    supervisor: HybridAutomaton
    participants: List[HybridAutomaton]
    initializer: HybridAutomaton
    config: PatternConfiguration
    vocabulary: EventVocabulary
    entity_names: List[str]
    rules: PTERuleSet
    lease_enabled: bool = True
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def supervisor_name(self) -> str:
        """Automaton / entity name of the Supervisor."""
        return self.supervisor.name

    @property
    def remote_names(self) -> List[str]:
        """Automaton names of every remote entity in PTE order."""
        return list(self.entity_names)

    @property
    def initializer_name(self) -> str:
        """Automaton name of the Initializer."""
        return self.initializer.name

    def automaton_for(self, index: int) -> HybridAutomaton:
        """The remote entity automaton ``xi_index`` (1-based, PTE order)."""
        if not 1 <= index <= self.config.n_entities:
            raise ConfigurationError(
                f"entity index must lie in 1..{self.config.n_entities}, got {index}")
        if index == self.config.n_entities:
            return self.initializer
        return self.participants[index - 1]

    def build_network(self, default_channel: Channel | None = None,
                      uplink_channels: Mapping[str, Channel] | None = None,
                      downlink_channels: Mapping[str, Channel] | None = None) -> SinkWirelessNetwork:
        """Create the sink wireless network matching this system's topology."""
        return SinkWirelessNetwork(
            base_station=self.supervisor_name,
            remote_entities=self.remote_names,
            default_channel=default_channel,
            uplink_channels=uplink_channels,
            downlink_channels=downlink_channels)

    def constraint_report(self):
        """Theorem 1 constraint report for the underlying configuration."""
        return check_conditions(self.config)


def default_entity_names(n_entities: int) -> List[str]:
    """Canonical entity names ``["xi1", ..., "xiN"]``."""
    return [f"xi{i}" for i in range(1, n_entities + 1)]


def build_pattern_system(config: PatternConfiguration, *,
                         entity_names: Sequence[str] | None = None,
                         supervisor_name: str = "xi0",
                         approval_condition: Predicate = TRUE,
                         supervisor_variables: Mapping[str, float] | None = None,
                         participation_conditions: Mapping[int, Predicate] | None = None,
                         lease_enabled: bool = True,
                         require_valid_configuration: bool = False,
                         system_name: str = "lease-pattern-cps") -> PatternSystem:
    """Instantiate the full design pattern for ``config``.

    Args:
        config: Lease-pattern configuration (``N`` entities).
        entity_names: Names for the remote entities in PTE order; defaults
            to ``xi1 .. xiN``.  Names double as automaton names and as
            wireless entity names.
        supervisor_name: Name of the Supervisor automaton / base station.
        approval_condition: Supervisor ``ApprovalCondition`` predicate.
        supervisor_variables: Extra Supervisor variables (e.g. an ``spo2``
            reading written by a wired-sensor coupling).
        participation_conditions: Optional per-participant-index
            ``ParticipationCondition`` predicates.
        lease_enabled: When False every remote entity is built without its
            lease-expiry edge (the Table I baseline).
        require_valid_configuration: When True, raise if the configuration
            violates any of Theorem 1's conditions.  Left off by default so
            that ablation experiments can deliberately build invalid
            designs.
        system_name: Name of the resulting hybrid system.

    Returns:
        A :class:`PatternSystem` bundling the automata and their wiring.
    """
    names = list(entity_names) if entity_names is not None else default_entity_names(
        config.n_entities)
    if len(names) != config.n_entities:
        raise ConfigurationError(
            f"expected {config.n_entities} entity names, got {len(names)}")
    if len(set(names)) != len(names) or supervisor_name in names:
        raise ConfigurationError("entity names (and the supervisor name) must be distinct")
    if require_valid_configuration:
        from repro.core.constraints import assert_valid

        assert_valid(config)

    conditions = dict(participation_conditions or {})
    system = HybridSystem(system_name)

    supervisor = build_supervisor(
        config, entity_id="xi0", name=supervisor_name,
        approval_condition=approval_condition,
        extra_variables=supervisor_variables)
    system.add(supervisor, entity=supervisor_name)

    participants: List[HybridAutomaton] = []
    for index in range(1, config.n_entities):
        participant = build_participant(
            config, index, entity_id=f"xi{index}", name=names[index - 1],
            participation_condition=conditions.get(index, TRUE),
            lease_enabled=lease_enabled)
        system.add(participant, entity=names[index - 1])
        participants.append(participant)

    initializer = build_initializer(
        config, entity_id=f"xi{config.n_entities}", name=names[-1],
        lease_enabled=lease_enabled)
    system.add(initializer, entity=names[-1])

    rules = config.to_rule_set(names)
    vocabulary = EventVocabulary(config.n_entities)
    return PatternSystem(
        system=system,
        supervisor=supervisor,
        participants=participants,
        initializer=initializer,
        config=config,
        vocabulary=vocabulary,
        entity_names=names,
        rules=rules,
        lease_enabled=lease_enabled,
        metadata={"roles": {supervisor_name: Role.SUPERVISOR.value,
                            **{names[i - 1]: Role.PARTICIPANT.value
                               for i in range(1, config.n_entities)},
                            names[-1]: Role.INITIALIZER.value}},
    )
