"""Event vocabulary of the lease design pattern.

The design pattern automata of Section IV-A communicate through a fixed
family of events.  The paper names them ``evt xiN To xi0 Req``,
``evt xi0 To xii LeaseReq`` and so on; this module generates the
corresponding machine-friendly roots from entity indices so every automaton
builder and every test uses exactly the same spelling.

Entity index 0 is always the Supervisor (base station); indices ``1..N``
are the remote entities in PTE order, with ``N`` the Initializer.
"""

from __future__ import annotations

from dataclasses import dataclass


def request(initializer_index: int) -> str:
    """``evt xiN -> xi0 Req``: the Initializer asks to enter risky locations."""
    return f"evt_xi{initializer_index}_to_xi0_req"


def request_cancel(initializer_index: int) -> str:
    """``evt xiN -> xi0 Cancel``: the Initializer cancels its request/lease."""
    return f"evt_xi{initializer_index}_to_xi0_cancel"


def lease_request(participant_index: int) -> str:
    """``evt xi0 -> xii LeaseReq``: the Supervisor offers a lease to a Participant."""
    return f"evt_xi0_to_xi{participant_index}_lease_req"


def lease_approve(participant_index: int) -> str:
    """``evt xii -> xi0 LeaseApprove``: the Participant accepts the lease."""
    return f"evt_xi{participant_index}_to_xi0_lease_approve"


def lease_deny(participant_index: int) -> str:
    """``evt xii -> xi0 LeaseDeny``: the Participant refuses the lease."""
    return f"evt_xi{participant_index}_to_xi0_lease_deny"


def approve(initializer_index: int) -> str:
    """``evt xi0 -> xiN Approve``: the Supervisor approves the Initializer."""
    return f"evt_xi0_to_xi{initializer_index}_approve"


def cancel(entity_index: int) -> str:
    """``evt xi0 -> xii Cancel``: the Supervisor cancels an entity's lease."""
    return f"evt_xi0_to_xi{entity_index}_cancel"


def abort(entity_index: int) -> str:
    """``evt xi0 -> xii Abort``: the Supervisor aborts an entity's lease."""
    return f"evt_xi0_to_xi{entity_index}_abort"


def exited(entity_index: int) -> str:
    """``evt xii -> xi0 Exit``: the entity reports it is back in Fall-Back.

    The paper's abort walk-through (Section V) shows the Initializer
    acknowledging an abort with ``evt xi2 -> xi0 Exit``; our reconstruction
    has every remote entity emit this confirmation when it re-enters its
    Fall-Back location, which is what lets the Supervisor cancel leases in
    reverse PTE order without ever outrunning an upstream entity.
    """
    return f"evt_xi{entity_index}_to_xi0_exit"


def command_request(initializer_index: int) -> str:
    """Local (wired) command asking the Initializer to request its lease.

    In the case study this is the surgeon pressing the laser trigger; it is
    delivered reliably because it never crosses the wireless network.
    """
    return f"cmd_initiate_xi{initializer_index}"


def command_cancel(initializer_index: int) -> str:
    """Local (wired) command asking the Initializer to stop."""
    return f"cmd_cancel_xi{initializer_index}"


@dataclass(frozen=True)
class EventVocabulary:
    """All event roots used by one instance of the design pattern.

    Useful for tests and for wiring environment processes: instead of
    recomputing root strings, grab them from here.
    """

    n_entities: int

    def __post_init__(self) -> None:
        if self.n_entities < 2:
            raise ValueError("the design pattern requires N >= 2 remote entities")

    @property
    def initializer_index(self) -> int:
        """Index of the Initializer (``N``)."""
        return self.n_entities

    @property
    def participant_indices(self) -> range:
        """Indices of the Participants (``1 .. N-1``)."""
        return range(1, self.n_entities)

    # -- initializer-side roots ------------------------------------------------
    @property
    def request(self) -> str:
        """Initializer request event."""
        return request(self.initializer_index)

    @property
    def request_cancel(self) -> str:
        """Initializer cancel event."""
        return request_cancel(self.initializer_index)

    @property
    def approve(self) -> str:
        """Supervisor approval of the Initializer."""
        return approve(self.initializer_index)

    @property
    def command_request(self) -> str:
        """Local command that triggers an Initializer request."""
        return command_request(self.initializer_index)

    @property
    def command_cancel(self) -> str:
        """Local command that cancels the Initializer."""
        return command_cancel(self.initializer_index)

    # -- per-entity roots ---------------------------------------------------------
    def lease_request(self, index: int) -> str:
        """Lease offer to Participant ``index``."""
        return lease_request(index)

    def lease_approve(self, index: int) -> str:
        """Lease acceptance from Participant ``index``."""
        return lease_approve(index)

    def lease_deny(self, index: int) -> str:
        """Lease refusal from Participant ``index``."""
        return lease_deny(index)

    def cancel(self, index: int) -> str:
        """Supervisor cancel aimed at entity ``index``."""
        return cancel(index)

    def abort(self, index: int) -> str:
        """Supervisor abort aimed at entity ``index``."""
        return abort(index)

    def exited(self, index: int) -> str:
        """Fall-Back confirmation from entity ``index``."""
        return exited(index)

    def all_roots(self) -> set[str]:
        """Every event root of this pattern instance."""
        roots = {self.request, self.request_cancel, self.approve,
                 self.command_request, self.command_cancel,
                 self.exited(self.initializer_index),
                 self.cancel(self.initializer_index),
                 self.abort(self.initializer_index)}
        for index in self.participant_indices:
            roots |= {self.lease_request(index), self.lease_approve(index),
                      self.lease_deny(index), self.cancel(index),
                      self.abort(index), self.exited(index)}
        return roots
