"""The Initializer design-pattern automaton ``A_initzr`` (Section IV-A, Fig. 5a).

The Initializer ``xi_N`` is the only remote entity allowed to proactively
request entering its risky locations.  Its request, approval and dwelling
are all bounded:

* a pending request expires after ``T^max_req,N`` if the approval never
  arrives;
* the ramp through "Entering" lasts exactly ``T^max_enter,N``;
* the risky dwelling in "Risky Core" is leased: after ``T^max_run,N`` the
  Initializer exits on its own (the Table I ``evtToStop`` events are exactly
  these forced exits);
* both exit paths dwell ``T_exit,N`` and then return to "Fall-Back".

The proactive request and cancellation are driven by local command events
(``cmd_initiate``/``cmd_cancel``): in the case study these are issued by the
surgeon model, delivered reliably because the surgeon operates the
laser-scalpel directly rather than over the wireless network.
"""

from __future__ import annotations

from repro.core.configuration import PatternConfiguration
from repro.core.pattern import events
from repro.core.pattern.roles import (ENTERING, EXITING_1, EXITING_2, FALL_BACK,
                                      REQUESTING, RISKY_CORE, Role, qualified)
from repro.errors import ConfigurationError
from repro.hybrid.automaton import HybridAutomaton
from repro.hybrid.edges import Edge, Reset
from repro.hybrid.expressions import var_ge
from repro.hybrid.flows import clock_flow
from repro.hybrid.labels import receive, receive_lossy
from repro.hybrid.locations import Location


def build_initializer(config: PatternConfiguration, *,
                      index: int | None = None,
                      entity_id: str | None = None,
                      name: str | None = None,
                      lease_enabled: bool = True) -> HybridAutomaton:
    """Build the Initializer automaton ``A_initzr`` for entity ``xi_N``.

    Args:
        config: Pattern configuration providing ``T^max_req,N`` and the
            Initializer's lease trio.
        index: Entity index; defaults to ``N`` and must equal it.
        entity_id: Identifier used to namespace locations and the local
            clock; defaults to ``"xi{N}"``.
        name: Automaton name; defaults to ``entity_id``.
        lease_enabled: When False, the lease-expiry edge out of "Risky Core"
            is omitted (the no-lease baseline of Table I).

    Returns:
        The Initializer :class:`~repro.hybrid.automaton.HybridAutomaton`.
    """
    expected = config.n_entities
    index = expected if index is None else index
    if index != expected:
        raise ConfigurationError(
            f"the Initializer must be entity xi{expected} for this configuration, "
            f"got index {index}")
    entity_id = entity_id or f"xi{index}"
    timing = config.initializer_timing
    clock = f"c_{entity_id}"
    flow = clock_flow(clock)

    def loc(base: str) -> str:
        return qualified(entity_id, base)

    automaton = HybridAutomaton(
        name or entity_id,
        variables=[clock],
        metadata={"role": Role.INITIALIZER.value, "entity_index": index,
                  "entity_id": entity_id, "lease_enabled": lease_enabled},
    )
    for base in (FALL_BACK, REQUESTING, ENTERING, RISKY_CORE, EXITING_1, EXITING_2):
        automaton.add_location(Location(name=loc(base), flow=flow,
                                        risky=base in (RISKY_CORE, EXITING_1)))
    automaton.initial_location = loc(FALL_BACK)

    reset = Reset({clock: 0.0})
    cmd_request = events.command_request(index)
    cmd_cancel = events.command_cancel(index)

    # Fall-Back: a local command makes the Initializer request its lease.
    automaton.add_edge(Edge(loc(FALL_BACK), loc(REQUESTING),
                            trigger=receive(cmd_request),
                            emits=[events.request(index)],
                            reset=reset, reason="request"))

    # Requesting: cancel, time out, or get approved.
    automaton.add_edge(Edge(loc(REQUESTING), loc(FALL_BACK),
                            trigger=receive(cmd_cancel),
                            emits=[events.request_cancel(index)],
                            reset=reset, reason="user_cancel"))
    automaton.add_edge(Edge(loc(REQUESTING), loc(FALL_BACK),
                            guard=var_ge(clock, config.t_req_max),
                            reset=reset, reason="request_timeout"))
    automaton.add_edge(Edge(loc(REQUESTING), loc(ENTERING),
                            trigger=receive_lossy(events.approve(index)),
                            reset=reset, reason="approved"))

    # Entering: ramp toward the risky core; any stop request drops to Exiting 2.
    automaton.add_edge(Edge(loc(ENTERING), loc(EXITING_2),
                            trigger=receive(cmd_cancel),
                            emits=[events.request_cancel(index)],
                            reset=reset, reason="user_cancel"))
    automaton.add_edge(Edge(loc(ENTERING), loc(EXITING_2),
                            trigger=receive_lossy(events.abort(index)),
                            reset=reset, reason="abort"))
    automaton.add_edge(Edge(loc(ENTERING), loc(EXITING_2),
                            trigger=receive_lossy(events.cancel(index)),
                            reset=reset, reason="cancel"))
    automaton.add_edge(Edge(loc(ENTERING), loc(RISKY_CORE),
                            guard=var_ge(clock, timing.t_enter_max),
                            reset=reset, reason="enter_complete"))

    # Risky Core: stop requests or the lease expiry lead to Exiting 1.
    automaton.add_edge(Edge(loc(RISKY_CORE), loc(EXITING_1),
                            trigger=receive(cmd_cancel),
                            emits=[events.request_cancel(index)],
                            reset=reset, reason="user_cancel"))
    automaton.add_edge(Edge(loc(RISKY_CORE), loc(EXITING_1),
                            trigger=receive_lossy(events.abort(index)),
                            reset=reset, reason="abort"))
    automaton.add_edge(Edge(loc(RISKY_CORE), loc(EXITING_1),
                            trigger=receive_lossy(events.cancel(index)),
                            reset=reset, reason="cancel"))
    if lease_enabled:
        automaton.add_edge(Edge(loc(RISKY_CORE), loc(EXITING_1),
                                guard=var_ge(clock, timing.t_run_max),
                                reset=reset, reason="lease_expiry"))

    # Exiting: mandatory dwell, then back to Fall-Back with a confirmation.
    for exiting in (EXITING_1, EXITING_2):
        automaton.add_edge(Edge(loc(exiting), loc(FALL_BACK),
                                guard=var_ge(clock, timing.t_exit),
                                emits=[events.exited(index)],
                                reset=reset, reason="exit_complete"))

    automaton.validate()
    return automaton
