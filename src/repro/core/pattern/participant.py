"""The Participant design-pattern automaton ``A_ptcpnt,i`` (Section IV-A, Fig. 5b).

A Participant ``xi_i`` (``i = 1 .. N-1``) starts in "Fall-Back".  When the
Supervisor offers it a lease it decides (in the zero-dwell location "L0")
whether its application-dependent ``ParticipationCondition`` holds; if so
it approves and enters its risky locations through "Entering", otherwise it
denies and stays in "Fall-Back".  The dwelling in risky locations is bounded
by the lease: after ``T^max_run,i`` in "Risky Core" the Participant exits on
its own, whether or not any cancel/abort message gets through -- this
auto-reset is precisely what protects the PTE safety rules under arbitrary
wireless loss.
"""

from __future__ import annotations

from repro.core.configuration import PatternConfiguration
from repro.core.pattern import events
from repro.core.pattern.roles import (ENTERING, EXITING_1, EXITING_2, FALL_BACK, L0,
                                      RISKY_CORE, Role, qualified)
from repro.errors import ConfigurationError
from repro.hybrid.automaton import HybridAutomaton
from repro.hybrid.edges import Edge, Reset
from repro.hybrid.expressions import Not, Predicate, TRUE, var_ge
from repro.hybrid.flows import clock_flow
from repro.hybrid.labels import receive_lossy
from repro.hybrid.locations import Location


def build_participant(config: PatternConfiguration, index: int, *,
                      entity_id: str | None = None,
                      name: str | None = None,
                      participation_condition: Predicate = TRUE,
                      lease_enabled: bool = True) -> HybridAutomaton:
    """Build the Participant automaton for entity ``xi_index``.

    Args:
        config: Pattern configuration providing the lease trio of ``xi_index``.
        index: Entity index in PTE order; must satisfy ``1 <= index < N``.
        entity_id: Identifier used to namespace locations and the local
            clock; defaults to ``"xi{index}"``.
        name: Automaton name; defaults to ``entity_id``.
        participation_condition: The application-dependent
            ``ParticipationCondition`` evaluated in "L0" over this
            automaton's variables.
        lease_enabled: When False, the lease-expiry edge out of "Risky Core"
            is omitted.  This produces the no-lease baseline used for the
            "without Lease" rows of Table I and must never be used in a
            safety-critical deployment.

    Returns:
        The Participant :class:`~repro.hybrid.automaton.HybridAutomaton`.
    """
    if not 1 <= index <= config.n_entities - 1:
        raise ConfigurationError(
            f"participant index must lie in 1..{config.n_entities - 1}, got {index}")
    entity_id = entity_id or f"xi{index}"
    timing = config.timing(index)
    clock = f"c_{entity_id}"
    flow = clock_flow(clock)

    def loc(base: str) -> str:
        return qualified(entity_id, base)

    automaton = HybridAutomaton(
        name or entity_id,
        variables=[clock],
        metadata={"role": Role.PARTICIPANT.value, "entity_index": index,
                  "entity_id": entity_id, "lease_enabled": lease_enabled},
    )
    for base in (FALL_BACK, L0, ENTERING, RISKY_CORE, EXITING_1, EXITING_2):
        automaton.add_location(Location(name=loc(base), flow=flow,
                                        risky=base in (RISKY_CORE, EXITING_1)))
    automaton.initial_location = loc(FALL_BACK)

    reset = Reset({clock: 0.0})

    # Fall-Back --(lease offer)--> L0 (zero-dwell decision location).
    automaton.add_edge(Edge(loc(FALL_BACK), loc(L0),
                            trigger=receive_lossy(events.lease_request(index)),
                            reset=reset, reason="lease_requested"))

    # L0: decide according to the ParticipationCondition.
    automaton.add_edge(Edge(loc(L0), loc(ENTERING),
                            guard=participation_condition,
                            emits=[events.lease_approve(index)],
                            reset=reset, reason="lease_approved", priority=1))
    automaton.add_edge(Edge(loc(L0), loc(FALL_BACK),
                            guard=Not(participation_condition),
                            emits=[events.lease_deny(index)],
                            reset=reset, reason="lease_denied"))

    # Entering: ramp toward the risky core, abort/cancel drop to Exiting 2.
    automaton.add_edge(Edge(loc(ENTERING), loc(EXITING_2),
                            trigger=receive_lossy(events.cancel(index)),
                            reset=reset, reason="cancel"))
    automaton.add_edge(Edge(loc(ENTERING), loc(EXITING_2),
                            trigger=receive_lossy(events.abort(index)),
                            reset=reset, reason="abort"))
    automaton.add_edge(Edge(loc(ENTERING), loc(RISKY_CORE),
                            guard=var_ge(clock, timing.t_enter_max),
                            reset=reset, reason="enter_complete"))

    # Risky Core: cancel/abort or lease expiry lead to Exiting 1.
    automaton.add_edge(Edge(loc(RISKY_CORE), loc(EXITING_1),
                            trigger=receive_lossy(events.cancel(index)),
                            reset=reset, reason="cancel"))
    automaton.add_edge(Edge(loc(RISKY_CORE), loc(EXITING_1),
                            trigger=receive_lossy(events.abort(index)),
                            reset=reset, reason="abort"))
    if lease_enabled:
        automaton.add_edge(Edge(loc(RISKY_CORE), loc(EXITING_1),
                                guard=var_ge(clock, timing.t_run_max),
                                reset=reset, reason="lease_expiry"))

    # Exiting: mandatory dwell, then back to Fall-Back with a confirmation.
    for exiting in (EXITING_1, EXITING_2):
        automaton.add_edge(Edge(loc(exiting), loc(FALL_BACK),
                                guard=var_ge(clock, timing.t_exit),
                                emits=[events.exited(index)],
                                reset=reset, reason="exit_complete"))

    automaton.validate()
    return automaton
