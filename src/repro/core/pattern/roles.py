"""Roles and canonical location names of the lease design pattern."""

from __future__ import annotations

import enum


class Role(enum.Enum):
    """The three roles a PTE wireless CPS entity can play (Section IV-A)."""

    SUPERVISOR = "supervisor"      # the base station, xi0
    PARTICIPANT = "participant"    # remote entities xi1 .. xiN-1
    INITIALIZER = "initializer"    # remote entity xiN


# Canonical location base names.  Automata namespace them with their entity
# identifier ("xi1.Fall-Back") because member automata of a hybrid system
# may not share location names.
FALL_BACK = "Fall-Back"
REQUESTING = "Requesting"
L0 = "L0"
ENTERING = "Entering"
RISKY_CORE = "Risky Core"
EXITING_1 = "Exiting 1"
EXITING_2 = "Exiting 2"
SETTLE = "Settle"


def lease_location(index: int) -> str:
    """Supervisor location ``"Lease xi_i"``."""
    return f"Lease xi{index}"


def cancel_location(index: int) -> str:
    """Supervisor location ``"Cancel Lease xi_i"``."""
    return f"Cancel Lease xi{index}"


def abort_location(index: int) -> str:
    """Supervisor location ``"Abort Lease xi_i"``."""
    return f"Abort Lease xi{index}"


def qualified(entity_id: str, base_name: str) -> str:
    """Namespace a canonical location name with its entity identifier."""
    return f"{entity_id}.{base_name}"


def base_name(qualified_name: str) -> str:
    """Strip the entity namespace from a qualified location name."""
    prefix, separator, rest = qualified_name.partition(".")
    return rest if separator else qualified_name


#: Location base names belonging to the risky partition of remote entities.
REMOTE_RISKY_BASES = frozenset({RISKY_CORE, EXITING_1})

#: Location base names belonging to the safe partition of remote entities.
REMOTE_SAFE_BASES = frozenset({FALL_BACK, REQUESTING, L0, ENTERING, EXITING_2})
