"""The Supervisor design-pattern automaton ``A_supvsr`` (Section IV-A, Figs. 3-4).

The Supervisor ``xi_0`` (the base station) coordinates a lease round:

1. In "Fall-Back", after dwelling at least ``T^min_fb,0`` and provided the
   application-dependent ``ApprovalCondition`` holds, a request from the
   Initializer starts a round: the Supervisor leases Participants
   ``xi_1 .. xi_{N-1}`` in PTE order and finally approves the Initializer.
2. In each "Lease xi_i" it waits at most ``T^max_wait`` for the
   Participant's approval; a denial, a timeout, a cancellation from the
   Initializer or a violated ``ApprovalCondition`` makes it unwind the
   round (cancel or abort chain) in *reverse* PTE order.
3. In "Lease xi_N" it waits for the Initializer to finish (Exit
   confirmation) or for the Initializer's worst-case horizon, then cancels
   the Participants in reverse order.
4. "Cancel Lease xi_i" / "Abort Lease xi_i" send the cancel/abort to entity
   ``xi_i`` and advance to ``xi_{i-1}`` only once that entity confirms it is
   back in Fall-Back.  Without a confirmation the Supervisor (optionally
   re-sends and then) retreats to "Settle", where it simply waits out the
   global lease horizon ``T^max_wait + T^max_LS1`` -- by then every lease
   has expired and every entity has reset itself, in the order guaranteed
   by conditions c5-c7.

Reconstruction note
-------------------
The paper only sketches the flow-block internals of the "Lease/Cancel/Abort"
locations (Fig. 4 a-c) and leaves the details to its technical report.  The
automaton built here is a *conservative* reconstruction documented in
DESIGN.md: the Supervisor never sends a cancel/abort to ``xi_i`` before
``xi_{i+1}`` is either confirmed back in Fall-Back or past its worst-case
self-reset horizon.  Safety rests on the remote entities' leases and on
conditions c1-c7, exactly as in the paper's Theorem 1 argument; the
Supervisor's details only affect liveness.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.configuration import PatternConfiguration
from repro.core.pattern import events
from repro.core.pattern.roles import (FALL_BACK, SETTLE, Role, abort_location,
                                      cancel_location, lease_location, qualified)
from repro.hybrid.automaton import HybridAutomaton
from repro.hybrid.edges import Edge, Reset
from repro.hybrid.expressions import And, Not, Predicate, TRUE, TruePredicate, var_ge, var_le
from repro.hybrid.flows import clock_flow
from repro.hybrid.labels import receive_lossy
from repro.hybrid.locations import Location


def _conjoin(a: Predicate, b: Predicate) -> Predicate:
    if isinstance(a, TruePredicate):
        return b
    if isinstance(b, TruePredicate):
        return a
    return And((a, b))


def build_supervisor(config: PatternConfiguration, *,
                     entity_id: str = "xi0",
                     name: str | None = None,
                     approval_condition: Predicate = TRUE,
                     extra_variables: Mapping[str, float] | None = None,
                     use_abort_on_violation: bool = True) -> HybridAutomaton:
    """Build the Supervisor automaton ``A_supvsr``.

    Args:
        config: Pattern configuration (supplies ``T^min_fb,0``,
            ``T^max_wait``, every entity's lease trio and the resend limit).
        entity_id: Identifier namespacing locations and clocks (``"xi0"``).
        name: Automaton name; defaults to ``entity_id``.
        approval_condition: Application-dependent ``ApprovalCondition``
            evaluated over this automaton's variables (e.g. an ``spo2``
            variable fed by a wired oximeter coupling).  A round is only
            started while it holds, and its violation aborts a running
            round.
        extra_variables: Additional data state variables (name -> initial
            value) referenced by ``approval_condition`` or by couplings.
        use_abort_on_violation: When False the Supervisor never reacts to
            ``ApprovalCondition`` violations mid-round (used by ablation
            experiments); rounds are still only started while the condition
            holds.

    Returns:
        The Supervisor :class:`~repro.hybrid.automaton.HybridAutomaton`.
    """
    n = config.n_entities
    entity_id = entity_id or "xi0"
    clock = f"c_{entity_id}"
    round_clock = f"g_{entity_id}"
    resend_counter = f"r_{entity_id}"
    variables = [clock, round_clock, resend_counter]
    initial_values = {clock: 0.0, round_clock: 0.0, resend_counter: 0.0}
    for variable, value in (extra_variables or {}).items():
        variables.append(variable)
        initial_values[variable] = float(value)

    flow = clock_flow(clock, round_clock)

    def loc(base: str) -> str:
        return qualified(entity_id, base)

    automaton = HybridAutomaton(
        name or entity_id,
        variables=variables,
        initial_valuation=initial_values,
        metadata={"role": Role.SUPERVISOR.value, "entity_index": 0,
                  "entity_id": entity_id},
    )

    # Locations: Fall-Back, Lease/Cancel/Abort xi_i for i = 1..N, Settle.
    automaton.add_location(Location(name=loc(FALL_BACK), flow=flow))
    for i in range(1, n + 1):
        automaton.add_location(Location(name=loc(lease_location(i)), flow=flow))
        automaton.add_location(Location(name=loc(cancel_location(i)), flow=flow))
        automaton.add_location(Location(name=loc(abort_location(i)), flow=flow))
    automaton.add_location(Location(name=loc(SETTLE), flow=flow))
    automaton.initial_location = loc(FALL_BACK)

    step_reset = Reset({clock: 0.0, resend_counter: 0.0})
    round_reset = Reset({clock: 0.0, round_clock: 0.0, resend_counter: 0.0})
    initializer = config.n_entities
    violation_guard = Not(approval_condition)

    # ---- Fall-Back: start a round --------------------------------------------------
    automaton.add_edge(Edge(
        loc(FALL_BACK), loc(lease_location(1)),
        trigger=receive_lossy(events.request(initializer)),
        guard=_conjoin(var_ge(clock, config.t_fallback_min), approval_condition),
        emits=[events.lease_request(1)],
        reset=round_reset, reason="round_start"))

    # ---- Lease xi_i for participants (i = 1 .. N-1) ---------------------------------
    for i in range(1, n):
        here = loc(lease_location(i))
        # Approval received: lease the next entity (or approve the Initializer).
        if i + 1 <= n - 1:
            next_location = loc(lease_location(i + 1))
            next_emit = events.lease_request(i + 1)
        else:
            next_location = loc(lease_location(n))
            next_emit = events.approve(initializer)
        automaton.add_edge(Edge(
            here, next_location,
            trigger=receive_lossy(events.lease_approve(i)),
            emits=[next_emit], reset=step_reset, reason="participant_approved"))

        # Denial: unwind from the previous participant (nothing to cancel for i = 1).
        if i > 1:
            automaton.add_edge(Edge(
                here, loc(cancel_location(i - 1)),
                trigger=receive_lossy(events.lease_deny(i)),
                emits=[events.cancel(i - 1)], reset=step_reset,
                reason="participant_denied"))
        else:
            automaton.add_edge(Edge(
                here, loc(FALL_BACK),
                trigger=receive_lossy(events.lease_deny(i)),
                reset=step_reset, reason="participant_denied"))

        # Initializer cancelled while we were still leasing: cancel xi_i itself
        # (it may have approved even though we did not hear it).
        automaton.add_edge(Edge(
            here, loc(cancel_location(i)),
            trigger=receive_lossy(events.request_cancel(initializer)),
            emits=[events.cancel(i)], reset=step_reset,
            reason="initializer_cancelled"))

        # Coordination timeout: the approval never arrived.
        automaton.add_edge(Edge(
            here, loc(cancel_location(i)),
            guard=var_ge(clock, config.t_wait_max),
            emits=[events.cancel(i)], reset=step_reset,
            reason="lease_wait_timeout"))

        # ApprovalCondition violated: switch to the abort chain.
        if use_abort_on_violation:
            automaton.add_edge(Edge(
                here, loc(abort_location(i)),
                guard=violation_guard,
                emits=[events.abort(i)], reset=step_reset,
                reason="approval_violated", priority=2))

    # ---- Lease xi_N: the Initializer holds its lease ---------------------------------
    lease_n = loc(lease_location(n))
    after_initializer = loc(cancel_location(n - 1))
    automaton.add_edge(Edge(
        lease_n, after_initializer,
        trigger=receive_lossy(events.exited(initializer)),
        emits=[events.cancel(n - 1)], reset=step_reset, reason="initializer_done"))
    automaton.add_edge(Edge(
        lease_n, loc(cancel_location(n)),
        trigger=receive_lossy(events.request_cancel(initializer)),
        emits=[events.cancel(n)], reset=step_reset, reason="initializer_cancelled"))
    automaton.add_edge(Edge(
        lease_n, after_initializer,
        guard=var_ge(clock, config.initializer_horizon()),
        emits=[events.cancel(n - 1)], reset=step_reset, reason="initializer_horizon"))
    if use_abort_on_violation:
        automaton.add_edge(Edge(
            lease_n, loc(abort_location(n)),
            guard=violation_guard,
            emits=[events.abort(n)], reset=step_reset,
            reason="approval_violated", priority=2))

    # ---- Cancel / Abort chains ----------------------------------------------------------
    def unwind_chain(kind: str, location_of, message_of) -> None:
        """Create the reverse-order unwind chain ("cancel" or "abort")."""
        for i in range(1, n + 1):
            here = loc(location_of(i))
            confirm_timeout = config.timing(i).t_exit + config.t_wait_max
            if i > 1:
                confirmed_target = loc(location_of(i - 1))
                confirmed_emits = [message_of(i - 1)]
            else:
                confirmed_target = loc(FALL_BACK)
                confirmed_emits = []
            automaton.add_edge(Edge(
                here, confirmed_target,
                trigger=receive_lossy(events.exited(i)),
                emits=confirmed_emits, reset=step_reset,
                reason=f"{kind}_confirmed"))
            if kind == "cancel" and i == n:
                # "Cancel Lease xi_N" is only ever entered after the
                # Initializer itself announced a cancellation, i.e. it has
                # already left its risky locations and is guaranteed back in
                # Fall-Back within T_exit,N even if every message is lost.
                # After waiting that horizon the Supervisor may therefore
                # safely proceed down the chain without a confirmation.
                automaton.add_edge(Edge(
                    here, confirmed_target,
                    guard=var_ge(clock, confirm_timeout),
                    emits=confirmed_emits, reset=step_reset,
                    reason="cancel_initializer_horizon"))
                continue
            if config.supervisor_resend_limit > 0:
                automaton.add_edge(Edge(
                    here, here,
                    guard=_conjoin(var_ge(clock, confirm_timeout),
                                   var_le(resend_counter,
                                          config.supervisor_resend_limit - 1)),
                    emits=[message_of(i)],
                    reset=Reset({clock: 0.0},
                                function=lambda v, _rc=resend_counter: {_rc: v[_rc] + 1.0}),
                    reason=f"{kind}_resend"))
                giveup_guard = _conjoin(var_ge(clock, confirm_timeout),
                                        var_ge(resend_counter,
                                               config.supervisor_resend_limit))
            else:
                giveup_guard = var_ge(clock, confirm_timeout)
            automaton.add_edge(Edge(
                here, loc(SETTLE),
                guard=giveup_guard, reset=step_reset,
                reason=f"{kind}_unconfirmed"))

    unwind_chain("cancel", cancel_location, events.cancel)
    unwind_chain("abort", abort_location, events.abort)

    # ---- Settle: wait out the global lease horizon, then return to Fall-Back ------------
    automaton.add_edge(Edge(
        loc(SETTLE), loc(FALL_BACK),
        guard=var_ge(round_clock, config.round_horizon),
        reset=step_reset, reason="settled"))

    automaton.validate()
    return automaton


def supervisor_location_names(config: PatternConfiguration,
                              entity_id: str = "xi0") -> Sequence[str]:
    """The qualified location names a Supervisor built from ``config`` will have."""
    names = [qualified(entity_id, FALL_BACK), qualified(entity_id, SETTLE)]
    for i in range(1, config.n_entities + 1):
        names.append(qualified(entity_id, lease_location(i)))
        names.append(qualified(entity_id, cancel_location(i)))
        names.append(qualified(entity_id, abort_location(i)))
    return names
