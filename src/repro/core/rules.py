"""The PTE safety rules (paper Section III).

Two rules make up the *Proper-Temporal-Embedding* safety-rule category:

* **PTE Safety Rule 1 (Bounded Dwelling)** -- every remote entity's
  continuous dwelling time in risky locations is upper-bounded by a
  constant.
* **PTE Safety Rule 2 (Proper Temporal Embedding)** -- the PTE partial
  order over the remote entities is a full order ``xi_1 < xi_2 < ... <
  xi_N``, where ``xi_i < xi_j`` requires (Definition 1):

  * *p1* -- whenever ``xi_i`` dwells in safe locations at time ``t``,
    ``xi_j`` dwells in safe locations throughout
    ``[t, t + T^min_risky:i->j]`` (the enter-risky safeguard);
  * *p2* -- whenever ``xi_j`` dwells in risky locations, ``xi_i`` dwells in
    risky locations;
  * *p3* -- whenever ``xi_j`` dwells in risky locations at time ``t``,
    ``xi_i`` dwells in risky locations throughout
    ``[t, t + T^min_safe:j->i]`` (the exit-risky safeguard).

This module holds the declarative description of a PTE rule set
(:class:`PTEOrderSpec` / :class:`PTERuleSet`); the checking logic over
recorded traces lives in :mod:`repro.core.monitor`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from repro.errors import ConfigurationError


class RuleKind(enum.Enum):
    """Which of the two PTE safety rules a violation refers to."""

    BOUNDED_DWELLING = "rule1-bounded-dwelling"
    TEMPORAL_EMBEDDING = "rule2-proper-temporal-embedding"


class EmbeddingProperty(enum.Enum):
    """The three properties p1-p3 of the PTE partial order (Definition 1)."""

    P1_ENTER_SAFEGUARD = "p1-enter-risky-safeguard"
    P2_CONTAINMENT = "p2-risky-containment"
    P3_EXIT_SAFEGUARD = "p3-exit-risky-safeguard"


@dataclass(frozen=True)
class PTEPairRequirement:
    """The requirements tying one ordered pair ``xi_inner < xi_outer``.

    ``inner`` is the lower-ordered entity (it must enter risky first and
    leave last, e.g. the ventilator); ``outer`` is the higher-ordered entity
    (e.g. the laser-scalpel).

    Attributes:
        inner: Name of the lower-ordered entity (``xi_i``).
        outer: Name of the higher-ordered entity (``xi_{i+1}``).
        enter_safeguard: ``T^min_risky:i->i+1`` -- minimum time the inner
            entity must already have dwelled in risky locations before the
            outer entity may enter its risky locations.
        exit_safeguard: ``T^min_safe:i+1->i`` -- minimum time the inner
            entity must remain in risky locations after the outer entity
            has returned to safe locations.
    """

    inner: str
    outer: str
    enter_safeguard: float
    exit_safeguard: float

    def __post_init__(self) -> None:
        if self.enter_safeguard < 0 or self.exit_safeguard < 0:
            raise ConfigurationError("safeguard intervals must be non-negative")
        if self.inner == self.outer:
            raise ConfigurationError("a PTE pair needs two distinct entities")


@dataclass(frozen=True)
class PTEOrderSpec:
    """The full PTE order ``xi_1 < xi_2 < ... < xi_N`` with its safeguards.

    Attributes:
        entities: Entity names in ascending PTE order (``xi_1`` first).
        enter_safeguards: ``T^min_risky:i->i+1`` for consecutive pairs, one
            value per pair (length ``N - 1``).
        exit_safeguards: ``T^min_safe:i+1->i`` for consecutive pairs.
    """

    entities: tuple[str, ...]
    enter_safeguards: tuple[float, ...]
    exit_safeguards: tuple[float, ...]

    def __init__(self, entities: Sequence[str], enter_safeguards: Sequence[float],
                 exit_safeguards: Sequence[float]):
        if len(entities) < 2:
            raise ConfigurationError("a PTE order needs at least two entities (N >= 2)")
        if len(set(entities)) != len(entities):
            raise ConfigurationError("PTE order entities must be distinct")
        if len(enter_safeguards) != len(entities) - 1:
            raise ConfigurationError(
                "need exactly one enter-risky safeguard per consecutive entity pair")
        if len(exit_safeguards) != len(entities) - 1:
            raise ConfigurationError(
                "need exactly one exit-risky safeguard per consecutive entity pair")
        object.__setattr__(self, "entities", tuple(entities))
        object.__setattr__(self, "enter_safeguards",
                           tuple(float(v) for v in enter_safeguards))
        object.__setattr__(self, "exit_safeguards",
                           tuple(float(v) for v in exit_safeguards))

    @property
    def n_entities(self) -> int:
        """Number of remote entities in the order (``N``)."""
        return len(self.entities)

    def consecutive_pairs(self) -> List[PTEPairRequirement]:
        """The ``N - 1`` consecutive pair requirements of the full order."""
        pairs = []
        for index in range(len(self.entities) - 1):
            pairs.append(PTEPairRequirement(
                inner=self.entities[index],
                outer=self.entities[index + 1],
                enter_safeguard=self.enter_safeguards[index],
                exit_safeguard=self.exit_safeguards[index]))
        return pairs

    def pair(self, inner: str, outer: str) -> PTEPairRequirement:
        """The requirement for a specific consecutive pair."""
        for candidate in self.consecutive_pairs():
            if candidate.inner == inner and candidate.outer == outer:
                return candidate
        raise ConfigurationError(
            f"({inner!r}, {outer!r}) is not a consecutive pair of this PTE order")


@dataclass(frozen=True)
class PTERuleSet:
    """A complete PTE safety-rule set for one wireless CPS.

    Attributes:
        order: The PTE full order with its safeguard intervals (Rule 2).
        dwelling_bounds: Upper bound on continuous risky dwelling per entity
            (Rule 1).  Entities absent from the mapping use
            ``default_dwelling_bound``.
        default_dwelling_bound: Fallback Rule 1 bound.
    """

    order: PTEOrderSpec
    dwelling_bounds: Dict[str, float] = field(default_factory=dict)
    default_dwelling_bound: float = float("inf")

    def __init__(self, order: PTEOrderSpec,
                 dwelling_bounds: Dict[str, float] | None = None,
                 default_dwelling_bound: float = float("inf")):
        object.__setattr__(self, "order", order)
        object.__setattr__(self, "dwelling_bounds", dict(dwelling_bounds or {}))
        object.__setattr__(self, "default_dwelling_bound", float(default_dwelling_bound))
        for entity, bound in self.dwelling_bounds.items():
            if bound <= 0:
                raise ConfigurationError(
                    f"dwelling bound for {entity!r} must be positive, got {bound}")

    @property
    def entities(self) -> tuple[str, ...]:
        """Entity names in PTE order."""
        return self.order.entities

    def dwelling_bound(self, entity: str) -> float:
        """The Rule 1 bound that applies to ``entity``."""
        return self.dwelling_bounds.get(entity, self.default_dwelling_bound)


@dataclass(frozen=True)
class SafetyViolation:
    """One detected violation of a PTE safety rule.

    Attributes:
        rule: Which rule was violated.
        entity: Entity at fault (for Rule 2, the outer entity of the pair).
        time: Time the violation occurred (start of the offending episode).
        detail: Human-readable explanation with measured vs. required values.
        property: For Rule 2, which of p1-p3 failed.
        counterpart: For Rule 2, the other entity of the pair.
        measured: The offending measured quantity (duration or margin).
        required: The bound the measurement failed to meet.
    """

    rule: RuleKind
    entity: str
    time: float
    detail: str
    property: EmbeddingProperty | None = None
    counterpart: str | None = None
    measured: float | None = None
    required: float | None = None

    def __str__(self) -> str:
        return f"[{self.rule.value}] t={self.time:.3f}s {self.entity}: {self.detail}"


def laser_tracheotomy_rules(ventilator: str = "ventilator",
                            laser: str = "laser_scalpel",
                            *, enter_safeguard: float = 3.0,
                            exit_safeguard: float = 1.5,
                            dwelling_bound: float = 60.0) -> PTERuleSet:
    """The concrete rule set used by the paper's case study (Section V).

    Ventilator pause must properly temporally embed laser emission with a
    3 s enter safeguard and a 1.5 s exit safeguard, and neither ventilator
    pause nor laser emission may last longer than one minute.
    """
    order = PTEOrderSpec(entities=[ventilator, laser],
                         enter_safeguards=[enter_safeguard],
                         exit_safeguards=[exit_safeguard])
    return PTERuleSet(order=order,
                      dwelling_bounds={ventilator: dwelling_bound, laser: dwelling_bound},
                      default_dwelling_bound=dwelling_bound)


def uniform_rules(entities: Iterable[str], *, enter_safeguard: float,
                  exit_safeguard: float, dwelling_bound: float) -> PTERuleSet:
    """Build a rule set with identical safeguards for every consecutive pair."""
    names = list(entities)
    order = PTEOrderSpec(
        entities=names,
        enter_safeguards=[enter_safeguard] * (len(names) - 1),
        exit_safeguards=[exit_safeguard] * (len(names) - 1))
    return PTERuleSet(order=order, default_dwelling_bound=dwelling_bound)
