"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class.  More specific subclasses exist for
model construction problems, simulation problems and safety analysis
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class ModelError(ReproError):
    """A hybrid automaton or hybrid system is structurally ill-formed.

    Raised, for example, when an edge references an unknown location, when a
    data state variable is used but never declared, or when two member
    automata of a hybrid system share location or variable names (the paper
    assumes names are local to each automaton, Section II-B).
    """


class IndependenceError(ModelError):
    """Two hybrid automata violate the independence requirement (Def. 2)."""


class ElaborationError(ModelError):
    """An elaboration ``E(A, v, A')`` cannot be carried out.

    Raised when the child automaton is not *simple* (Def. 3), when the child
    and parent are not independent (Def. 2), or when the elaborated location
    does not exist.
    """


class SimulationError(ReproError):
    """The hybrid-system simulation could not make progress."""


class ZenoError(SimulationError):
    """Too many discrete transitions were taken without time elapsing.

    The simulator bounds the number of cascaded discrete transitions allowed
    at a single time point; exceeding that bound indicates a (quasi-) Zeno
    execution, which the paper rules out by assumption (Section IV-C).
    """


class TimeBlockError(SimulationError):
    """An invariant expired with no enabled outgoing edge.

    The paper assumes every automaton is time-block-free; the simulator
    raises this error when an execution would have to block time to remain
    inside a location invariant.
    """


class ConfigurationError(ReproError):
    """A lease design-pattern configuration is invalid.

    Raised by :mod:`repro.core.configuration` when parameters are
    nonsensical (e.g. non-positive durations where Theorem 1 condition c1
    requires positive ones) or when a feasible configuration cannot be
    synthesized from the requested safeguard intervals.
    """


class ConstraintViolation(ConfigurationError):
    """One of Theorem 1's closed-form conditions c1--c7 is violated."""

    def __init__(self, condition: str, message: str):
        super().__init__(f"{condition}: {message}")
        self.condition = condition
        self.message = message


class SafetyViolationError(ReproError):
    """A PTE safety rule was violated and the caller asked for an exception.

    The monitor normally *records* violations; this exception is only raised
    when monitoring is run in strict mode.
    """


class VerificationError(ReproError):
    """A verification campaign could not be executed as requested."""
