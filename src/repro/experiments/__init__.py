"""Experiment drivers: one module per reproduced table/figure plus extensions."""

from repro.experiments.ablation import run_ablation_constraints
from repro.experiments.fig_elaboration import build_fig6_parent, run_fig6
from repro.experiments.fig_pattern import run_fig3_5
from repro.experiments.fig_pte_timeline import run_fig1
from repro.experiments.fig_ventilator import run_fig2
from repro.experiments.loss_sweep import run_loss_sweep
from repro.experiments.runner import ExperimentResult
from repro.experiments.scenarios import run_scenarios
from repro.experiments.table1 import PAPER_TABLE1, run_table1

__all__ = [
    "ExperimentResult",
    "run_table1", "PAPER_TABLE1",
    "run_fig1", "run_fig2", "run_fig3_5", "run_fig6",
    "run_scenarios", "run_ablation_constraints", "run_loss_sweep",
    "build_fig6_parent",
]
