"""Experiment ``ablation_c5`` (and friends): breaking Theorem 1's conditions.

The paper's third scenario sets ``T^max_enter,2 = T^max_enter,1``, violating
condition c5, and argues that the laser can then emit immediately after the
ventilator pauses, breaking the 3-second enter-risky safeguard.  This
experiment reproduces that ablation: it builds the misconfigured design,
confirms the constraint checker flags exactly c5, runs a clean round and
measures the (now insufficient) enter margin.

A second ablation shrinks the ventilator's exit dwell below the exit
safeguard (violating c7) and observes the exit margin collapse, showing
that each closed-form condition maps to a concrete measurable safeguard.
"""

from __future__ import annotations

from dataclasses import replace

from repro.casestudy.config import CaseStudyConfig
from repro.casestudy.emulation import run_trial
from repro.casestudy.surgeon import ScriptedSurgeon
from repro.core.configuration import EntityTiming
from repro.core.constraints import check_conditions
from repro.core.monitor import PTEMonitor
from repro.experiments.runner import ExperimentResult
from repro.wireless.channel import PerfectChannel


def _measure_margins(config: CaseStudyConfig, horizon: float = 120.0):
    """Run one clean round and return (enter margin, exit margin, failures)."""
    surgeon = ScriptedSurgeon(requests_at=[14.0], cancels_at=[44.0])
    result = run_trial(config, with_lease=True, seed=3, duration=horizon,
                       channel=PerfectChannel(), surgeon=surgeon, keep_trace=True)
    monitor = PTEMonitor(config.rules())
    report = monitor.check(result.trace)
    return report.min_enter_margin(), report.min_exit_margin(), report.failure_count


def run_ablation_constraints(*, config: CaseStudyConfig | None = None) -> ExperimentResult:
    """Measure safeguard margins for the paper configuration and two ablations."""
    base = config or CaseStudyConfig()
    rows = []
    checks = {}

    # Baseline: the paper's configuration.
    baseline_report = check_conditions(base.pattern)
    enter, exit_margin, failures = _measure_margins(base)
    rows.append(["paper configuration", "all satisfied",
                 round(enter or 0.0, 2), round(exit_margin or 0.0, 2), failures])
    checks["paper_config_valid"] = baseline_report.satisfied
    checks["paper_config_safe"] = failures == 0
    checks["paper_enter_margin_ok"] = (enter or 0.0) >= base.enter_safeguard - 1e-6

    # Ablation 1: T_enter,2 = T_enter,1 violates c5 (paper's third scenario).
    laser_timing = base.pattern.timing(2)
    vent_timing = base.pattern.timing(1)
    broken_c5_pattern = base.pattern.with_timing(
        2, EntityTiming(vent_timing.t_enter_max, laser_timing.t_run_max,
                        laser_timing.t_exit))
    broken_c5 = replace(base, pattern=broken_c5_pattern)
    c5_report = check_conditions(broken_c5_pattern)
    enter_c5, exit_c5, failures_c5 = _measure_margins(broken_c5)
    rows.append(["T_enter,2 = T_enter,1 (breaks c5)",
                 ", ".join(r.name for r in c5_report.violated) or "none",
                 round(enter_c5 or 0.0, 2), round(exit_c5 or 0.0, 2), failures_c5])
    checks["c5_flagged"] = any(r.name == "c5" for r in c5_report.violated)
    checks["c5_breaks_enter_safeguard"] = (enter_c5 or 0.0) < base.enter_safeguard
    checks["c5_violation_detected_by_monitor"] = failures_c5 > 0

    # Ablation 2: T_exit,1 below the exit safeguard violates c7.
    broken_c7_pattern = base.pattern.with_timing(
        1, EntityTiming(vent_timing.t_enter_max, vent_timing.t_run_max, 1.0))
    broken_c7 = replace(base, pattern=broken_c7_pattern)
    c7_report = check_conditions(broken_c7_pattern)
    enter_c7, exit_c7, failures_c7 = _measure_margins(broken_c7)
    rows.append(["T_exit,1 = 1.0 s (breaks c7)",
                 ", ".join(r.name for r in c7_report.violated) or "none",
                 round(enter_c7 or 0.0, 2), round(exit_c7 or 0.0, 2), failures_c7])
    checks["c7_flagged"] = any(r.name == "c7" for r in c7_report.violated)
    checks["c7_breaks_exit_safeguard"] = (exit_c7 or 0.0) < base.exit_safeguard

    return ExperimentResult(
        experiment="ablation_c5",
        title="Ablation: violating Theorem 1 conditions removes the measured safeguards",
        headers=["configuration", "violated conditions", "min enter margin (s)",
                 "min exit margin (s)", "failures"],
        rows=rows,
        notes=["paper scenario 3: with T_enter,2 = T_enter,1 the laser may emit "
               "immediately after the ventilator pauses, violating the 3 s requirement"],
        checks=checks,
    )
