"""Experiment ``fig6``: the atomic elaboration example of Fig. 6.

Reproduces the paper's worked example: a two-location automaton ``A``
(Fall-Back / Risky, one data state variable ``x``) is elaborated at
"Fall-Back" with the stand-alone ventilator ``A'_vent`` of Fig. 2.  The
checks assert the structural facts the paper points out, most notably that
the resulting automaton has no edge from "Risky" to "PumpIn" because
"PumpIn" is not an initial location of ``A'_vent``.
"""

from __future__ import annotations

from repro.casestudy.ventilator import build_standalone_ventilator
from repro.experiments.runner import ExperimentResult
from repro.hybrid.automaton import HybridAutomaton
from repro.hybrid.edges import Edge, Reset
from repro.hybrid.elaboration import elaborate, is_simple
from repro.hybrid.flows import ConstantFlow
from repro.hybrid.locations import Location
from repro.hybrid.expressions import var_ge


def build_fig6_parent() -> HybridAutomaton:
    """The hybrid automaton ``A`` of Fig. 6(a): Fall-Back <-> Risky."""
    automaton = HybridAutomaton("fig6_parent", variables=["x"],
                                metadata={"figure": "Fig. 6(a)"})
    automaton.add_location(Location("Fall-Back", flow=ConstantFlow({"x": 1.0})))
    automaton.add_location(Location("Risky", flow=ConstantFlow({"x": 1.0}), risky=True))
    automaton.initial_location = "Fall-Back"
    automaton.add_edge(Edge("Fall-Back", "Risky", guard=var_ge("x", 5.0),
                            reset=Reset({"x": 0.0}), reason="go_risky"))
    automaton.add_edge(Edge("Risky", "Fall-Back", guard=var_ge("x", 8.0),
                            reset=Reset({"x": 0.0}), reason="go_safe"))
    return automaton


def run_fig6() -> ExperimentResult:
    """Perform the Fig. 6 elaboration and check its structure."""
    parent = build_fig6_parent()
    child = build_standalone_ventilator(name="fig6_vent")
    simple, why = is_simple(child)
    elaborated = elaborate(parent, "Fall-Back", child)

    locations = sorted(elaborated.location_names)
    edges = [(e.source, e.target) for e in elaborated.edges]
    rows = [[source, target] for source, target in sorted(edges)]
    has_risky_to_pumpin = ("Risky", "PumpIn") in edges
    has_risky_to_pumpout = ("Risky", "PumpOut") in edges
    egress_replicated = ("PumpOut", "Risky") in edges and ("PumpIn", "Risky") in edges
    return ExperimentResult(
        experiment="fig6",
        title="Fig. 6: atomic elaboration of A at 'Fall-Back' with A'_vent",
        headers=["edge source", "edge target"],
        rows=rows,
        notes=[f"child simple: {simple} {why}",
               f"locations of the elaboration: {locations}",
               "the paper highlights that no edge targets 'PumpIn' from 'Risky' because "
               "'PumpIn' is not an initial location of A'_vent"],
        checks={
            "child_is_simple": simple,
            "fallback_replaced": "Fall-Back" not in elaborated.location_names,
            "child_locations_present": {"PumpOut", "PumpIn"} <= elaborated.location_names,
            "ingress_redirected_to_initial": has_risky_to_pumpout,
            "no_edge_to_non_initial_child_location": not has_risky_to_pumpin,
            "egress_replicated_from_all_child_locations": egress_replicated,
            "risky_partition_preserved": elaborated.risky_locations == {"Risky"},
        },
    )
