"""Experiment ``fig3_5``: structure of the design-pattern automata (Figs. 3 and 5).

The paper's Figs. 3 and 5 sketch the Supervisor, Initializer and
Participant automata.  This experiment generates them for a range of entity
counts, reports their location/edge census, and checks the structural
properties the figures convey: the risky partitions, the reachability of
every location on the intended paths, and how the Supervisor grows with
``N`` (one Lease/Cancel/Abort location triple per entity).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.configuration import synthesize_configuration
from repro.core.pattern.builder import build_pattern_system
from repro.core.pattern.roles import EXITING_1, RISKY_CORE, qualified
from repro.experiments.runner import ExperimentResult
from repro.hybrid.analysis import analyze


def run_fig3_5(*, entity_counts: Sequence[int] = (2, 3, 4, 5)) -> ExperimentResult:
    """Generate pattern automata for several ``N`` and report their structure."""
    rows = []
    checks = {}
    for n in entity_counts:
        config = synthesize_configuration(
            n_entities=n,
            enter_safeguards=[2.0] * (n - 1),
            exit_safeguards=[1.0] * (n - 1))
        pattern = build_pattern_system(config)
        reports = {a.name: analyze(a) for a in pattern.system}
        supervisor_report = reports[pattern.supervisor_name]
        rows.append([n, supervisor_report.n_locations, supervisor_report.n_edges,
                     sum(r.n_locations for r in reports.values()),
                     sum(r.n_edges for r in reports.values())])
        # Figs. 3/5 structural facts.
        expected_supervisor_locations = 2 + 3 * n  # Fall-Back, Settle, 3 per entity
        checks[f"supervisor_locations_N{n}"] = (
            supervisor_report.n_locations == expected_supervisor_locations)
        checks[f"no_unreachable_remote_locations_N{n}"] = all(
            not reports[name].unreachable
            for name in pattern.remote_names)
        checks[f"risky_partition_N{n}"] = all(
            pattern.automaton_for(i).risky_locations
            == {qualified(f"xi{i}", RISKY_CORE), qualified(f"xi{i}", EXITING_1)}
            for i in range(1, n + 1))
        checks[f"configuration_valid_N{n}"] = pattern.constraint_report().satisfied
    return ExperimentResult(
        experiment="fig3_5",
        title="Figs. 3/5: design-pattern automata structure vs. number of entities",
        headers=["N", "supervisor |V|", "supervisor |E|", "total |V|", "total |E|"],
        rows=rows,
        notes=["the Supervisor has one Lease/Cancel/Abort location triple per entity "
               "plus Fall-Back and Settle; remote entities always have 6 locations"],
        checks=checks,
    )
