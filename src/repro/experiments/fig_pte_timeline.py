"""Experiment ``fig1``: the PTE timeline of the paper's Fig. 1.

Runs one clean coordination round of the laser-tracheotomy system (scripted
surgeon, lossless channel), extracts the four quantities annotated in
Fig. 1 and checks them against the configured requirements:

* ``t1`` -- how long the ventilator had already been paused (risky) when the
  laser started emitting (must be at least ``T^min_risky:1->2`` = 3 s);
* ``t2`` -- how long the ventilator stayed paused after the laser stopped
  (must be at least ``T^min_safe:2->1`` = 1.5 s);
* ``t3`` -- the ventilator's continuous pause duration (bounded);
* ``t4`` -- the laser's continuous emission duration (bounded).
"""

from __future__ import annotations

from repro.casestudy.config import CaseStudyConfig, LASER, VENTILATOR
from repro.casestudy.emulation import run_trial
from repro.casestudy.surgeon import ScriptedSurgeon
from repro.experiments.runner import ExperimentResult
from repro.wireless.channel import PerfectChannel


def run_fig1(*, config: CaseStudyConfig | None = None,
             request_at: float = 14.0, cancel_at: float = 44.0,
             horizon: float = 120.0) -> ExperimentResult:
    """Run one clean round and measure the Fig. 1 timeline quantities."""
    config = config or CaseStudyConfig()
    surgeon = ScriptedSurgeon(requests_at=[request_at], cancels_at=[cancel_at])
    result = run_trial(config, with_lease=True, seed=1, duration=horizon,
                       channel=PerfectChannel(), surgeon=surgeon, keep_trace=True)
    trace = result.trace
    ventilator_risky = trace.risky_intervals(VENTILATOR)
    laser_risky = trace.risky_intervals(LASER)
    if not ventilator_risky or not laser_risky:
        return ExperimentResult(
            experiment="fig1",
            title="Fig. 1: proper-temporal-embedding timeline",
            notes=["the scripted round produced no risky episode"],
            checks={"round_happened": False})

    vent_start, vent_end = ventilator_risky[0]
    laser_start, laser_end = laser_risky[0]
    t1 = laser_start - vent_start
    t2 = vent_end - laser_end
    t3 = vent_end - vent_start
    t4 = laser_end - laser_start
    rows = [
        ["t1 (enter safeguard)", round(t1, 3), f">= {config.enter_safeguard}"],
        ["t2 (exit safeguard)", round(t2, 3), f">= {config.exit_safeguard}"],
        ["t3 (ventilator pause)", round(t3, 3), f"<= {config.dwelling_bound}"],
        ["t4 (laser emission)", round(t4, 3), f"<= {config.dwelling_bound}"],
    ]
    return ExperimentResult(
        experiment="fig1",
        title="Fig. 1: proper-temporal-embedding timeline of one coordination round",
        headers=["quantity", "measured (s)", "requirement"],
        rows=rows,
        notes=[f"ventilator risky interval: [{vent_start:.2f}, {vent_end:.2f}]",
               f"laser risky interval: [{laser_start:.2f}, {laser_end:.2f}]",
               "measured margins correspond to Theorem 1's guarantees: "
               "t1 ~ T_enter,2 - T_enter,1, t2 ~ T_exit,1"],
        checks={
            "round_happened": True,
            "laser_embedded_in_pause": vent_start <= laser_start and laser_end <= vent_end,
            "enter_safeguard_met": t1 >= config.enter_safeguard - 1e-6,
            "exit_safeguard_met": t2 >= config.exit_safeguard - 1e-6,
            "pause_bounded": t3 <= config.dwelling_bound + 1e-6,
            "emission_bounded": t4 <= config.dwelling_bound + 1e-6,
        },
    )
