"""Experiment ``fig2``: the stand-alone ventilator hybrid automaton of Fig. 2.

Simulates ``A'_vent`` on its own and extracts the cylinder-height
trajectory: a triangle wave bouncing between 0 and 0.3 m with slope
0.1 m/s, i.e. a 6-second period.  The checks assert the amplitude, the
period and the alternation of the two locations.
"""

from __future__ import annotations

from repro.casestudy.ventilator import (CYLINDER_HEIGHT, CYLINDER_SPEED, CYLINDER_TOP,
                                        build_standalone_ventilator)
from repro.experiments.runner import ExperimentResult
from repro.hybrid.simulate.engine import SimulationEngine
from repro.hybrid.system import HybridSystem


def run_fig2(*, horizon: float = 30.0, initial_height: float = CYLINDER_TOP,
             sample_interval: float = 0.1) -> ExperimentResult:
    """Simulate the stand-alone ventilator and report its trajectory."""
    ventilator = build_standalone_ventilator(initial_height=initial_height)
    system = HybridSystem("standalone-ventilator")
    system.add(ventilator)
    engine = SimulationEngine(
        system,
        record_variables=[(ventilator.name, CYLINDER_HEIGHT)],
        sample_interval=sample_interval)
    trace = engine.run(horizon)
    times, values = trace.series(ventilator.name, CYLINDER_HEIGHT)

    expected_period = 2.0 * CYLINDER_TOP / CYLINDER_SPEED
    turnarounds = [r.time for r in trace.transitions_of(ventilator.name)]
    periods = [b - a for a, b in zip(turnarounds, turnarounds[2:])]
    period_ok = all(abs(p - expected_period) < 1e-6 for p in periods) and bool(periods)
    amplitude_ok = (values and max(values) <= CYLINDER_TOP + 1e-9
                    and min(values) >= -1e-9)
    pump_cycle = [v.location for v in trace.visits(ventilator.name)]
    alternates = all(a != b for a, b in zip(pump_cycle, pump_cycle[1:]))

    rows = [[round(t, 2), round(v, 4)] for t, v in zip(times, values)][:12]
    return ExperimentResult(
        experiment="fig2",
        title="Fig. 2: stand-alone ventilator A'_vent cylinder trajectory",
        headers=["t (s)", "H_vent (m)"],
        rows=rows,
        series={"H_vent(t)": (times, values)},
        notes=[f"expected triangle wave: amplitude {CYLINDER_TOP} m, period "
               f"{expected_period:.1f} s at {CYLINDER_SPEED} m/s",
               f"observed {len(turnarounds)} turnarounds in {horizon:.0f} s"],
        checks={
            "bounded_amplitude": bool(amplitude_ok),
            "constant_period": period_ok,
            "locations_alternate": alternates,
        },
    )
