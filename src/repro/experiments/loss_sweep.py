"""Experiment ``loss_sweep``: robustness envelope over packet-loss rates.

An extension beyond the paper's Table I: sweep the memoryless loss
probability from 0 to 0.9 and, for each level, run matched trials of the
lease design and of the no-lease baseline.  The lease design must stay
failure-free at every loss level (Theorem 1 promises safety under
*arbitrary* loss); the baseline's failures grow with the loss rate, and its
effective throughput (laser emissions per trial) collapses.
"""

from __future__ import annotations

from typing import Sequence

from repro.casestudy.config import CaseStudyConfig
from repro.casestudy.emulation import run_trial
from repro.experiments.runner import ExperimentResult
from repro.wireless.channel import BernoulliChannel


def run_loss_sweep(*, config: CaseStudyConfig | None = None,
                   loss_levels: Sequence[float] = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9),
                   duration: float = 900.0, seeds: Sequence[int] = (1, 2)) -> ExperimentResult:
    """Sweep loss probability and compare lease vs. no-lease outcomes."""
    config = config or CaseStudyConfig()
    rows = []
    lease_failures_total = 0
    baseline_failures_by_level = {}
    for loss in loss_levels:
        for with_lease in (True, False):
            emissions = failures = evt_to_stop = 0
            for seed in seeds:
                channel = BernoulliChannel(loss, seed=seed)
                result = run_trial(config, with_lease=with_lease, seed=seed,
                                   duration=duration, channel=channel)
                emissions += result.laser_emissions
                failures += result.failures
                evt_to_stop += result.evt_to_stop
            rows.append([loss, "with lease" if with_lease else "without lease",
                         emissions, failures, evt_to_stop])
            if with_lease:
                lease_failures_total += failures
            else:
                baseline_failures_by_level[loss] = failures
    high_loss_baseline_fails = any(
        failures > 0 for loss, failures in baseline_failures_by_level.items()
        if loss >= 0.5)
    return ExperimentResult(
        experiment="loss_sweep",
        title="Extension: failures vs. packet-loss probability (lease vs. no lease)",
        headers=["loss probability", "mode", "emissions", "failures", "evtToStop"],
        rows=rows,
        notes=[f"each cell aggregates {len(seeds)} trials of {duration:.0f}s",
               "Theorem 1 promises lease safety under arbitrary loss, so the "
               "with-lease failure column must be all zeros"],
        checks={
            "lease_safe_at_every_loss_level": lease_failures_total == 0,
            "baseline_fails_under_heavy_loss": high_loss_baseline_fails,
        },
    )
