"""Experiment ``loss_sweep``: robustness envelope over packet-loss rates.

An extension beyond the paper's Table I: sweep the memoryless loss
probability from 0 to 0.9 and, for each level, run matched trials of the
lease design and of the no-lease baseline.  The lease design must stay
failure-free at every loss level (Theorem 1 promises safety under
*arbitrary* loss); the baseline's failures grow with the loss rate, and its
effective throughput (laser emissions per trial) collapses.

The sweep is a campaign: every (loss level, mode) cell is a
:class:`~repro.campaign.spec.TrialSpec`, so scaling the trial counts or
fanning out across processes is a parameter change, not new code.
"""

from __future__ import annotations

from typing import Sequence

from repro.campaign.executor import run_campaign
from repro.campaign.presets import loss_sweep_result, loss_sweep_spec
from repro.casestudy.config import CaseStudyConfig
from repro.experiments.runner import ExperimentResult


def run_loss_sweep(*, config: CaseStudyConfig | None = None,
                   loss_levels: Sequence[float] = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9),
                   duration: float = 900.0, seeds: Sequence[int] = (1, 2),
                   max_workers: int = 1) -> ExperimentResult:
    """Sweep loss probability and compare lease vs. no-lease outcomes."""
    spec = loss_sweep_spec(config, loss_levels=loss_levels, duration=duration,
                           seeds=seeds)
    campaign = run_campaign(spec, seed=min(seeds, default=0),
                            max_workers=max_workers)
    return loss_sweep_result(campaign)
