"""Common result container for the experiment drivers.

Each experiment module (one per paper table/figure plus the extensions)
exposes a ``run_*`` function returning an :class:`ExperimentResult`: a
named table of rows, optional time series, and free-form notes recording
how the reproduction relates to the paper's artifact.  The benchmark
harness prints these results; EXPERIMENTS.md summarizes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.util.tables import format_series, format_table


@dataclass
class ExperimentResult:
    """Outcome of one experiment run.

    Attributes:
        experiment: Experiment identifier (e.g. ``"table1"``, ``"fig2"``).
        title: Human-readable title matching the paper artifact.
        headers: Column names of the result table.
        rows: Table rows.
        series: Optional named time series ``name -> (times, values)``.
        notes: Free-form notes (paper-vs-measured commentary).
        checks: Named boolean claims that must hold for the reproduction to
            be considered successful (tests assert on these).
    """

    experiment: str
    title: str
    headers: Sequence[str] = ()
    rows: List[Sequence[object]] = field(default_factory=list)
    series: Dict[str, tuple[List[float], List[float]]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """True when every recorded check holds."""
        return all(self.checks.values())

    def failed_checks(self) -> List[str]:
        """Names of the checks that did not hold."""
        return [name for name, ok in self.checks.items() if not ok]

    def render(self) -> str:
        """Render the full experiment result as printable text."""
        parts: List[str] = []
        if self.headers or self.rows:
            parts.append(format_table(self.headers, self.rows, title=self.title))
        else:
            parts.append(self.title)
        for name, (times, values) in self.series.items():
            parts.append(format_series(name, times, values))
        for note in self.notes:
            parts.append(f"note: {note}")
        status = "PASS" if self.passed else f"FAIL ({', '.join(self.failed_checks())})"
        parts.append(f"checks: {status}")
        return "\n".join(parts)
