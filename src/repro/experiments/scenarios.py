"""Experiment ``scenarios``: the qualitative failure stories of Section V.

The paper walks through three scenarios to explain *why* the leases and the
parameter constraints matter.  This experiment scripts each of them
deterministically and compares the lease-based design against the no-lease
baseline:

* **forgetful surgeon** -- the surgeon "forgets" to cancel the laser
  (``Toff`` effectively infinite) and the supervisor's abort chain is
  blacked out.  With leases the emission stops at ``T^max_run,2`` = 20 s;
  without leases it runs away.
* **lost cancel** -- the surgeon does cancel, but the uplink notification to
  the supervisor is blacked out, so the supervisor cannot order the
  ventilator to resume.  With leases the ventilator resumes at
  ``T^max_run,1`` = 35 s; without leases (and with the supervisor's
  recovery also blacked out) the pause exceeds the 1-minute bound.
* The third scenario (misconfigured ``T^max_enter`` violating condition c5)
  is covered by the ``ablation_c5`` experiment.
"""

from __future__ import annotations

from dataclasses import replace

from repro.casestudy.config import CaseStudyConfig, LASER, VENTILATOR
from repro.casestudy.emulation import run_trial
from repro.casestudy.surgeon import ScriptedSurgeon
from repro.experiments.runner import ExperimentResult
from repro.wireless.channel import ScriptedChannel


def _scenario_trial(config: CaseStudyConfig, *, with_lease: bool,
                    surgeon: ScriptedSurgeon, loss_windows, horizon: float):
    """Run one deterministic scenario trial."""
    channel = ScriptedChannel(loss_windows)
    return run_trial(config, with_lease=with_lease, seed=0, duration=horizon,
                     channel=channel, surgeon=surgeon, keep_trace=True)


def run_scenarios(*, config: CaseStudyConfig | None = None) -> ExperimentResult:
    """Run the scripted Section V scenarios with and without leases."""
    config = config or CaseStudyConfig()
    # Disable supervisor retransmissions: the paper's stories assume single
    # sends, and retransmissions would mask the no-lease failures here.
    config = replace(config, supervisor_resend_limit=0)
    horizon = 240.0
    rows = []
    checks = {}

    # Scenario 1: forgetful surgeon + blacked-out abort path.
    #   request at t=14, never cancels; all wireless traffic after t=30 lost.
    for with_lease in (True, False):
        surgeon = ScriptedSurgeon(requests_at=[14.0])
        result = _scenario_trial(config, with_lease=with_lease, surgeon=surgeon,
                                 loss_windows=[(30.0, horizon)], horizon=horizon)
        rows.append(["forgetful surgeon", "with lease" if with_lease else "without lease",
                     round(result.max_emission_duration, 1),
                     round(result.max_pause_duration, 1), result.failures])
        key = "forgetful_surgeon_" + ("lease_safe" if with_lease else "baseline_fails")
        checks[key] = (result.failures == 0) if with_lease else (result.failures > 0)

    # Scenario 2: surgeon cancels at t=40 but every wireless packet from
    # t=38 onward is lost, so the supervisor never learns about it and its
    # own cancel to the ventilator is lost as well.
    for with_lease in (True, False):
        surgeon = ScriptedSurgeon(requests_at=[14.0], cancels_at=[40.0])
        result = _scenario_trial(config, with_lease=with_lease, surgeon=surgeon,
                                 loss_windows=[(38.0, horizon)], horizon=horizon)
        rows.append(["lost cancel", "with lease" if with_lease else "without lease",
                     round(result.max_emission_duration, 1),
                     round(result.max_pause_duration, 1), result.failures])
        key = "lost_cancel_" + ("lease_safe" if with_lease else "baseline_fails")
        checks[key] = (result.failures == 0) if with_lease else (result.failures > 0)

    return ExperimentResult(
        experiment="scenarios",
        title="Section V failure scenarios under scripted losses (lease vs. no lease)",
        headers=["scenario", "mode", "max emission (s)", "max pause (s)", "failures"],
        rows=rows,
        notes=["scenario 3 (T_enter misconfiguration violating c5) is the "
               "ablation_c5 experiment",
               "with leases the laser stops within T_run,2=20 s and the ventilator "
               "resumes within T_run,1=35 s even under a total blackout"],
        checks=checks,
    )
