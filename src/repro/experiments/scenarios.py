"""Experiment ``scenarios``: the qualitative failure stories of Section V.

The paper walks through three scenarios to explain *why* the leases and the
parameter constraints matter.  This experiment scripts each of them
deterministically and compares the lease-based design against the no-lease
baseline:

* **forgetful surgeon** -- the surgeon "forgets" to cancel the laser
  (``Toff`` effectively infinite) and the supervisor's abort chain is
  blacked out.  With leases the emission stops at ``T^max_run,2`` = 20 s;
  without leases it runs away.
* **lost cancel** -- the surgeon does cancel, but the uplink notification to
  the supervisor is blacked out, so the supervisor cannot order the
  ventilator to resume.  With leases the ventilator resumes at
  ``T^max_run,1`` = 35 s; without leases (and with the supervisor's
  recovery also blacked out) the pause exceeds the 1-minute bound.
* The third scenario (misconfigured ``T^max_enter`` violating condition c5)
  is covered by the ``ablation_c5`` experiment.

Each story is a deterministic :class:`~repro.campaign.spec.TrialSpec`
(scripted surgeon, scripted loss windows, no supervisor retransmissions,
pinned seed) executed through the campaign layer.
"""

from __future__ import annotations

from repro.campaign.executor import run_campaign
from repro.campaign.presets import scenarios_result, scenarios_spec
from repro.casestudy.config import CaseStudyConfig
from repro.experiments.runner import ExperimentResult


def run_scenarios(*, config: CaseStudyConfig | None = None,
                  max_workers: int = 1) -> ExperimentResult:
    """Run the scripted Section V scenarios with and without leases."""
    spec = scenarios_spec(config)
    campaign = run_campaign(spec, seed=0, max_workers=max_workers)
    return scenarios_result(campaign)
