"""Experiment ``table1``: reproduce the paper's Table I.

Four 30-minute trials -- {with lease, without lease} x {E(Toff) = 18 s,
6 s} -- under constant WiFi-style burst interference, counting laser
emissions, PTE safety-rule violations (failures) and forced lease-expiry
stops (``evtToStop``).

We do not expect to match the paper's absolute counts (its losses came
from a physical 802.11g interferer next to ZigBee motes; ours from a
calibrated burst-loss model), but the *shape* must hold and is asserted in
the result's checks:

* every "with Lease" trial has zero failures;
* "without Lease" trials do exhibit failures;
* lease expirations (``evtToStop``) occur only in "with Lease" trials and
  are more frequent for the longer E(Toff).

The trials execute through the campaign layer: ``replicates`` scales each
of the four cells to a Monte-Carlo batch and ``max_workers`` fans the
batch out across processes, with bit-identical aggregates for any worker
count (``python -m repro.campaign --experiment table1`` exposes the same
knobs on the command line).
"""

from __future__ import annotations

from typing import Sequence

from repro.campaign.executor import run_campaign
from repro.campaign.presets import table1_result, table1_spec
from repro.casestudy.config import CaseStudyConfig
from repro.experiments.runner import ExperimentResult

#: The rows of the paper's Table I, for side-by-side comparison.
PAPER_TABLE1 = (
    ("with Lease", 18, 19, 0, 5),
    ("without Lease", 18, 11, 4, 0),
    ("with Lease", 6, 19, 0, 3),
    ("without Lease", 6, 12, 3, 0),
)


def run_table1(*, config: CaseStudyConfig | None = None, seed: int = 42,
               duration: float | None = None,
               mean_toffs: Sequence[float] = (18.0, 6.0),
               replicates: int = 1, max_workers: int = 1) -> ExperimentResult:
    """Run the Table I reproduction and compare its shape against the paper.

    Args:
        config: Case-study configuration (paper defaults when omitted).
        seed: Master seed for the trials.
        duration: Trial length override (defaults to the paper's 30 minutes;
            tests use shorter trials).
        mean_toffs: Surgeon E(Toff) values, one trial pair per value.
        replicates: Independent trials per Table I cell (1 reproduces the
            paper's single-trial table; more turns each row into a
            Monte-Carlo aggregate).
        max_workers: Worker processes for the campaign executor.
    """
    spec = table1_spec(config, mean_toffs=mean_toffs, duration=duration,
                       replicates=replicates, legacy_seed=seed)
    campaign = run_campaign(spec, seed=seed, max_workers=max_workers)
    return table1_result(campaign)
