"""Experiment ``table1``: reproduce the paper's Table I.

Four 30-minute trials -- {with lease, without lease} x {E(Toff) = 18 s,
6 s} -- under constant WiFi-style burst interference, counting laser
emissions, PTE safety-rule violations (failures) and forced lease-expiry
stops (``evtToStop``).

We do not expect to match the paper's absolute counts (its losses came
from a physical 802.11g interferer next to ZigBee motes; ours from a
calibrated burst-loss model), but the *shape* must hold and is asserted in
the result's checks:

* every "with Lease" trial has zero failures;
* "without Lease" trials do exhibit failures;
* lease expirations (``evtToStop``) occur only in "with Lease" trials and
  are more frequent for the longer E(Toff).
"""

from __future__ import annotations

from typing import Sequence

from repro.casestudy.config import CaseStudyConfig
from repro.casestudy.emulation import run_table1_trials, summarize_trials
from repro.experiments.runner import ExperimentResult

#: The rows of the paper's Table I, for side-by-side comparison.
PAPER_TABLE1 = (
    ("with Lease", 18, 19, 0, 5),
    ("without Lease", 18, 11, 4, 0),
    ("with Lease", 6, 19, 0, 3),
    ("without Lease", 6, 12, 3, 0),
)


def run_table1(*, config: CaseStudyConfig | None = None, seed: int = 42,
               duration: float | None = None,
               mean_toffs: Sequence[float] = (18.0, 6.0)) -> ExperimentResult:
    """Run the Table I reproduction and compare its shape against the paper.

    Args:
        config: Case-study configuration (paper defaults when omitted).
        seed: Master seed for the four trials.
        duration: Trial length override (defaults to the paper's 30 minutes;
            tests use shorter trials).
        mean_toffs: Surgeon E(Toff) values, one trial pair per value.
    """
    results = run_table1_trials(config, seed=seed, duration=duration,
                                mean_toffs=mean_toffs)
    summary = summarize_trials(results)
    headers = ["Trial Mode", "E(Toff) (s)", "# Laser Emissions", "# Failures",
               "# evtToStop", "max pause (s)", "max emission (s)", "loss ratio"]
    rows = [[r.mode, r.mean_toff, r.laser_emissions, r.failures, r.evt_to_stop,
             round(r.max_pause_duration, 1), round(r.max_emission_duration, 1),
             round(r.observed_loss_ratio, 2)] for r in results]

    with_lease = [r for r in results if r.with_lease]
    without_lease = [r for r in results if not r.with_lease]
    long_toff_stop = sum(r.evt_to_stop for r in with_lease if r.mean_toff >= 18.0)
    result = ExperimentResult(
        experiment="table1",
        title="Table I: PTE safety rule violation (failure) statistics of emulation trials",
        headers=headers,
        rows=rows,
        notes=[
            "paper rows (mode, E(Toff), emissions, failures, evtToStop): "
            + "; ".join(str(row) for row in PAPER_TABLE1),
            "losses come from a calibrated Gilbert-Elliott burst channel instead of a "
            "physical 802.11g interferer; absolute counts differ, the win/lose shape "
            "must not.",
        ],
        checks={
            "with_lease_never_fails": summary["lease_always_safe"],
            "baseline_does_fail": summary["baseline_fails"],
            "evt_to_stop_only_with_lease": all(r.evt_to_stop == 0 for r in without_lease),
            "lease_forced_stops_happen": long_toff_stop > 0,
        },
    )
    return result
