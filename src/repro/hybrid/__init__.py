"""Hybrid automata formalism, composition, elaboration and simulation.

This package is the substrate the paper's design-pattern work stands on:
hybrid automata (Section II-A), hybrid systems (Section II-B), the
elaboration methodology (Section IV-C) and an executable semantics used for
validation.
"""

from repro.hybrid.automaton import HybridAutomaton
from repro.hybrid.edges import Edge, IDENTITY_RESET, Reset, reset_clock
from repro.hybrid.elaboration import (are_independent, are_mutually_independent,
                                      assert_independent, elaborate, elaborate_parallel,
                                      elaboration_history, is_simple)
from repro.hybrid.expressions import (And, BoxPredicate, Comparison, FunctionPredicate,
                                      LinearInequality, Not, Or, Predicate, TRUE, FALSE,
                                      var_eq, var_ge, var_gt, var_le, var_lt)
from repro.hybrid.flows import (CallableFlow, CompositeFlow, ConstantFlow, Flow,
                                STATIONARY, clock_flow)
from repro.hybrid.labels import (Prefix, SyncLabel, internal, parse_label, receive,
                                 receive_lossy, send)
from repro.hybrid.locations import Location
from repro.hybrid.state import AutomatonState, SystemState
from repro.hybrid.system import HybridSystem
from repro.hybrid.trace import EventRecord, LocationVisit, Trace, TransitionRecord
from repro.hybrid.simulate import (BatchedEngine, CallbackProcess, CompiledEngine,
                                   CompiledSystem, Coupling, DwellTracker,
                                   EnvironmentProcess, FunctionCoupling, Lane,
                                   LocationIndicatorCoupling, Network,
                                   PerfectNetwork, SimulationEngine, TraceObserver,
                                   TraceRecorder, VariableCopyCoupling, build_engine,
                                   compile_system, resolve_engine_kind, simulate)

__all__ = [
    # automaton building blocks
    "HybridAutomaton", "Location", "Edge", "Reset", "IDENTITY_RESET", "reset_clock",
    "Prefix", "SyncLabel", "send", "receive", "receive_lossy", "internal", "parse_label",
    # predicates and flows
    "Predicate", "TRUE", "FALSE", "And", "Or", "Not", "LinearInequality", "BoxPredicate",
    "FunctionPredicate", "Comparison", "var_ge", "var_le", "var_gt", "var_lt", "var_eq",
    "Flow", "ConstantFlow", "CallableFlow", "CompositeFlow", "STATIONARY", "clock_flow",
    # composition and execution
    "HybridSystem", "AutomatonState", "SystemState",
    "Trace", "TransitionRecord", "EventRecord", "LocationVisit",
    "SimulationEngine", "CompiledEngine", "BatchedEngine", "Lane",
    "CompiledSystem", "compile_system",
    "build_engine", "resolve_engine_kind", "simulate", "Network", "PerfectNetwork",
    "TraceObserver", "TraceRecorder", "DwellTracker",
    "EnvironmentProcess", "CallbackProcess", "Coupling", "FunctionCoupling",
    "LocationIndicatorCoupling", "VariableCopyCoupling",
    # elaboration methodology
    "elaborate", "elaborate_parallel", "elaboration_history", "is_simple",
    "are_independent", "are_mutually_independent", "assert_independent",
]
