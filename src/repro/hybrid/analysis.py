"""Structural analysis helpers for hybrid automata.

The paper assumes every automaton is time-block-free and non-Zeno
(Section IV-C, footnote 3).  Full verification of those properties is
undecidable in general; this module provides the light-weight structural
analyses the library actually needs:

* discrete reachability of locations (ignoring guards), used to sanity
  check generated pattern automata and elaborations;
* detection of locations with a finite invariant horizon but no ASAP egress
  edge (a structural hint of time blocking);
* detection of potential Zeno cycles: cycles of ASAP edges whose guards do
  not require any clock progress (structural heuristic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from repro.hybrid.automaton import HybridAutomaton
from repro.hybrid.expressions import (And, Comparison, LinearInequality, Or,
                                      Predicate, TruePredicate)


def reachable_locations(automaton: HybridAutomaton,
                        start: str | None = None) -> Set[str]:
    """Locations reachable from ``start`` through the discrete edge graph.

    Guards and synchronization are ignored, so this is an over-approximation
    of the reachable discrete state space -- sufficient for checking that a
    generated automaton has no orphaned locations on its intended paths.
    """
    origin = start or automaton.initial_location
    if origin is None:
        return set()
    frontier = [origin]
    seen: Set[str] = {origin}
    adjacency: Dict[str, List[str]] = {}
    for edge in automaton.edges:
        adjacency.setdefault(edge.source, []).append(edge.target)
    while frontier:
        location = frontier.pop()
        for target in adjacency.get(location, []):
            if target not in seen:
                seen.add(target)
                frontier.append(target)
    return seen


def unreachable_locations(automaton: HybridAutomaton) -> Set[str]:
    """Locations that the discrete graph cannot reach from the initial one."""
    return automaton.location_names - reachable_locations(automaton)


def _requires_clock_progress(guard: Predicate) -> bool:
    """Heuristic: does the guard require a clock to advance strictly above zero?

    Used by the Zeno heuristic: a cycle all of whose edges can fire with all
    clocks at zero may be traversed without letting time pass.
    """
    if isinstance(guard, LinearInequality):
        if guard.op in (Comparison.GE, Comparison.GT):
            return guard.threshold > 0
        return False
    if isinstance(guard, And):
        return any(_requires_clock_progress(p) for p in guard.operands)
    if isinstance(guard, Or):
        return all(_requires_clock_progress(p) for p in guard.operands)
    return False


def potential_zeno_cycles(automaton: HybridAutomaton) -> List[List[str]]:
    """Cycles made only of ASAP edges that require no clock progress.

    Returns a list of location cycles (each as a list of location names).
    An empty list means the structural heuristic found no Zeno risk; a
    non-empty list is a warning, not a proof of Zeno behaviour.
    """
    adjacency: Dict[str, List[str]] = {}
    for edge in automaton.edges:
        if edge.is_event_triggered:
            continue
        if _requires_clock_progress(edge.guard):
            continue
        adjacency.setdefault(edge.source, []).append(edge.target)

    cycles: List[List[str]] = []
    visited: Set[str] = set()

    def dfs(node: str, stack: List[str], on_stack: Set[str]) -> None:
        visited.add(node)
        stack.append(node)
        on_stack.add(node)
        for target in adjacency.get(node, []):
            if target in on_stack:
                index = stack.index(target)
                cycles.append(stack[index:] + [target])
            elif target not in visited:
                dfs(target, stack, on_stack)
        stack.pop()
        on_stack.discard(node)

    for location in automaton.locations:
        if location not in visited:
            dfs(location, [], set())
    return cycles


def locations_without_egress(automaton: HybridAutomaton) -> Set[str]:
    """Locations with no outgoing edge at all (potential dead ends)."""
    with_egress = {edge.source for edge in automaton.edges}
    return automaton.location_names - with_egress


def timeblock_suspects(automaton: HybridAutomaton) -> Set[str]:
    """Locations whose invariant is bounded but that have no ASAP egress edge.

    If a location's invariant forces the automaton to leave in finite time
    but every outgoing edge waits for an event that might never arrive, an
    execution could be forced to block time.  This is the structural signal
    corresponding to the time-block-freedom assumption.
    """
    suspects: Set[str] = set()
    for name, location in automaton.locations.items():
        if isinstance(location.invariant, TruePredicate):
            continue
        has_asap = any(edge.is_asap for edge in automaton.edges_from(name))
        if not has_asap:
            suspects.add(name)
    return suspects


@dataclass
class StructuralReport:
    """Summary of the structural analyses for one automaton."""

    automaton: str
    n_locations: int
    n_edges: int
    n_risky: int
    unreachable: Set[str] = field(default_factory=set)
    dead_ends: Set[str] = field(default_factory=set)
    zeno_cycles: List[List[str]] = field(default_factory=list)
    timeblock: Set[str] = field(default_factory=set)

    @property
    def clean(self) -> bool:
        """True when no structural warning was produced."""
        return (not self.unreachable and not self.dead_ends
                and not self.zeno_cycles and not self.timeblock)

    def summary(self) -> str:
        """One-line human readable summary."""
        status = "clean" if self.clean else "warnings"
        return (f"{self.automaton}: |V|={self.n_locations} |E|={self.n_edges} "
                f"risky={self.n_risky} [{status}]")


def analyze(automaton: HybridAutomaton) -> StructuralReport:
    """Run every structural analysis on ``automaton`` and collect a report."""
    return StructuralReport(
        automaton=automaton.name,
        n_locations=len(automaton.locations),
        n_edges=len(automaton.edges),
        n_risky=len(automaton.risky_locations),
        unreachable=unreachable_locations(automaton),
        dead_ends=locations_without_egress(automaton),
        zeno_cycles=potential_zeno_cycles(automaton),
        timeblock=timeblock_suspects(automaton),
    )


def analyze_system(automata: Iterable[HybridAutomaton]) -> List[StructuralReport]:
    """Analyze several automata (e.g. every member of a hybrid system)."""
    return [analyze(a) for a in automata]
