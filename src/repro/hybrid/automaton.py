"""The hybrid automaton class (paper Section II-A).

A hybrid automaton is the tuple ``(x(t), V, inv, F, E, g, R, L, syn, Phi0)``.
:class:`HybridAutomaton` stores the same information in a form convenient
for simulation and transformation:

* data state variables -> :attr:`HybridAutomaton.variables`
* locations ``V`` with their invariants ``inv`` and flows ``F``
  -> :attr:`HybridAutomaton.locations` (mapping name -> :class:`Location`)
* edges ``E`` with guards ``g``, resets ``R`` and synchronization labels
  -> :attr:`HybridAutomaton.edges`
* initial states ``Phi0`` -> :attr:`initial_location` and
  :attr:`initial_valuation` (the pattern automata always start from a single
  location with the all-zero data state, and the case-study automata allow a
  configurable initial valuation)
* the safe/risky partition of ``V`` used by the PTE safety rules
  -> :attr:`risky_locations`
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

from repro.errors import ModelError
from repro.hybrid.edges import Edge
from repro.hybrid.labels import SyncLabel
from repro.hybrid.locations import Location
from repro.hybrid.variables import Valuation, zero_valuation


class HybridAutomaton:
    """A single hybrid automaton.

    Instances are mutable while being built (locations and edges can be
    added incrementally) but the simulator never mutates them.

    Args:
        name: Automaton name, unique within a hybrid system.
        variables: Names of the data state variables.
        locations: Initial set of locations.
        edges: Initial set of edges.
        initial_location: Name of the initial location.
        initial_valuation: Initial data state; defaults to all zeros.
        metadata: Free-form annotations (e.g. the pattern role).
    """

    def __init__(self, name: str, *, variables: Sequence[str] = (),
                 locations: Iterable[Location] = (), edges: Iterable[Edge] = (),
                 initial_location: str | None = None,
                 initial_valuation: Mapping[str, float] | None = None,
                 metadata: Mapping[str, object] | None = None):
        if not name:
            raise ModelError("automaton name must be non-empty")
        self.name = name
        self.variables: list[str] = list(dict.fromkeys(variables))
        self.locations: Dict[str, Location] = {}
        self.edges: list[Edge] = []
        self.initial_location: str | None = initial_location
        self._initial_valuation = (Valuation(initial_valuation)
                                   if initial_valuation is not None else None)
        self.metadata: Dict[str, object] = dict(metadata or {})
        for location in locations:
            self.add_location(location)
        for edge in edges:
            self.add_edge(edge)

    # -- construction ------------------------------------------------------
    def add_variable(self, name: str) -> None:
        """Declare a data state variable if not already declared."""
        if name not in self.variables:
            self.variables.append(name)

    def add_location(self, location: Location) -> Location:
        """Add a location; raises :class:`ModelError` on duplicate names."""
        if location.name in self.locations:
            raise ModelError(
                f"automaton {self.name!r} already has a location named {location.name!r}")
        self.locations[location.name] = location
        return location

    def replace_location(self, location: Location) -> None:
        """Replace an existing location definition (same name)."""
        if location.name not in self.locations:
            raise ModelError(
                f"automaton {self.name!r} has no location named {location.name!r}")
        self.locations[location.name] = location

    def add_edge(self, edge: Edge) -> Edge:
        """Add an edge; source and target must refer to existing locations."""
        if edge.source not in self.locations:
            raise ModelError(
                f"edge source {edge.source!r} is not a location of automaton {self.name!r}")
        if edge.target not in self.locations:
            raise ModelError(
                f"edge target {edge.target!r} is not a location of automaton {self.name!r}")
        self.edges.append(edge)
        return edge

    # -- formal-tuple style accessors ---------------------------------------
    @property
    def dimension(self) -> int:
        """The number of data state variables (``n`` in the paper)."""
        return len(self.variables)

    @property
    def location_names(self) -> set[str]:
        """The location set ``V``."""
        return set(self.locations)

    @property
    def risky_locations(self) -> set[str]:
        """The risky partition ``V^risky`` (locations flagged risky)."""
        return {name for name, loc in self.locations.items() if loc.risky}

    @property
    def safe_locations(self) -> set[str]:
        """The safe partition ``V^safe`` (complement of the risky set)."""
        return {name for name, loc in self.locations.items() if not loc.risky}

    @property
    def initial_valuation(self) -> Valuation:
        """The initial data state (defaults to the zero vector)."""
        if self._initial_valuation is not None:
            return self._initial_valuation
        return zero_valuation(self.variables)

    @initial_valuation.setter
    def initial_valuation(self, values: Mapping[str, float]) -> None:
        self._initial_valuation = Valuation(values)

    def mark_risky(self, *location_names: str) -> None:
        """Flag the given locations as risky (members of ``V^risky``)."""
        for name in location_names:
            if name not in self.locations:
                raise ModelError(
                    f"cannot mark unknown location {name!r} risky in automaton {self.name!r}")
            self.locations[name] = self.locations[name].with_risky(True)

    # -- queries -------------------------------------------------------------
    def location(self, name: str) -> Location:
        """Return the location named ``name``."""
        try:
            return self.locations[name]
        except KeyError as exc:
            raise ModelError(
                f"automaton {self.name!r} has no location named {name!r}") from exc

    def edges_from(self, location_name: str) -> list[Edge]:
        """Return all edges whose source is ``location_name``."""
        return [e for e in self.edges if e.source == location_name]

    def edges_to(self, location_name: str) -> list[Edge]:
        """Return all edges whose target is ``location_name``."""
        return [e for e in self.edges if e.target == location_name]

    def sync_labels(self) -> set[SyncLabel]:
        """The synchronization label set ``L`` of this automaton."""
        labels: set[SyncLabel] = set()
        for edge in self.edges:
            labels |= edge.sync_labels()
        return labels

    def sync_roots(self) -> set[str]:
        """All event roots referenced by this automaton."""
        return {label.root for label in self.sync_labels()}

    def received_roots(self) -> set[str]:
        """Event roots this automaton can receive (``?`` or ``??`` labels)."""
        return {label.root for label in self.sync_labels() if label.is_receive}

    def emitted_roots(self) -> set[str]:
        """Event roots this automaton can broadcast (``!`` labels)."""
        return {label.root for label in self.sync_labels() if label.is_send}

    def is_risky(self, location_name: str) -> bool:
        """True when ``location_name`` belongs to the risky partition."""
        return self.location(location_name).risky

    # -- validation ----------------------------------------------------------
    def validate(self) -> None:
        """Check structural well-formedness; raise :class:`ModelError` if not.

        Checks performed:

        * an initial location is declared and exists;
        * every edge connects existing locations (guaranteed by
          :meth:`add_edge`, re-checked for automata assembled externally);
        * the initial valuation only assigns declared variables;
        * the initial valuation satisfies the initial location's invariant.
        """
        if self.initial_location is None:
            raise ModelError(f"automaton {self.name!r} has no initial location")
        if self.initial_location not in self.locations:
            raise ModelError(
                f"initial location {self.initial_location!r} of automaton "
                f"{self.name!r} is not declared")
        declared = set(self.variables)
        for variable in self.initial_valuation:
            if variable not in declared:
                raise ModelError(
                    f"initial valuation of automaton {self.name!r} assigns "
                    f"undeclared variable {variable!r}")
        for edge in self.edges:
            if edge.source not in self.locations or edge.target not in self.locations:
                raise ModelError(
                    f"edge {edge!r} of automaton {self.name!r} references unknown locations")
        initial = self.locations[self.initial_location]
        if not initial.invariant.evaluate(self.initial_valuation):
            raise ModelError(
                f"initial valuation of automaton {self.name!r} violates the "
                f"invariant of its initial location {self.initial_location!r}")

    # -- transformation helpers ----------------------------------------------
    def copy(self, new_name: str | None = None) -> "HybridAutomaton":
        """Return a deep-enough copy (locations/edges are immutable values)."""
        clone = HybridAutomaton(
            new_name or self.name,
            variables=list(self.variables),
            locations=list(self.locations.values()),
            edges=list(self.edges),
            initial_location=self.initial_location,
            initial_valuation=(self._initial_valuation.as_dict()
                               if self._initial_valuation is not None else None),
            metadata=dict(self.metadata),
        )
        return clone

    def __repr__(self) -> str:
        return (f"HybridAutomaton({self.name!r}, |V|={len(self.locations)}, "
                f"|E|={len(self.edges)}, vars={self.variables})")
