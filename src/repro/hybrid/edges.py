"""Edges (discrete transitions) of a hybrid automaton (Section II-A, items 5-8).

An edge carries a guard, a reset function and synchronization information.
Relative to the bare formal definition we add two pragmatic fields that the
paper expresses through zero-dwell intermediate locations:

* ``emits`` -- events broadcast when the edge fires (the paper's ``!l``
  labels on the outgoing half of an intermediate location);
* ``reason`` -- a human-readable tag recording *why* a transition exists
  (``"lease_expiry"``, ``"abort"``, ...).  The Table I statistic
  ``evtToStop`` is counted by filtering transition records on this tag.

Edges are *event-triggered* when :attr:`Edge.trigger` is set (they fire when
the event is delivered and the guard holds) and *ASAP* otherwise (they fire
as soon as the guard becomes true).  ASAP semantics realise the usual
"urgent transition" idiom of timed automata, which is how every dwell-time
bound in the design pattern is expressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

from repro.hybrid.expressions import Predicate, TRUE
from repro.hybrid.labels import Prefix, SyncLabel
from repro.hybrid.variables import Valuation


@dataclass(frozen=True)
class Reset:
    """A reset function ``r_e`` applied to the data state when an edge fires.

    The default reset is the identity.  Assignments are applied on top of
    the current valuation, so variables that are not mentioned keep their
    value (this is the overwhelmingly common case: clocks are reset to zero,
    everything else is untouched).
    """

    assignments: Mapping[str, float] = field(default_factory=dict)
    function: Callable[[Valuation], Mapping[str, float]] | None = None

    def apply(self, valuation: Valuation) -> Valuation:
        """Return the post-transition valuation."""
        updated = valuation
        if self.assignments:
            updated = updated.updated(self.assignments)
        if self.function is not None:
            updated = updated.updated(self.function(updated))
        return updated

    @property
    def is_identity(self) -> bool:
        """True when this reset leaves every variable unchanged."""
        return not self.assignments and self.function is None

    def __repr__(self) -> str:
        if self.is_identity:
            return "Reset(identity)"
        inner = ", ".join(f"{k}:={v:g}" for k, v in sorted(self.assignments.items()))
        if self.function is not None:
            inner = (inner + ", " if inner else "") + "<function>"
        return f"Reset({inner})"


IDENTITY_RESET = Reset()


def reset_clock(*names: str) -> Reset:
    """Build a reset that sets each named clock back to zero."""
    return Reset({name: 0.0 for name in names})


@dataclass(frozen=True)
class Edge:
    """A discrete transition between two locations.

    Attributes:
        source: Name of the source location ``src(e)``.
        target: Name of the destination location ``des(e)``.
        guard: Guard predicate ``g(e)``; the edge may fire only when it holds.
        reset: Reset function applied to the data state when firing.
        trigger: Optional receive label (``?root`` or ``??root``).  When
            set, the edge fires only upon delivery of the event.
        emits: Event roots broadcast when the edge fires.
        reason: Free-form tag describing the purpose of the transition.
        priority: Larger priorities win when several edges are enabled at
            the same instant (ties broken by declaration order).
        metadata: Additional annotations.
    """

    source: str
    target: str
    guard: Predicate = TRUE
    reset: Reset = IDENTITY_RESET
    trigger: SyncLabel | None = None
    emits: tuple[str, ...] = ()
    reason: str = ""
    priority: int = 0
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __init__(self, source: str, target: str, *, guard: Predicate = TRUE,
                 reset: Reset = IDENTITY_RESET, trigger: SyncLabel | None = None,
                 emits: Sequence[str] = (), reason: str = "", priority: int = 0,
                 metadata: Mapping[str, object] | None = None):
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "guard", guard)
        object.__setattr__(self, "reset", reset)
        object.__setattr__(self, "trigger", trigger)
        object.__setattr__(self, "emits", tuple(emits))
        object.__setattr__(self, "reason", reason)
        object.__setattr__(self, "priority", int(priority))
        object.__setattr__(self, "metadata", dict(metadata or {}))
        if trigger is not None and not trigger.is_receive:
            raise ValueError(
                f"edge trigger must be a receive label (? or ??), got {trigger}")

    # -- classification ----------------------------------------------------
    @property
    def is_event_triggered(self) -> bool:
        """True when this edge waits for an event delivery."""
        return self.trigger is not None

    @property
    def is_asap(self) -> bool:
        """True when this edge fires as soon as its guard becomes true."""
        return self.trigger is None

    def sync_labels(self) -> set[SyncLabel]:
        """All synchronization labels attached to this edge.

        The trigger label (if any) plus one ``!root`` send label per emitted
        event, matching the paper's labelling convention.
        """
        labels: set[SyncLabel] = set()
        if self.trigger is not None:
            labels.add(self.trigger)
        for root in self.emits:
            labels.add(SyncLabel(Prefix.SEND, root))
        return labels

    def renamed(self, mapping: Mapping[str, str]) -> "Edge":
        """Return a copy with source/target renamed through ``mapping``."""
        return replace(
            self,
            source=mapping.get(self.source, self.source),
            target=mapping.get(self.target, self.target),
        )

    def retargeted(self, *, source: str | None = None, target: str | None = None) -> "Edge":
        """Return a copy with the source and/or target replaced."""
        return replace(
            self,
            source=self.source if source is None else source,
            target=self.target if target is None else target,
        )

    def __repr__(self) -> str:
        trig = f" on {self.trigger}" if self.trigger else ""
        emit = f" emits {list(self.emits)}" if self.emits else ""
        why = f" [{self.reason}]" if self.reason else ""
        return f"Edge({self.source} -> {self.target}{trig}{emit}{why})"
