"""The elaboration methodology of Section IV-C.

This module implements the three formal ingredients the paper uses to turn
the abstract lease design pattern into concrete wireless CPS designs:

* **Hybrid automata independence** (Definition 2): two automata are
  independent iff they share no data state variables, no locations and no
  synchronization labels.
* **Simple hybrid automaton** (Definition 3): all locations share one
  invariant, every data state in that invariant is initial for each initial
  location, and the zero data state is initial.
* **Atomic elaboration** ``E(A, v, A')``: replace location ``v`` of ``A``
  with the whole automaton ``A'``; former ingress edges of ``v`` enter
  ``A'``'s initial locations, former egress edges of ``v`` leave from every
  location of ``A'``; inside ``A'`` the variables of ``A`` keep flowing as
  they did in ``v``; outside ``A'`` the variables of ``A'`` are frozen.
* **Parallel elaboration** ``E(A, (v1..vk), (A1..Ak))``: repeated atomic
  elaboration at distinct locations with mutually independent children.

Theorem 2 (implemented in :mod:`repro.core.compliance`) states that designs
produced this way from the pattern automata inherit the PTE safety
guarantee.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.errors import ElaborationError, IndependenceError
from repro.hybrid.automaton import HybridAutomaton
from repro.hybrid.flows import CompositeFlow
from repro.hybrid.expressions import And, TRUE, TruePredicate
from repro.hybrid.locations import Location


def are_independent(a: HybridAutomaton, b: HybridAutomaton) -> bool:
    """Return True when ``a`` and ``b`` are independent (Definition 2)."""
    if set(a.variables) & set(b.variables):
        return False
    if a.location_names & b.location_names:
        return False
    if a.sync_labels() & b.sync_labels():
        return False
    return True


def assert_independent(a: HybridAutomaton, b: HybridAutomaton) -> None:
    """Raise :class:`IndependenceError` when ``a`` and ``b`` are not independent."""
    shared_vars = set(a.variables) & set(b.variables)
    if shared_vars:
        raise IndependenceError(
            f"automata {a.name!r} and {b.name!r} share data state variables "
            f"{sorted(shared_vars)}")
    shared_locations = a.location_names & b.location_names
    if shared_locations:
        raise IndependenceError(
            f"automata {a.name!r} and {b.name!r} share locations {sorted(shared_locations)}")
    shared_labels = a.sync_labels() & b.sync_labels()
    if shared_labels:
        raise IndependenceError(
            f"automata {a.name!r} and {b.name!r} share synchronization labels "
            f"{sorted(str(l) for l in shared_labels)}")


def are_mutually_independent(automata: Sequence[HybridAutomaton]) -> bool:
    """Return True when every pair of the given automata is independent."""
    for i, first in enumerate(automata):
        for second in automata[i + 1:]:
            if not are_independent(first, second):
                return False
    return True


def is_simple(automaton: HybridAutomaton) -> tuple[bool, str]:
    """Check whether ``automaton`` is a *simple hybrid automaton* (Definition 3).

    Returns:
        ``(True, "")`` when simple, otherwise ``(False, reason)``.

    The three defining conditions are checked structurally:

    1. all locations share the same invariant (compared by ``repr`` since
       predicates are value objects);
    2. the initial-state set is the full invariant set over each initial
       location -- structurally we require that the automaton does not
       restrict its initial valuation beyond the shared invariant, which we
       approximate by requiring the declared initial valuation to satisfy
       the invariant (condition 3 makes the zero state initial, and the
       library's automata expose a single configurable initial valuation);
    3. the zero data state satisfies the shared invariant, so ``(v, 0)`` can
       be an initial state.
    """
    invariants = {repr(loc.invariant) for loc in automaton.locations.values()}
    if len(invariants) > 1:
        return False, "locations have differing invariants"
    if automaton.initial_location is None:
        return False, "no initial location declared"
    shared_invariant = automaton.location(automaton.initial_location).invariant
    from repro.hybrid.variables import zero_valuation

    if not shared_invariant.evaluate(zero_valuation(automaton.variables)):
        return False, "the zero data state does not satisfy the shared invariant"
    if not shared_invariant.evaluate(automaton.initial_valuation):
        return False, "the initial valuation does not satisfy the shared invariant"
    return True, ""


def _conjoin(a, b):
    """Conjoin two predicates, simplifying the TRUE cases."""
    if isinstance(a, TruePredicate):
        return b
    if isinstance(b, TruePredicate):
        return a
    return And((a, b))


def elaborate(parent: HybridAutomaton, location_name: str,
              child: HybridAutomaton, *, name: str | None = None) -> HybridAutomaton:
    """Atomic elaboration ``E(parent, location, child)`` (Section IV-C).

    Args:
        parent: The automaton being refined (e.g. the Participant pattern).
        location_name: The parent location to replace (e.g. ``"Fall-Back"``).
        child: A *simple* automaton independent from ``parent`` (e.g. the
            stand-alone ventilator of Fig. 2).
        name: Optional name for the result; defaults to
            ``"{parent.name}+{child.name}"``.

    Returns:
        The elaborated automaton ``A''``.

    Raises:
        ElaborationError: If the location does not exist, the child is not
            simple, or parent and child are not independent.
    """
    if location_name not in parent.locations:
        raise ElaborationError(
            f"automaton {parent.name!r} has no location {location_name!r} to elaborate")
    simple, why = is_simple(child)
    if not simple:
        raise ElaborationError(
            f"child automaton {child.name!r} is not simple: {why}")
    try:
        assert_independent(parent, child)
    except IndependenceError as exc:
        raise ElaborationError(str(exc)) from exc
    if child.initial_location is None:
        raise ElaborationError(f"child automaton {child.name!r} has no initial location")

    elaborated_location = parent.location(location_name)
    result = HybridAutomaton(
        name or f"{parent.name}+{child.name}",
        variables=list(parent.variables) + list(child.variables),
        metadata={**parent.metadata,
                  "elaborated_from": parent.name,
                  "elaborations": tuple(parent.metadata.get("elaborations", ()))
                  + ((location_name, child.name),)},
    )

    # 1. Copy every parent location except the elaborated one.  Outside the
    #    child, the child's variables remain unchanged (their rates default
    #    to zero because no flow drives them).
    for loc in parent.locations.values():
        if loc.name == location_name:
            continue
        result.add_location(loc)

    # 2. Insert the child's locations.  Inside the child, the parent's
    #    variables keep the continuous behaviour of the elaborated location
    #    (rule 4), so each child location's flow is composed with the
    #    elaborated location's flow; the invariant is the conjunction.
    for loc in child.locations.values():
        combined_flow = CompositeFlow((elaborated_location.flow, loc.flow))
        combined_invariant = _conjoin(elaborated_location.invariant, loc.invariant)
        result.add_location(Location(
            name=loc.name,
            invariant=combined_invariant,
            flow=combined_flow,
            risky=elaborated_location.risky,
            metadata={**loc.metadata, "elaborates": location_name},
        ))

    # 3. Parent edges: ingress edges to the elaborated location are redirected
    #    to the child's initial location; egress edges are replicated from
    #    every child location; other edges are copied verbatim.
    child_initial = child.initial_location
    for edge in parent.edges:
        touches_source = edge.source == location_name
        touches_target = edge.target == location_name
        if not touches_source and not touches_target:
            result.add_edge(edge)
            continue
        if touches_target and not touches_source:
            result.add_edge(edge.retargeted(target=child_initial))
            continue
        if touches_source and not touches_target:
            for child_loc in child.locations:
                result.add_edge(edge.retargeted(source=child_loc))
            continue
        # Self-loop on the elaborated location: re-enter at the initial
        # location of the child from every child location.
        for child_loc in child.locations:
            result.add_edge(edge.retargeted(source=child_loc, target=child_initial))

    # 4. Child edges are copied verbatim (they only involve child locations).
    for edge in child.edges:
        result.add_edge(edge)

    # 5. Initial state: if the parent started in the elaborated location the
    #    result starts in the child's initial location, else unchanged.  The
    #    initial valuation is the union of both initial valuations.
    if parent.initial_location == location_name:
        result.initial_location = child_initial
    else:
        result.initial_location = parent.initial_location
    merged_initial = parent.initial_valuation.as_dict()
    merged_initial.update(child.initial_valuation.as_dict())
    result.initial_valuation = merged_initial
    result.validate()
    return result


def elaborate_parallel(parent: HybridAutomaton,
                       locations: Sequence[str],
                       children: Sequence[HybridAutomaton],
                       *, name: str | None = None) -> HybridAutomaton:
    """Parallel elaboration ``E(parent, (v1..vk), (A1..Ak))``.

    Elaborates ``parent`` at each location ``locations[i]`` with
    ``children[i]``, in order, exactly as the paper defines parallel
    elaboration as repeated atomic elaboration.

    Raises:
        ElaborationError: If the argument lists have different lengths, if
            the locations are not distinct, or if the children (plus parent)
            are not mutually independent.
    """
    if len(locations) != len(children):
        raise ElaborationError(
            "parallel elaboration requires as many child automata as locations")
    if len(set(locations)) != len(locations):
        raise ElaborationError("parallel elaboration requires distinct locations")
    everyone = [parent, *children]
    for i, first in enumerate(everyone):
        for second in everyone[i + 1:]:
            try:
                assert_independent(first, second)
            except IndependenceError as exc:
                raise ElaborationError(str(exc)) from exc
    current = parent
    for location_name, child in zip(locations, children):
        current = elaborate(current, location_name, child, name=name)
    if name is not None:
        current.name = name
    return current


def elaboration_history(automaton: HybridAutomaton) -> tuple[tuple[str, str], ...]:
    """Return the ``(location, child)`` pairs applied to build ``automaton``.

    The elaboration operator records its steps in the result's metadata;
    Theorem 2 compliance checking uses this record.
    """
    return tuple(automaton.metadata.get("elaborations", ()))
