"""Predicates used as guards and invariants of hybrid automata.

The guard function ``g`` assigns to each edge a *guard set* and the
invariant function ``inv`` assigns to each location an *invariant set*
(paper Section II-A, items 3 and 6).  We represent both as predicates over
valuations.

In addition to boolean evaluation, predicates can optionally answer the
question *"given the current valuation and constant flow rates, after how
much time does the predicate become true (or false)?"*.  The simulator
uses these answers to jump to exact guard-crossing instants instead of
discretizing time, which keeps lease expirations and PTE safeguard margins
exact.  Predicates over non-affine dynamics simply return ``None`` and the
simulator falls back to small-step sampling.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.hybrid.variables import Valuation
from repro.util.timebase import EPSILON


class Comparison(enum.Enum):
    """Comparison operators available to :class:`LinearInequality`."""

    LE = "<="
    GE = ">="
    LT = "<"
    GT = ">"
    EQ = "=="

    def evaluate(self, lhs: float, rhs: float, eps: float = EPSILON) -> bool:
        """Evaluate ``lhs (op) rhs`` with tolerance ``eps``."""
        if self is Comparison.LE:
            return lhs <= rhs + eps
        if self is Comparison.GE:
            return lhs >= rhs - eps
        if self is Comparison.LT:
            return lhs < rhs - eps
        if self is Comparison.GT:
            return lhs > rhs + eps
        return abs(lhs - rhs) <= eps


class Predicate:
    """Base class of all guard/invariant predicates."""

    def evaluate(self, valuation: Valuation) -> bool:
        """Return True when the predicate holds in ``valuation``."""
        raise NotImplementedError

    def time_until_true(self, valuation: Valuation,
                        rates: Mapping[str, float]) -> float | None:
        """Time until the predicate first becomes true under constant flow.

        Returns ``0.0`` when already true, a positive delay when the
        crossing time can be computed in closed form, ``math.inf`` when the
        predicate can never become true under the given rates, and ``None``
        when no closed form is available (the simulator then samples).
        """
        if self.evaluate(valuation):
            return 0.0
        return None

    def time_until_false(self, valuation: Valuation,
                         rates: Mapping[str, float]) -> float | None:
        """Time until the predicate first becomes false under constant flow.

        Semantics mirror :meth:`time_until_true`.
        """
        if not self.evaluate(valuation):
            return 0.0
        return None

    # -- composition helpers ----------------------------------------------
    def __and__(self, other: "Predicate") -> "Predicate":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)


class TruePredicate(Predicate):
    """A predicate that always holds (the default guard and invariant)."""

    def evaluate(self, valuation: Valuation) -> bool:
        return True

    def time_until_true(self, valuation, rates):
        return 0.0

    def time_until_false(self, valuation, rates):
        return math.inf

    def __repr__(self) -> str:
        return "TRUE"


class FalsePredicate(Predicate):
    """A predicate that never holds."""

    def evaluate(self, valuation: Valuation) -> bool:
        return False

    def time_until_true(self, valuation, rates):
        return math.inf

    def time_until_false(self, valuation, rates):
        return 0.0

    def __repr__(self) -> str:
        return "FALSE"


#: Shared singleton instances used as defaults.
TRUE = TruePredicate()
FALSE = FalsePredicate()


@dataclass(frozen=True)
class LinearInequality(Predicate):
    """A predicate of the form ``variable (op) threshold``.

    This is the workhorse predicate of the library: every clock guard of the
    lease design pattern (e.g. ``c >= T_run^max``) and the ventilator's
    cylinder-height guards (``H_vent == 0``) are linear inequalities, for
    which exact crossing times exist under constant flow rates.
    """

    variable: str
    op: Comparison
    threshold: float

    def evaluate(self, valuation: Valuation) -> bool:
        return self.op.evaluate(valuation.get(self.variable, 0.0), self.threshold)

    def _crossing_delay(self, value: float, rate: float, target_state: bool) -> float | None:
        """Delay until the predicate equals ``target_state`` under ``rate``."""
        currently = self.op.evaluate(value, self.threshold)
        if currently == target_state:
            return 0.0
        if abs(rate) <= EPSILON:
            return math.inf
        if self.op is Comparison.EQ:
            # Equality can only be *reached* by moving toward the threshold.
            if target_state:
                delta = self.threshold - value
                delay = delta / rate
                return delay if delay > 0 else math.inf
            return 0.0 if abs(value - self.threshold) > EPSILON else EPSILON
        # Strict/non-strict inequalities behave identically for crossing times.
        wants_above = self.op in (Comparison.GE, Comparison.GT)
        if target_state == wants_above:
            # need value to move up to threshold (or down for <=/<)
            delta = self.threshold - value
        else:
            delta = self.threshold - value
        delay = delta / rate
        if delay < 0:
            return math.inf
        return max(delay, 0.0)

    def time_until_true(self, valuation, rates):
        value = valuation.get(self.variable, 0.0)
        rate = rates.get(self.variable, 0.0)
        return self._crossing_delay(value, rate, True)

    def time_until_false(self, valuation, rates):
        value = valuation.get(self.variable, 0.0)
        rate = rates.get(self.variable, 0.0)
        return self._crossing_delay(value, rate, False)

    def __repr__(self) -> str:
        return f"({self.variable} {self.op.value} {self.threshold:g})"


def var_ge(variable: str, threshold: float) -> LinearInequality:
    """Shorthand for ``variable >= threshold``."""
    return LinearInequality(variable, Comparison.GE, threshold)


def var_le(variable: str, threshold: float) -> LinearInequality:
    """Shorthand for ``variable <= threshold``."""
    return LinearInequality(variable, Comparison.LE, threshold)


def var_gt(variable: str, threshold: float) -> LinearInequality:
    """Shorthand for ``variable > threshold``."""
    return LinearInequality(variable, Comparison.GT, threshold)


def var_lt(variable: str, threshold: float) -> LinearInequality:
    """Shorthand for ``variable < threshold``."""
    return LinearInequality(variable, Comparison.LT, threshold)


def var_eq(variable: str, threshold: float) -> LinearInequality:
    """Shorthand for ``variable == threshold`` (with tolerance)."""
    return LinearInequality(variable, Comparison.EQ, threshold)


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of predicates."""

    operands: tuple[Predicate, ...]

    def __init__(self, operands: Sequence[Predicate]):
        object.__setattr__(self, "operands", tuple(operands))

    def evaluate(self, valuation: Valuation) -> bool:
        return all(p.evaluate(valuation) for p in self.operands)

    def time_until_true(self, valuation, rates):
        # Conservative closed form: if each operand has a crossing time and
        # stays true afterwards (monotone under constant rate), the
        # conjunction becomes true at the latest of those times.  We verify
        # the "stays true" property by re-checking at the candidate time.
        delays = []
        for p in self.operands:
            d = p.time_until_true(valuation, rates)
            if d is None:
                return None
            delays.append(d)
        candidate = max(delays, default=0.0)
        if math.isinf(candidate):
            return math.inf
        probe = valuation.advanced(rates, candidate + EPSILON)
        if all(p.evaluate(probe) for p in self.operands):
            return candidate
        return None

    def time_until_false(self, valuation, rates):
        delays = []
        for p in self.operands:
            d = p.time_until_false(valuation, rates)
            if d is None:
                return None
            delays.append(d)
        return min(delays, default=math.inf)

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(p) for p in self.operands) + ")"


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of predicates."""

    operands: tuple[Predicate, ...]

    def __init__(self, operands: Sequence[Predicate]):
        object.__setattr__(self, "operands", tuple(operands))

    def evaluate(self, valuation: Valuation) -> bool:
        return any(p.evaluate(valuation) for p in self.operands)

    def time_until_true(self, valuation, rates):
        delays = []
        for p in self.operands:
            d = p.time_until_true(valuation, rates)
            if d is None:
                return None
            delays.append(d)
        return min(delays, default=math.inf)

    def time_until_false(self, valuation, rates):
        delays = []
        for p in self.operands:
            d = p.time_until_false(valuation, rates)
            if d is None:
                return None
            delays.append(d)
        candidate = max(delays, default=0.0)
        if math.isinf(candidate):
            return math.inf
        probe = valuation.advanced(rates, candidate + EPSILON)
        if not any(p.evaluate(probe) for p in self.operands):
            return candidate
        return None

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(p) for p in self.operands) + ")"


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate."""

    operand: Predicate

    def evaluate(self, valuation: Valuation) -> bool:
        return not self.operand.evaluate(valuation)

    def time_until_true(self, valuation, rates):
        return self.operand.time_until_false(valuation, rates)

    def time_until_false(self, valuation, rates):
        return self.operand.time_until_true(valuation, rates)

    def __repr__(self) -> str:
        return f"(NOT {self.operand!r})"


@dataclass(frozen=True)
class BoxPredicate(Predicate):
    """Axis-aligned box constraint ``low <= variable <= high``.

    Used for invariant sets such as the ventilator's
    ``0 <= H_vent <= 0.3`` (paper Fig. 2).
    """

    variable: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError("BoxPredicate requires low <= high")

    def evaluate(self, valuation: Valuation) -> bool:
        value = valuation.get(self.variable, 0.0)
        return self.low - EPSILON <= value <= self.high + EPSILON

    def time_until_false(self, valuation, rates):
        value = valuation.get(self.variable, 0.0)
        rate = rates.get(self.variable, 0.0)
        if not self.evaluate(valuation):
            return 0.0
        if abs(rate) <= EPSILON:
            return math.inf
        if rate > 0:
            return max((self.high - value) / rate, 0.0)
        return max((self.low - value) / rate, 0.0)

    def time_until_true(self, valuation, rates):
        if self.evaluate(valuation):
            return 0.0
        value = valuation.get(self.variable, 0.0)
        rate = rates.get(self.variable, 0.0)
        if abs(rate) <= EPSILON:
            return math.inf
        if value < self.low and rate > 0:
            return (self.low - value) / rate
        if value > self.high and rate < 0:
            return (value - self.high) / (-rate)
        return math.inf

    def __repr__(self) -> str:
        return f"({self.low:g} <= {self.variable} <= {self.high:g})"


@dataclass(frozen=True)
class FunctionPredicate(Predicate):
    """Wrap an arbitrary callable ``valuation -> bool`` as a predicate.

    Such predicates have no closed-form crossing time; the simulator samples
    them at its maximum step size.  They are used for application-dependent
    propositions such as the laser-tracheotomy ``ApprovalCondition``
    (``SpO2(t) > theta``), although that particular condition could also be
    written as a :class:`LinearInequality`.
    """

    func: Callable[[Valuation], bool]
    description: str = field(default="<function>")

    def evaluate(self, valuation: Valuation) -> bool:
        return bool(self.func(valuation))

    def __repr__(self) -> str:
        return f"FunctionPredicate({self.description})"
