"""Flow maps: the continuous dynamics of a location (paper Section II-A, item 4).

Each location ``v`` of a hybrid automaton has a flow map ``f_v`` defining
differential equations ``x' = f_v(x)`` over the data state variables.  Two
families of flows are supported:

* :class:`ConstantFlow` -- every variable has a constant derivative.  This
  covers all clocks of the lease design pattern (rate 1), frozen physical
  variables (rate 0) and the piecewise-constant ventilator cylinder motion
  of Fig. 2 (rate +-0.1 m/s).  Constant flows admit exact guard-crossing
  times, so the simulator never discretizes them.
* :class:`CallableFlow` -- an arbitrary ODE right-hand side, integrated with
  explicit fixed sub-steps (RK4).  Used for the patient SpO2 physiology in
  the laser-tracheotomy case study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping

from repro.hybrid.variables import Valuation


class Flow:
    """Base class of flow maps."""

    #: Whether the flow has constant derivatives (affine-in-time solutions).
    is_affine: bool = False

    def rates(self, valuation: Valuation) -> Dict[str, float]:
        """Return the instantaneous derivative of each driven variable."""
        raise NotImplementedError

    def advance(self, valuation: Valuation, dt: float) -> Valuation:
        """Return the valuation after flowing for ``dt`` seconds."""
        raise NotImplementedError

    def driven_variables(self) -> set[str]:
        """Names of variables whose derivative may be non-zero."""
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantFlow(Flow):
    """A flow with constant derivative for each listed variable.

    Variables not listed implicitly have derivative zero ("remain
    unchanged"), which is exactly the behaviour required for the variables
    of a child automaton while control is outside of it (elaboration rule 5
    in Section IV-C).
    """

    derivatives: Mapping[str, float] = field(default_factory=dict)
    is_affine: bool = True

    def __init__(self, derivatives: Mapping[str, float] | None = None):
        object.__setattr__(self, "derivatives",
                           dict(derivatives or {}))
        object.__setattr__(self, "is_affine", True)

    def rates(self, valuation: Valuation) -> Dict[str, float]:
        return dict(self.derivatives)

    def advance(self, valuation: Valuation, dt: float) -> Valuation:
        return valuation.advanced(self.derivatives, dt)

    def driven_variables(self) -> set[str]:
        return {name for name, rate in self.derivatives.items() if rate != 0.0}

    def merged_with(self, other: "ConstantFlow") -> "ConstantFlow":
        """Combine two constant flows over disjoint variable sets."""
        merged = dict(self.derivatives)
        for name, rate in other.derivatives.items():
            if name in merged and merged[name] != rate:
                raise ValueError(
                    f"conflicting derivatives for variable {name!r}: "
                    f"{merged[name]} vs {rate}")
            merged[name] = rate
        return ConstantFlow(merged)

    def __repr__(self) -> str:
        inner = ", ".join(f"d{k}/dt={v:g}" for k, v in sorted(self.derivatives.items()))
        return f"ConstantFlow({inner})" if inner else "ConstantFlow(stationary)"


#: A flow where nothing moves; used as the default location flow.
STATIONARY = ConstantFlow({})


def clock_flow(*clock_names: str, extra: Mapping[str, float] | None = None) -> ConstantFlow:
    """Build a flow where each named clock advances at rate 1.

    Args:
        clock_names: Clock variables that progress at unit rate.
        extra: Additional constant derivatives to merge in.
    """
    derivatives: Dict[str, float] = {name: 1.0 for name in clock_names}
    if extra:
        derivatives.update(extra)
    return ConstantFlow(derivatives)


@dataclass(frozen=True)
class CallableFlow(Flow):
    """A flow defined by an arbitrary ODE right-hand side.

    Args:
        func: Callable mapping a :class:`Valuation` to a dict of
            derivatives for the driven variables.
        variables: The set of variables driven by ``func`` (needed for
            structural checks and elaboration).
        description: Human-readable description for diagnostics.
        substep: Integration sub-step (seconds) used by :meth:`advance`.
        vector_func: Optional lane-vectorized twin of ``func`` for the
            batched kernel: it receives a valuation-like view whose
            ``get``/``__getitem__`` return NumPy arrays (one element per
            replicate lane) and must return a mapping of driven variable to
            derivative array.  Element-wise it must perform *exactly* the
            arithmetic of ``func`` so that batched runs stay bit-identical
            to the reference engine; lanes fall back to per-lane scalar
            integration when it is absent.
    """

    func: Callable[[Valuation], Mapping[str, float]]
    variables: tuple[str, ...]
    description: str = "<ode>"
    substep: float = 0.01
    is_affine: bool = False
    vector_func: Callable | None = None

    def __init__(self, func, variables, description="<ode>", substep=0.01,
                 vector_func=None):
        object.__setattr__(self, "func", func)
        object.__setattr__(self, "variables", tuple(variables))
        object.__setattr__(self, "description", description)
        object.__setattr__(self, "substep", float(substep))
        object.__setattr__(self, "is_affine", False)
        object.__setattr__(self, "vector_func", vector_func)

    def rates(self, valuation: Valuation) -> Dict[str, float]:
        return {k: float(v) for k, v in self.func(valuation).items()}

    def driven_variables(self) -> set[str]:
        return set(self.variables)

    def advance(self, valuation: Valuation, dt: float) -> Valuation:
        """Integrate the ODE for ``dt`` seconds with classic RK4 sub-steps."""
        if dt <= 0:
            return valuation
        remaining = dt
        current = valuation
        while remaining > 1e-12:
            h = min(self.substep, remaining)
            current = self._rk4_step(current, h)
            remaining -= h
        return current

    def _rk4_step(self, valuation: Valuation, h: float) -> Valuation:
        k1 = self.rates(valuation)
        k2 = self.rates(valuation.advanced(k1, h / 2.0))
        k3 = self.rates(valuation.advanced(k2, h / 2.0))
        k4 = self.rates(valuation.advanced(k3, h))
        combined = {}
        for name in self.variables:
            combined[name] = (k1.get(name, 0.0) + 2.0 * k2.get(name, 0.0)
                              + 2.0 * k3.get(name, 0.0) + k4.get(name, 0.0)) / 6.0
        return valuation.advanced(combined, h)

    def __repr__(self) -> str:
        return f"CallableFlow({self.description}, vars={list(self.variables)})"


@dataclass(frozen=True)
class CompositeFlow(Flow):
    """The union of several flows over disjoint variable sets.

    Produced by the elaboration operator: inside a child-automaton location,
    the parent's variables keep flowing according to the elaborated
    location's flow while the child's variables follow the child's flow.
    """

    parts: tuple[Flow, ...]

    def __init__(self, parts):
        flattened: list[Flow] = []
        for part in parts:
            if isinstance(part, CompositeFlow):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        object.__setattr__(self, "parts", tuple(flattened))

    @property
    def is_affine(self) -> bool:  # type: ignore[override]
        return all(part.is_affine for part in self.parts)

    def rates(self, valuation: Valuation) -> Dict[str, float]:
        merged: Dict[str, float] = {}
        for part in self.parts:
            for name, rate in part.rates(valuation).items():
                merged[name] = rate
        return merged

    def driven_variables(self) -> set[str]:
        driven: set[str] = set()
        for part in self.parts:
            driven |= part.driven_variables()
        return driven

    def advance(self, valuation: Valuation, dt: float) -> Valuation:
        if self.is_affine:
            return valuation.advanced(self.rates(valuation), dt)
        current = valuation
        for part in self.parts:
            current = part.advance(current, dt)
        return current

    def __repr__(self) -> str:
        return f"CompositeFlow({list(self.parts)!r})"
