"""Synchronization labels for hybrid automata (paper Section II-A, item 8).

A synchronization label consists of a *root* (the event name) and a
*prefix* describing the role of the automaton for that event:

* ``!root``  -- the automaton **sends** (broadcasts) the event;
* ``?root``  -- the automaton **receives** the event over a reliable link;
* ``??root`` -- the automaton **receives** the event over an unreliable
  (e.g. wireless) link, i.e. the event may be lost;
* ``root``   -- an internal label with no receiver.

Labels with different prefixes or roots are regarded as different labels,
exactly as in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Prefix(enum.Enum):
    """Role of an automaton with respect to an event."""

    INTERNAL = ""
    SEND = "!"
    RECEIVE = "?"
    RECEIVE_LOSSY = "??"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class SyncLabel:
    """A synchronization label ``prefix + root``.

    Attributes:
        prefix: The :class:`Prefix` of the label.
        root: The event name shared by sender and receiver(s).
    """

    prefix: Prefix
    root: str

    def __post_init__(self) -> None:
        if not self.root:
            raise ValueError("synchronization label root must be non-empty")
        if any(ch.isspace() for ch in self.root):
            raise ValueError(f"label root may not contain whitespace: {self.root!r}")

    # -- classification ----------------------------------------------------
    @property
    def is_send(self) -> bool:
        """True if this automaton broadcasts the event."""
        return self.prefix is Prefix.SEND

    @property
    def is_receive(self) -> bool:
        """True if this automaton receives the event (reliably or not)."""
        return self.prefix in (Prefix.RECEIVE, Prefix.RECEIVE_LOSSY)

    @property
    def is_lossy(self) -> bool:
        """True if the event reception is over an unreliable channel."""
        return self.prefix is Prefix.RECEIVE_LOSSY

    @property
    def is_internal(self) -> bool:
        """True if the label is internal (event with no receivers)."""
        return self.prefix is Prefix.INTERNAL

    def __str__(self) -> str:
        return f"{self.prefix.value}{self.root}"


def send(root: str) -> SyncLabel:
    """Build a ``!root`` (sender) label."""
    return SyncLabel(Prefix.SEND, root)


def receive(root: str) -> SyncLabel:
    """Build a ``?root`` (reliable receiver) label."""
    return SyncLabel(Prefix.RECEIVE, root)


def receive_lossy(root: str) -> SyncLabel:
    """Build a ``??root`` (unreliable receiver) label."""
    return SyncLabel(Prefix.RECEIVE_LOSSY, root)


def internal(root: str) -> SyncLabel:
    """Build an internal label with no prefix."""
    return SyncLabel(Prefix.INTERNAL, root)


def parse_label(text: str) -> SyncLabel:
    """Parse a textual label such as ``"??evtVPumpIn"`` into a :class:`SyncLabel`.

    The longest matching prefix wins, so ``"??x"`` parses as a lossy receive
    of ``x`` rather than a reliable receive of ``?x``.
    """
    text = text.strip()
    if text.startswith("??"):
        return SyncLabel(Prefix.RECEIVE_LOSSY, text[2:])
    if text.startswith("?"):
        return SyncLabel(Prefix.RECEIVE, text[1:])
    if text.startswith("!"):
        return SyncLabel(Prefix.SEND, text[1:])
    return SyncLabel(Prefix.INTERNAL, text)
