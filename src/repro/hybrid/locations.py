"""Locations (discrete modes) of a hybrid automaton (Section II-A, item 2/3/4).

A location bundles its name, its invariant set and its flow map.  Whether a
location is *safe* or *risky* (the partition used by the PTE safety rules)
is a property of the owning automaton, not of the location itself, but we
keep a convenience flag here because nearly every query in the PTE monitor
is phrased in terms of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.hybrid.expressions import Predicate, TRUE
from repro.hybrid.flows import Flow, STATIONARY


@dataclass(frozen=True)
class Location:
    """A single location of a hybrid automaton.

    Attributes:
        name: Location name, unique within its automaton.
        invariant: Invariant predicate ``inv(v)``; the data state must
            satisfy it as long as the automaton dwells here.
        flow: Flow map ``f_v`` giving the continuous dynamics in this
            location.
        risky: True when the location belongs to the risky partition
            ``V^risky`` of its automaton.
        metadata: Free-form annotations (used e.g. to tag pattern roles).
    """

    name: str
    invariant: Predicate = TRUE
    flow: Flow = STATIONARY
    risky: bool = False
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("location name must be non-empty")

    def with_name(self, name: str) -> "Location":
        """Return a copy of this location under a different name."""
        return replace(self, name=name)

    def with_flow(self, flow: Flow) -> "Location":
        """Return a copy of this location with a different flow map."""
        return replace(self, flow=flow)

    def with_invariant(self, invariant: Predicate) -> "Location":
        """Return a copy of this location with a different invariant."""
        return replace(self, invariant=invariant)

    def with_risky(self, risky: bool) -> "Location":
        """Return a copy of this location with the risky flag set to ``risky``."""
        return replace(self, risky=risky)

    def __repr__(self) -> str:
        tag = "risky" if self.risky else "safe"
        return f"Location({self.name!r}, {tag})"
