"""Simulation engines for hybrid systems (event-driven with exact clock crossings).

Three interchangeable kernels execute the same semantics:

* :class:`SimulationEngine` -- the *reference* engine, a direct
  transcription of the paper's semantics (the executable specification and
  equivalence oracle);
* :class:`CompiledEngine` -- the *compiled* kernel, which lowers the model
  to index-based tables once per trial and mutates flat state in place,
  producing bit-identical traces several times faster;
* :class:`BatchedEngine` -- the *batched* kernel, which runs B replicate
  lanes of one compiled system in vectorized lockstep over NumPy
  ``(B, n_slots)`` state, each lane bit-identical to a serial run with the
  same seed (the campaign workhorse).

All push observations through the :class:`TraceObserver` pipeline, so
consumers can either record a full :class:`~repro.hybrid.trace.Trace` or
stream statistics without retaining the run.  :func:`build_engine` selects
a kernel by name or via the ``REPRO_ENGINE`` environment variable.
"""

from repro.hybrid.simulate.batched import (BatchedEngine, BatchedTables,
                                           ExternalBatchBuffers, Lane)
from repro.hybrid.simulate.compiled import (CompiledEngine, CompiledSystem,
                                            ENGINE_ENV_VAR, ENGINE_KINDS,
                                            build_engine, compile_system,
                                            resolve_engine_kind)
from repro.hybrid.simulate.engine import Network, PerfectNetwork, SimulationEngine, simulate
from repro.hybrid.simulate.observers import DwellTracker, TraceObserver, TraceRecorder
from repro.hybrid.simulate.processes import (CallbackProcess, Coupling, EnvironmentProcess,
                                             FunctionCoupling, LocationIndicatorCoupling,
                                             VariableCopyCoupling)

__all__ = [
    "SimulationEngine",
    "CompiledEngine",
    "BatchedEngine",
    "BatchedTables",
    "ExternalBatchBuffers",
    "Lane",
    "CompiledSystem",
    "compile_system",
    "build_engine",
    "resolve_engine_kind",
    "ENGINE_KINDS",
    "ENGINE_ENV_VAR",
    "simulate",
    "Network",
    "PerfectNetwork",
    "TraceObserver",
    "TraceRecorder",
    "DwellTracker",
    "EnvironmentProcess",
    "CallbackProcess",
    "Coupling",
    "FunctionCoupling",
    "LocationIndicatorCoupling",
    "VariableCopyCoupling",
]
