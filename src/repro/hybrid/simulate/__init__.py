"""Simulation engine for hybrid systems (event-driven with exact clock crossings)."""

from repro.hybrid.simulate.engine import Network, PerfectNetwork, SimulationEngine, simulate
from repro.hybrid.simulate.processes import (CallbackProcess, Coupling, EnvironmentProcess,
                                             FunctionCoupling, LocationIndicatorCoupling,
                                             VariableCopyCoupling)

__all__ = [
    "SimulationEngine",
    "simulate",
    "Network",
    "PerfectNetwork",
    "EnvironmentProcess",
    "CallbackProcess",
    "Coupling",
    "FunctionCoupling",
    "LocationIndicatorCoupling",
    "VariableCopyCoupling",
]
