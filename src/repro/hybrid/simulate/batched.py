"""Batched simulation kernel: B replicates of one compiled system in lockstep.

Monte-Carlo campaigns run hundreds of independent replicates of the *same*
hybrid model — only the RNG seed differs per trial.  The compiled kernel
(:mod:`repro.hybrid.simulate.compiled`) removed the per-step interpretation
overhead of one trial; this module removes the per-*trial* overhead of a
campaign cell by executing ``B`` replicates ("lanes") side by side inside a
single process:

* continuous state lives in one global ``(B, total_slots)`` NumPy matrix
  (each automaton owns a column block), locations in integer ``(B,)``
  arrays; per-lane constant-rate/driven-mask matrices and a per-lane
  linear-crossing table are maintained incrementally on location changes,
  so the hot phases touch no per-location Python structure;
* each outer iteration advances every live lane by one engine step, with the
  per-lane next-event times (one 2-D pass over the crossing table plus
  vectorized box/boolean-composition programs), constant-rate integration
  (one masked matrix op), RK4 integration of
  :class:`~repro.hybrid.flows.CallableFlow` dynamics (when the flow carries
  a ``vector_func``) and the discrete-phase guard pre-check all computed
  vectorized across lanes;
* lanes that diverge — different edge firings, different event times,
  different finish times — keep advancing independently: every lane carries
  its own simulation clock, pending-event queues, RNG streams, network and
  observers, and a masked "active lanes" scheme retires lanes one by one as
  they reach the horizon.

Per lane the control flow and floating-point arithmetic are *exactly* those
of the reference engine: each lane's trace, event log and samples are
bit-identical to a serial :class:`~repro.hybrid.simulate.engine.SimulationEngine`
run with the same seed (enforced by ``tests/hybrid/test_compiled_equivalence.py``).
Anything the vector layer cannot prove it can reproduce exactly — generic
predicates, callable flows without a vectorized twin, custom couplings,
environment processes — falls back to the compiled kernel's per-lane scalar
code path, so correctness never depends on vectorizability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.errors import SimulationError, TimeBlockError, ZenoError
from repro.hybrid.expressions import (And, BoxPredicate, Comparison, FalsePredicate,
                                      LinearInequality, Not, Or, Predicate,
                                      TruePredicate)
from repro.hybrid.flows import CallableFlow
from repro.hybrid.simulate.compiled import (CompiledAutomaton, CompiledEdge,
                                            CompiledLocation, CompiledSystem,
                                            CompiledSystemState, SlotValuation,
                                            _lower_crossing, _STATIC_SKIP,
                                            compile_system)
from repro.hybrid.simulate.engine import _MIN_ADVANCE, Network, _PendingEvent
from repro.hybrid.simulate.observers import TraceObserver, TraceRecorder
from repro.hybrid.simulate.processes import (Coupling, EnvironmentProcess,
                                             LocationIndicatorCoupling,
                                             VariableCopyCoupling)
from repro.hybrid.system import HybridSystem
from repro.hybrid.trace import EventRecord, Trace, TransitionRecord
from repro.util.seeding import spawn_rng
from repro.util.timebase import EPSILON

try:
    import numpy as np
except ImportError:  # pragma: no cover - container images bake NumPy in
    np = None

#: Spare value columns preallocated per automaton so that runtime-added
#: variables rarely force a state-matrix reallocation.
_SPARE_COLUMNS = 8


def _require_numpy() -> None:
    if np is None:  # pragma: no cover - exercised only on minimal installs
        raise ImportError(
            "the batched simulation kernel requires numpy; install it or "
            "select engine='reference'/'compiled' instead")


# ---------------------------------------------------------------------------
# Vector-valued valuation views (for CallableFlow.vector_func)
# ---------------------------------------------------------------------------

class _VectorView:
    """Valuation-shaped view returning one array element per lane.

    Gathered columns are memoized: within one RK4 stage the same input
    variables are read several times (base state plus every probe), and the
    fancy-indexing gather dominates the read cost.
    """

    __slots__ = ("_arr", "_rows", "_slot_of", "_cache")

    def __init__(self, arr, rows, slot_of: Dict[str, int]):
        self._arr = arr
        self._rows = rows
        self._slot_of = slot_of
        self._cache: Dict[str, object] = {}

    def __getitem__(self, name: str):
        column = self._cache.get(name)
        if column is None:
            column = self._arr[self._rows, self._slot_of[name]]
            self._cache[name] = column
        return column

    def get(self, name: str, default: float = 0.0):
        column = self._cache.get(name)
        if column is None:
            slot = self._slot_of.get(name)
            if slot is None:
                return default
            column = self._arr[self._rows, slot]
            self._cache[name] = column
        return column


class _VectorOverlay:
    """A vector view with a few overridden entries (RK4 probe states)."""

    __slots__ = ("_base", "_over")

    def __init__(self, base, over: Dict[str, object]):
        self._base = base
        self._over = over

    def __getitem__(self, name: str):
        if name in self._over:
            return self._over[name]
        return self._base[name]

    def get(self, name: str, default: float = 0.0):
        if name in self._over:
            return self._over[name]
        return self._base.get(name, default)


# ---------------------------------------------------------------------------
# Batched lowering: vectorized crossing/guard programs per compiled location
# ---------------------------------------------------------------------------

def _vec_comparator(op: Comparison, threshold: float):
    """Vectorized twin of ``Comparison.evaluate`` with a fixed rhs."""
    if op is Comparison.LE:
        rhs = threshold + EPSILON
        return lambda v: v <= rhs
    if op is Comparison.GE:
        rhs = threshold - EPSILON
        return lambda v: v >= rhs
    if op is Comparison.LT:
        rhs = threshold - EPSILON
        return lambda v: v < rhs
    if op is Comparison.GT:
        rhs = threshold + EPSILON
        return lambda v: v > rhs
    return lambda v: np.abs(v - threshold) <= EPSILON


class _VecEval:
    """Vectorized boolean evaluation of a predicate over lanes.

    ``evaluate`` mirrors ``Predicate.evaluate`` element-wise; ``probe``
    mirrors evaluating the predicate on ``valuation.advanced(rates, dt)``
    with a per-lane ``dt`` array (only variables present in ``rates`` move,
    exactly like ``Valuation.advanced``).
    """

    __slots__ = ("_fn", "_probe")

    def __init__(self, fn, probe=None):
        self._fn = fn
        self._probe = probe

    def evaluate(self, arr, rows):
        return self._fn(arr, rows)

    def probe(self, arr, rows, dt):
        return self._probe(arr, rows, dt)


def _lower_eval_vec(predicate: Predicate, slot_of, rates=None) -> _VecEval | None:
    """Lower a predicate to exact vectorized evaluation; ``None`` = unsupported."""
    if isinstance(predicate, LinearInequality):
        slot = slot_of.get(predicate.variable)
        if slot is None:
            return None
        cmp = _vec_comparator(predicate.op, predicate.threshold)
        probe = None
        if rates is not None:
            if predicate.variable in rates:
                rate = rates[predicate.variable]

                def probe(arr, rows, dt, slot=slot, rate=rate, cmp=cmp):
                    return cmp(arr[rows, slot] + rate * dt)
            else:
                def probe(arr, rows, dt, slot=slot, cmp=cmp):
                    return cmp(arr[rows, slot])
        return _VecEval(lambda arr, rows, slot=slot, cmp=cmp: cmp(arr[rows, slot]),
                        probe)
    if isinstance(predicate, BoxPredicate):
        slot = slot_of.get(predicate.variable)
        if slot is None:
            return None
        low_eps = predicate.low - EPSILON
        high_eps = predicate.high + EPSILON

        def inside(v, low_eps=low_eps, high_eps=high_eps):
            return (low_eps <= v) & (v <= high_eps)

        probe = None
        if rates is not None:
            if predicate.variable in rates:
                rate = rates[predicate.variable]

                def probe(arr, rows, dt, slot=slot, rate=rate):
                    return inside(arr[rows, slot] + rate * dt)
            else:
                def probe(arr, rows, dt, slot=slot):
                    return inside(arr[rows, slot])
        return _VecEval(lambda arr, rows, slot=slot: inside(arr[rows, slot]),
                        probe)
    if isinstance(predicate, Not):
        inner = _lower_eval_vec(predicate.operand, slot_of, rates)
        if inner is None:
            return None
        probe = None
        if rates is not None:
            def probe(arr, rows, dt, inner=inner):
                return ~inner.probe(arr, rows, dt)
        return _VecEval(lambda arr, rows, inner=inner: ~inner.evaluate(arr, rows),
                        probe)
    if isinstance(predicate, (And, Or)):
        operands = predicate.operands
        lowered = [_lower_eval_vec(p, slot_of, rates) for p in operands]
        if not lowered or any(entry is None for entry in lowered):
            return None
        conjunction = isinstance(predicate, And)

        def fold(results, conjunction=conjunction):
            out = results[0]
            for result in results[1:]:
                out = (out & result) if conjunction else (out | result)
            return out

        probe = None
        if rates is not None:
            def probe(arr, rows, dt, lowered=lowered):
                return fold([entry.probe(arr, rows, dt) for entry in lowered])
        return _VecEval(
            lambda arr, rows, lowered=lowered: fold(
                [entry.evaluate(arr, rows) for entry in lowered]),
            probe)
    return None


class _VecDelay:
    """Vectorized crossing delay of a predicate under fixed rates.

    ``delay(arr, rows)`` mirrors ``predicate.time_until_true`` (or
    ``..._false``, baked at lowering time) element-wise; lanes where the
    scalar method would return ``None`` (no closed form — sample instead)
    hold NaN, flagged by ``may_sample``.
    """

    __slots__ = ("_fn", "may_sample")

    def __init__(self, fn, may_sample: bool):
        self._fn = fn
        self.may_sample = may_sample

    def delay(self, arr, rows):
        return self._fn(arr, rows)


def _lower_operand_delay(predicate: Predicate, rates, slot_of,
                         want: bool) -> _VecDelay | None:
    """Full vectorized mirror of ``time_until_true/false`` (no skip cases)."""
    if isinstance(predicate, TruePredicate):
        value = 0.0 if want else math.inf
        return _VecDelay(lambda arr, rows: np.full(rows.size, value), False)
    if isinstance(predicate, FalsePredicate):
        value = math.inf if want else 0.0
        return _VecDelay(lambda arr, rows: np.full(rows.size, value), False)
    if isinstance(predicate, Not):
        return _lower_operand_delay(predicate.operand, rates, slot_of, not want)
    if isinstance(predicate, LinearInequality):
        slot = slot_of.get(predicate.variable)
        if slot is None:
            return None
        rate = rates.get(predicate.variable, 0.0)
        threshold = predicate.threshold
        cmp = _vec_comparator(predicate.op, threshold)
        frozen = abs(rate) <= EPSILON

        if predicate.op is Comparison.EQ:
            def eq_delay(arr, rows):
                v = arr[rows, slot]
                cur = cmp(v)
                if want:
                    if frozen:
                        return np.where(cur, 0.0, math.inf)
                    delay = (threshold - v) / rate
                    out = np.where(delay > 0, delay, math.inf)
                    return np.where(cur, 0.0, out)
                if frozen:
                    out = np.full(rows.size, math.inf)
                else:
                    out = np.where(np.abs(v - threshold) > EPSILON, 0.0, EPSILON)
                return np.where(cur, out, 0.0)

            return _VecDelay(eq_delay, False)

        def linear_delay(arr, rows):
            v = arr[rows, slot]
            cur = cmp(v)
            match = cur if want else ~cur
            if frozen:
                return np.where(match, 0.0, math.inf)
            delay = (threshold - v) / rate
            out = np.where(delay < 0, math.inf, np.maximum(delay, 0.0))
            return np.where(match, 0.0, out)

        return _VecDelay(linear_delay, False)
    if isinstance(predicate, BoxPredicate):
        slot = slot_of.get(predicate.variable)
        if slot is None:
            return None
        rate = rates.get(predicate.variable, 0.0)
        low, high = predicate.low, predicate.high
        low_eps, high_eps = low - EPSILON, high + EPSILON
        frozen = abs(rate) <= EPSILON

        def box_delay(arr, rows):
            v = arr[rows, slot]
            inside = (low_eps <= v) & (v <= high_eps)
            if want:
                if frozen:
                    t = np.full(rows.size, math.inf)
                elif rate > 0:
                    t = np.where(v < low, (low - v) / rate, math.inf)
                else:
                    t = np.where(v > high, (v - high) / (-rate), math.inf)
                return np.where(inside, 0.0, t)
            if frozen:
                t = np.full(rows.size, math.inf)
            elif rate > 0:
                t = np.maximum((high - v) / rate, 0.0)
            else:
                t = np.maximum((low - v) / rate, 0.0)
            return np.where(inside, t, 0.0)

        return _VecDelay(box_delay, False)
    if isinstance(predicate, (And, Or)):
        operands = predicate.operands
        lowered = [_lower_operand_delay(p, rates, slot_of, want)
                   for p in operands]
        if not lowered or any(entry is None for entry in lowered):
            return None
        conjunction = isinstance(predicate, And)
        may_sample = any(entry.may_sample for entry in lowered)
        # And-until-true and Or-until-false take the latest operand crossing
        # and verify it sticks by probing the advanced valuation (exactly
        # like the scalar methods); the two mirror cases are plain minima.
        if conjunction == want:
            evals = [_lower_eval_vec(p, slot_of, rates) for p in operands]
            if any(entry is None for entry in evals):
                return None

            def barrier_delay(arr, rows, lowered=lowered, evals=evals,
                              conjunction=conjunction):
                candidate = lowered[0].delay(arr, rows)
                for entry in lowered[1:]:
                    candidate = np.maximum(candidate, entry.delay(arr, rows))
                bad = ~np.isfinite(candidate)
                probe_dt = np.where(bad, 0.0, candidate) + EPSILON
                ok = evals[0].probe(arr, rows, probe_dt)
                if conjunction:
                    for entry in evals[1:]:
                        ok = ok & entry.probe(arr, rows, probe_dt)
                else:
                    for entry in evals[1:]:
                        ok = ok | entry.probe(arr, rows, probe_dt)
                    ok = ~ok
                out = np.where(ok, candidate, math.nan)
                out = np.where(np.isinf(candidate), math.inf, out)
                return np.where(np.isnan(candidate), math.nan, out)

            return _VecDelay(barrier_delay, True)

        def min_delay(arr, rows, lowered=lowered):
            out = lowered[0].delay(arr, rows)
            for entry in lowered[1:]:
                out = np.minimum(out, entry.delay(arr, rows))
            return out

        return _VecDelay(min_delay, may_sample)
    return None


def _lower_crossing_vec(predicate: Predicate, rates, slot_of, want: bool):
    """Vector counterpart of ``_lower_crossing``.

    Returns :data:`_STATIC_SKIP` in exactly the cases the compiled lowering
    skips, a :class:`_VecDelay` program when the whole predicate tree lowers
    to linear/box/boolean-composition shapes, and ``None`` when only the
    generic scalar program can reproduce the reference arithmetic.
    """
    if isinstance(predicate, (TruePredicate, FalsePredicate)):
        return _STATIC_SKIP
    if isinstance(predicate, Not):
        return _lower_crossing_vec(predicate.operand, rates, slot_of, not want)
    if isinstance(predicate, (LinearInequality, BoxPredicate)):
        rate = rates.get(predicate.variable, 0.0)
        if abs(rate) <= EPSILON:
            return _STATIC_SKIP
    return _lower_operand_delay(predicate, rates, slot_of, want)


def _crossing_leaf(predicate: Predicate, want: bool):
    """Unwrap ``Not`` chains; return the stackable linear leaf or ``None``."""
    while isinstance(predicate, Not):
        predicate = predicate.operand
        want = not want
    if isinstance(predicate, LinearInequality):
        return predicate, want
    return None


#: One row of the global per-lane crossing table:
#: (local column, threshold, rate, sign, signed adjusted threshold,
#:  strict?, EQ?, wanted truth value)
_PAD_ENTRY = (0, math.inf, 1.0, 1.0, math.inf, False, False, False)


class BatchedLocation:
    """Vector tables of one compiled location (built once per system)."""

    __slots__ = ("cl", "n_slots", "sampling_only", "dynamic", "advance_kind",
                 "rates_row", "driven_row", "ode_var_slots", "ode_substep",
                 "ode_vector_func", "vec_cross", "scalar_cross",
                 "stack_entries",
                 "has_asap", "precheck_always", "precheck_guards")

    def __init__(self, cl: CompiledLocation, slot_of: Dict[str, int]):
        self.cl = cl
        self.n_slots = len(slot_of)
        self.sampling_only = not cl.affine
        self.dynamic = cl.affine and cl.static_rates is None

        # -- continuous advance ------------------------------------------------
        # Constant-rate locations contribute a dense per-slot rate row and a
        # driven mask; the engine folds those of every automaton into global
        # (B, total_slots) matrices so one masked vector op advances every
        # constant-rate slot of every lane.
        flow = cl.flow
        self.rates_row = np.zeros(self.n_slots, dtype=np.float64)
        self.driven_row = np.zeros(self.n_slots, dtype=bool)
        if cl.const_items is not None:
            self.advance_kind = "const"
            for slot, rate in cl.const_items:
                self.rates_row[slot] = rate
                self.driven_row[slot] = True
        elif isinstance(flow, CallableFlow) and flow.vector_func is not None:
            self.advance_kind = "vec_ode"
            self.ode_var_slots = tuple((name, slot_of[name])
                                       for name in flow.variables)
            self.ode_substep = flow.substep
            self.ode_vector_func = flow.vector_func
        else:
            self.advance_kind = "scalar"
        if self.advance_kind != "vec_ode":
            self.ode_var_slots = ()
            self.ode_substep = 0.0
            self.ode_vector_func = None

        # -- exact crossing schedule (static-rate affine locations only) -------
        # Plain linear crossings go into the engine's global per-lane
        # crossing table (one 2-D pass schedules all of them for every lane
        # and automaton at once); box and boolean-composition predicates
        # keep per-entry vector programs; everything else falls back to the
        # compiled kernel's scalar programs.
        vec_cross: List = []
        scalar_cross: List = []
        stack: List = []
        if cl.affine and cl.static_rates is not None:
            rates = cl.static_rates
            for ce in cl.asap_edges:
                self._lower_entry(ce.edge.guard, True, rates, slot_of,
                                  stack, vec_cross, scalar_cross)
            self._lower_entry(cl.invariant, False, rates, slot_of,
                              stack, vec_cross, scalar_cross)
        self.vec_cross = tuple(vec_cross)
        self.scalar_cross = tuple(scalar_cross)
        self.stack_entries = tuple(stack)

        # -- discrete-phase pre-check ------------------------------------------
        # A lane in this location *may* fire an edge without a pending event
        # only if some ASAP edge's guard holds.  Linear/box/boolean guards
        # are checked vectorized and exactly; anything else conservatively
        # marks the lane, and the per-lane scalar scan settles it.
        self.has_asap = cl.has_asap
        self.precheck_always = False
        guards: List[_VecEval] = []
        for ce in cl.asap_edges:
            if ce.guard_program is None:
                self.precheck_always = True
                break
            entry = _lower_eval_vec(ce.edge.guard, slot_of)
            if entry is None:
                self.precheck_always = True
                break
            guards.append(entry)
        self.precheck_guards = tuple(guards)

    def _lower_entry(self, guard: Predicate, want: bool, rates, slot_of,
                     stack: List, vec_cross: List, scalar_cross: List) -> None:
        """Sort one crossing predicate into stacked / vector / scalar bins.

        A stacked row folds every comparison kind into
        ``s*v (<|<=) s*adjusted`` with ``s = +-1`` (negation is exact, so
        the comparison is bit-identical to ``Comparison.evaluate``) while
        the crossing delay reads ``(threshold - v) / rate`` like the scalar
        method.
        """
        leaf = _crossing_leaf(guard, want)
        if leaf is not None:
            predicate, leaf_want = leaf
            rate = rates.get(predicate.variable, 0.0)
            if abs(rate) <= EPSILON:
                return  # exactly the compiled lowering's skip case
            op = predicate.op
            threshold = predicate.threshold
            if op is Comparison.EQ:
                if not leaf_want:
                    # time_until_false of EQ is always 0.0 or EPSILON --
                    # never schedulable, never a sampling request.
                    return
                stack.append((slot_of[predicate.variable], threshold, rate,
                              1.0, math.inf, False, True, True))
                return
            if op is Comparison.LE:
                s, adjusted, strict = 1.0, threshold + EPSILON, False
            elif op is Comparison.GE:
                s, adjusted, strict = -1.0, threshold - EPSILON, False
            elif op is Comparison.LT:
                s, adjusted, strict = 1.0, threshold - EPSILON, True
            else:  # GT
                s, adjusted, strict = -1.0, threshold + EPSILON, True
            stack.append((slot_of[predicate.variable], threshold, rate,
                          s, s * adjusted, strict, False, leaf_want))
            return
        entry = _lower_crossing_vec(guard, rates, slot_of, want)
        if entry is _STATIC_SKIP:
            return
        if entry is not None:
            vec_cross.append(entry)
        else:
            scalar_cross.append(_lower_crossing(guard, rates, slot_of, want))


class BatchedAutomatonTables:
    """Vector tables of one compiled automaton."""

    __slots__ = ("ca", "slot_of", "locations", "cross_width", "cross_rows")

    def __init__(self, ca: CompiledAutomaton):
        self.ca = ca
        self.slot_of = ca.slot_of
        self.locations = tuple(BatchedLocation(cl, ca.slot_of)
                               for cl in ca.locations)
        # Pre-padded per-location rows of the global crossing table: each
        # location's stacked linear crossings, padded to the automaton's
        # widest location with entries that always yield +inf.
        self.cross_width = max((len(bl.stack_entries)
                                for bl in self.locations), default=0)
        rows = []
        for bl in self.locations:
            entries = list(bl.stack_entries)
            entries += [_PAD_ENTRY] * (self.cross_width - len(entries))
            fields = list(zip(*entries)) if entries else [()] * 8
            rows.append((
                np.array(fields[0], dtype=np.intp),      # local column
                np.array(fields[1], dtype=np.float64),   # threshold
                np.array(fields[2], dtype=np.float64),   # rate
                np.array(fields[3], dtype=np.float64),   # sign
                np.array(fields[4], dtype=np.float64),   # signed adj. threshold
                np.array(fields[5], dtype=bool),         # strict?
                np.array(fields[6], dtype=bool),         # EQ?
                np.array(fields[7], dtype=bool),         # wanted truth
            ))
        self.cross_rows = tuple(rows)


class BatchedTables:
    """Vector lowering tables of a whole compiled system (built once)."""

    __slots__ = ("compiled", "automata")

    def __init__(self, compiled: CompiledSystem):
        _require_numpy()
        self.compiled = compiled
        self.automata = tuple(BatchedAutomatonTables(ca)
                              for ca in compiled.automata)

    def plane_columns(self) -> tuple[int, int]:
        """Column counts an external lane allocator must provide.

        Returns:
            ``(state_columns, cross_columns)``: the width of the global
            ``(B, state_columns)`` state/rate/driven matrices (every
            automaton's slot block plus its spare columns) and of the
            stacked per-lane crossing table.  Both are pure functions of
            the compiled system, so the allocating parent and the
            executing workers agree on them without coordination.
        """
        state = sum(len(tab.ca.slot_of) + _SPARE_COLUMNS
                    for tab in self.automata)
        cross = sum(tab.cross_width for tab in self.automata)
        return state, cross


def build_batched_tables(compiled: CompiledSystem) -> BatchedTables:
    """Build (or fetch) the vector lowering tables of a compiled system."""
    return BatchedTables(compiled)


class ExternalBatchBuffers:
    """Externally allocated backing arrays for one :class:`BatchedEngine`.

    The engine normally allocates its global ``(B, state_columns)`` state
    matrix and per-lane scratch tables privately; handing it an instance of
    this class makes it run on caller-owned storage instead — typically
    row ranges of a shared-memory plane
    (:class:`repro.campaign.shm.StatePlane`), so one campaign cell's lanes
    can span several worker processes.  The engine zero-initializes the
    arrays exactly as it would its own, so results are independent of the
    storage's provenance; if the model outgrows the provided widths at
    runtime (a dynamically added variable), the engine detaches and falls
    back to private arrays, copying the state over.

    Array contract (``B`` lanes, widths from
    :meth:`BatchedTables.plane_columns`): ``X``/``R`` are ``(B,
    state_columns)`` float64, ``D`` is ``(B, state_columns)`` bool;
    ``C_thr``/``C_rate``/``C_sign``/``C_sthr`` are ``(B, cross_columns)``
    float64, ``C_col`` intp and ``C_strict``/``C_eq``/``C_want`` bool of
    the same shape.
    """

    ARRAY_NAMES = ("X", "R", "D", "C_col", "C_thr", "C_rate", "C_sign",
                   "C_sthr", "C_strict", "C_eq", "C_want")

    __slots__ = ARRAY_NAMES

    def __init__(self, **arrays):
        for name in self.ARRAY_NAMES:
            setattr(self, name, arrays[name])

    @classmethod
    def allocate(cls, lanes: int, state_columns: int,
                 cross_columns: int) -> "ExternalBatchBuffers":
        """Allocate plain (non-shared) buffers of the given geometry."""
        _require_numpy()
        return cls(
            X=np.empty((lanes, state_columns), dtype=np.float64),
            R=np.empty((lanes, state_columns), dtype=np.float64),
            D=np.empty((lanes, state_columns), dtype=bool),
            C_col=np.empty((lanes, cross_columns), dtype=np.intp),
            C_thr=np.empty((lanes, cross_columns), dtype=np.float64),
            C_rate=np.empty((lanes, cross_columns), dtype=np.float64),
            C_sign=np.empty((lanes, cross_columns), dtype=np.float64),
            C_sthr=np.empty((lanes, cross_columns), dtype=np.float64),
            C_strict=np.empty((lanes, cross_columns), dtype=bool),
            C_eq=np.empty((lanes, cross_columns), dtype=bool),
            C_want=np.empty((lanes, cross_columns), dtype=bool))

    def matches(self, lanes: int, state_columns: int,
                cross_columns: int) -> bool:
        """Whether these buffers fit an engine of the given geometry."""
        return (self.X.shape == (lanes, state_columns)
                and self.C_thr.shape == (lanes, cross_columns))

    def rows(self, start: int, count: int) -> "ExternalBatchBuffers":
        """A view of lanes ``[start, start + count)`` of these buffers."""
        sl = slice(start, start + count)
        return ExternalBatchBuffers(
            **{name: getattr(self, name)[sl] for name in self.ARRAY_NAMES})


# ---------------------------------------------------------------------------
# Runtime state: (B, n_slots) arrays + per-lane scalar mirrors
# ---------------------------------------------------------------------------

class _LaneRuntime:
    """Per-(automaton, lane) mutable mirror of ``_AutomatonRuntime``.

    Duck-types the compiled kernel's runtime: the scalar fallback programs
    (guards, resets, crossing programs, RK4) run unchanged against it, with
    ``values`` backed by one row of the automaton's batch matrix.
    """

    __slots__ = ("auto", "lane", "name", "slots", "values", "view", "loc",
                 "location", "entered_at", "pending")

    def __init__(self, auto: "_BatchedAutomaton", lane: int):
        ca = auto.ca
        self.auto = auto
        self.lane = lane
        self.name = ca.name
        self.slots: Dict[str, int] = dict(ca.slot_of)
        self.values = auto.arr[lane]
        self.view = SlotValuation(self.slots, self.values)
        self.loc: int = ca.initial_location
        self.location: CompiledLocation = ca.locations[self.loc]
        self.entered_at: float = 0.0
        self.pending: List[_PendingEvent] = []

    def move_to(self, target_index: int, now: float) -> None:
        self.loc = target_index
        self.location = self.auto.ca.locations[target_index]
        self.entered_at = now
        self.auto.on_move(self.lane, target_index)

    def set(self, name: str, value: float) -> None:
        slot = self.slots.get(name)
        if slot is None:
            slot = self.auto.ensure_column(name)
            self.slots[name] = slot
        self.values[slot] = value

    def get(self, name: str, default: float = 0.0) -> float:
        slot = self.slots.get(name)
        return default if slot is None else self.values[slot]


class _BatchedAutomaton:
    """Joint runtime state of one automaton across all lanes.

    Continuous state lives in a column block of the engine's global
    ``(B, total_slots)`` matrix; this object holds the per-automaton views
    plus the per-lane location array, slot map and runtime mirrors.
    """

    __slots__ = ("engine", "ca", "tab", "batch", "width", "arr", "rates",
                 "driven", "locs", "lanes", "col_of", "n_slots",
                 "cross_slice", "cross_rows_global",
                 "_groups", "_groups_version", "_moved")

    def __init__(self, engine: "BatchedEngine", tab: BatchedAutomatonTables,
                 batch: int):
        ca = tab.ca
        self.engine = engine
        self.ca = ca
        self.tab = tab
        self.batch = batch
        self.n_slots = len(ca.slot_of)
        self.width = self.n_slots + _SPARE_COLUMNS
        self.arr = None
        self.rates = None
        self.driven = None
        self.locs = np.full(batch, ca.initial_location, dtype=np.intp)
        self.col_of: Dict[str, int] = dict(ca.slot_of)
        self.lanes: List[_LaneRuntime] = []
        self.cross_slice = slice(0, 0)
        self.cross_rows_global = ()
        self._groups = None
        self._groups_version = -1
        self._moved = True

    def attach(self, X, R, D, col_offset: int, cross_offset: int) -> None:
        """Bind the automaton's views into freshly built global matrices."""
        self.arr = X[:, col_offset:col_offset + self.width]
        self.rates = R[:, col_offset:col_offset + self.width]
        self.driven = D[:, col_offset:col_offset + self.width]
        self.cross_slice = slice(cross_offset,
                                 cross_offset + self.tab.cross_width)
        self.cross_rows_global = tuple(
            (row[0] + col_offset,) + row[1:] for row in self.tab.cross_rows)
        fresh = not self.lanes
        if fresh:
            self.arr[:, :self.n_slots] = self.ca.initial_values
            self.lanes = [_LaneRuntime(self, b) for b in range(self.batch)]
        else:  # re-attach after growth: rebind the lane row views
            for rt in self.lanes:
                rt.values = self.arr[rt.lane]
                rt.view = SlotValuation(rt.slots, rt.values)
        # (Re)materialize every lane's rate/driven/crossing rows.
        for rt in self.lanes:
            self._write_rows(rt.lane, rt.loc)

    def _write_rows(self, lane: int, loc_index: int) -> None:
        bl = self.tab.locations[loc_index]
        self.rates[lane, :self.n_slots] = bl.rates_row
        self.driven[lane, :self.n_slots] = bl.driven_row
        if self.tab.cross_width:
            engine = self.engine
            sect = self.cross_slice
            row = self.cross_rows_global[loc_index]
            engine._C_col[lane, sect] = row[0]
            engine._C_thr[lane, sect] = row[1]
            engine._C_rate[lane, sect] = row[2]
            engine._C_sign[lane, sect] = row[3]
            engine._C_sthr[lane, sect] = row[4]
            engine._C_strict[lane, sect] = row[5]
            engine._C_eq[lane, sect] = row[6]
            engine._C_want[lane, sect] = row[7]

    def on_move(self, lane: int, loc_index: int) -> None:
        """A lane changed location: refresh its per-lane matrix rows."""
        self.locs[lane] = loc_index
        self._write_rows(lane, loc_index)
        self._moved = True

    def ensure_column(self, name: str) -> int:
        """Column index for ``name``, allocating (and growing) if needed."""
        col = self.col_of.get(name)
        if col is not None:
            return col
        col = len(self.col_of)
        if col >= self.width:
            self.engine._grow_automaton(self)
        self.col_of[name] = col
        return col

    def groups(self, act_rows, version: int):
        """Active lanes grouped by current location index (cached)."""
        if (self._groups is not None and not self._moved
                and self._groups_version == version):
            return self._groups
        if len(self.ca.locations) == 1:
            groups = ((0, act_rows),)
        else:
            locs_act = self.locs[act_rows]
            groups = tuple((int(k), act_rows[locs_act == k])
                           for k in np.unique(locs_act))
        self._groups = groups
        self._groups_version = version
        self._moved = False
        return groups


@dataclass
class Lane:
    """Per-replicate ingredients of one batched lane.

    Every stochastic component is per lane — seed, network (loss channels),
    environment processes, observers — exactly as a serial trial would own
    them, so each lane reproduces the corresponding serial run bit-for-bit.
    """

    seed: int | None = None
    network: Network | None = None
    processes: Sequence[EnvironmentProcess] = ()
    observers: Sequence[TraceObserver] = ()


class _LaneContext:
    """Everything one lane owns besides the shared state matrices."""

    __slots__ = ("index", "seed", "network", "processes", "observers",
                 "recorder", "state", "facade", "rng", "last_wake", "done")

    def __init__(self, index: int, lane: Lane, record_trace: bool):
        self.index = index
        self.seed = lane.seed
        self.network = lane.network or Network()
        self.processes = list(lane.processes)
        self.recorder = TraceRecorder() if record_trace else None
        self.observers: List[TraceObserver] = (
            ([self.recorder] if self.recorder is not None else [])
            + list(lane.observers))
        self.rng = spawn_rng(lane.seed, "engine")
        self.state: CompiledSystemState | None = None
        self.facade: "_LaneEngine" | None = None
        self.last_wake: Dict[int, float] = {}
        self.done = False


class _LaneEngine:
    """Engine facade handed to one lane's processes, couplings and resets.

    Implements the :class:`SimulationEngine` surface those components use —
    ``now``, ``state``, ``rng``, ``inject_event``, ``set_variable``,
    ``location_of`` — scoped to a single lane of the batch.
    """

    __slots__ = ("_engine", "_ctx")

    kind = "batched-lane"

    def __init__(self, engine: "BatchedEngine", ctx: _LaneContext):
        self._engine = engine
        self._ctx = ctx

    @property
    def now(self) -> float:
        return self._ctx.state.time

    @property
    def state(self) -> CompiledSystemState:
        return self._ctx.state

    @property
    def rng(self):
        return self._ctx.rng

    @property
    def network(self) -> Network:
        return self._ctx.network

    @property
    def system(self) -> HybridSystem:
        return self._engine.system

    @property
    def seed(self) -> int | None:
        return self._ctx.seed

    def location_of(self, automaton_name: str) -> str:
        return self._ctx.state.location_of(automaton_name)

    def set_variable(self, automaton_name: str, variable: str, value: float) -> None:
        self._ctx.state.runtime(automaton_name).set(variable, float(value))

    def inject_event(self, root: str, *, sender: str = "environment") -> None:
        self._engine._broadcast_lane(self._ctx, root, sender)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class BatchedEngine:
    """Execute ``B`` replicates of one hybrid system in vectorized lockstep.

    Batch mode: pass ``lanes=[Lane(...), ...]``; :meth:`run` returns one
    trace (or ``None`` with ``record_trace=False``) per lane, and per-lane
    results are bit-identical to serial reference/compiled runs with the
    same per-lane ingredients.

    Single-lane mode: constructed exactly like
    :class:`~repro.hybrid.simulate.engine.SimulationEngine` /
    :class:`~repro.hybrid.simulate.compiled.CompiledEngine` (``network=``,
    ``processes=``, ``seed=``...), :meth:`run` returns the single trace —
    this is what ``build_engine(kind="batched")`` produces, making the
    kernel a drop-in third engine tier.
    """

    kind = "batched"

    def __init__(self, system: HybridSystem | CompiledSystem, *,
                 lanes: Sequence[Lane] | None = None,
                 network: Network | None = None,
                 processes: Sequence[EnvironmentProcess] = (),
                 couplings: Sequence[Coupling] = (),
                 seed: int | None = None,
                 dt_max: float = 0.1,
                 max_cascade: int = 200,
                 record_variables: Iterable[tuple[str, str]] = (),
                 sample_interval: float = 0.25,
                 observers: Sequence[TraceObserver] = (),
                 record_trace: bool = True,
                 buffers: "ExternalBatchBuffers | None" = None):
        _require_numpy()
        self.compiled = (system if isinstance(system, CompiledSystem)
                         else compile_system(system))
        self.system = self.compiled.system
        self.tables = self.compiled.batched_tables()
        self._single = lanes is None
        if lanes is None:
            lanes = [Lane(seed=seed, network=network, processes=processes,
                          observers=observers)]
        if not lanes:
            raise SimulationError("a batched engine needs at least one lane")
        self.batch = len(lanes)
        self.couplings: List[Coupling] = list(couplings)
        self.dt_max = float(dt_max)
        self.max_cascade = int(max_cascade)
        self.record_variables = list(record_variables)
        self.sample_interval = float(sample_interval)
        self._record_trace = record_trace
        self._ext_buffers = buffers
        self._ctxs = [_LaneContext(i, lane, record_trace)
                      for i, lane in enumerate(lanes)]
        for ctx in self._ctxs:
            ctx.facade = _LaneEngine(self, ctx)
        self._autos: List[_BatchedAutomaton] = []
        self._base_needs_sampling = bool(self.couplings) or bool(self.record_variables)
        self._times = np.zeros(self.batch, dtype=np.float64)
        self._next_sample = [0.0] * self.batch
        self._pending_mask = np.zeros(self.batch, dtype=bool)
        self._coupling_programs: List = []
        self._act_version = 0
        self._build_state()

    # -- single-lane compatibility surface --------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time of lane 0 (single-lane compatibility)."""
        return self._ctxs[0].state.time

    @property
    def state(self) -> CompiledSystemState:
        """Lane 0's system state (single-lane compatibility)."""
        return self._ctxs[0].state

    @property
    def trace(self) -> Trace | None:
        """Lane 0's recorded trace (``None`` when ``record_trace=False``)."""
        recorder = self._ctxs[0].recorder
        return recorder.trace if recorder is not None else None

    @property
    def traces(self) -> List[Trace | None]:
        """Every lane's recorded trace, in lane order."""
        return [ctx.recorder.trace if ctx.recorder is not None else None
                for ctx in self._ctxs]

    @property
    def rng(self):
        return self._ctxs[0].rng

    @property
    def network(self) -> Network:
        return self._ctxs[0].network

    @property
    def seed(self) -> int | None:
        return self._ctxs[0].seed

    @property
    def processes(self) -> List[EnvironmentProcess]:
        return self._ctxs[0].processes

    @property
    def observers(self) -> List[TraceObserver]:
        return self._ctxs[0].observers

    def location_of(self, automaton_name: str) -> str:
        return self._ctxs[0].state.location_of(automaton_name)

    def set_variable(self, automaton_name: str, variable: str, value: float) -> None:
        self._ctxs[0].state.runtime(automaton_name).set(variable, float(value))

    def inject_event(self, root: str, *, sender: str = "environment") -> None:
        self._broadcast_lane(self._ctxs[0], root, sender)

    def check_invariants(self) -> None:
        """Raise :class:`TimeBlockError` if any lane violates an invariant now."""
        for auto in self._autos:
            for rt in auto.lanes:
                if not rt.location.invariant.evaluate(rt.view):
                    raise TimeBlockError(
                        f"automaton {rt.name!r} violates the invariant of "
                        f"location {rt.location.name!r} at "
                        f"t={self._ctxs[rt.lane].state.time:.6f}s and no edge "
                        "fired")

    # -- state construction ------------------------------------------------------
    def _build_state(self) -> None:
        self._autos = [_BatchedAutomaton(self, tab, self.batch)
                       for tab in self.tables.automata]
        self._rebuild_matrices()
        self._nonconst_autos = [
            auto for auto in self._autos
            if any(bl.advance_kind != "const" for bl in auto.tab.locations)]
        for ctx in self._ctxs:
            runtimes = [auto.lanes[ctx.index] for auto in self._autos]
            ctx.state = CompiledSystemState(runtimes)
            ctx.last_wake = {}
            ctx.done = False
        self._times = np.zeros(self.batch, dtype=np.float64)
        self._next_sample = [0.0] * self.batch
        self._pending_mask = np.zeros(self.batch, dtype=bool)
        self._base_needs_sampling = bool(self.couplings) or bool(self.record_variables)
        # Automata that still need per-location-group scheduling work after
        # the global crossing table (dynamic/generic predicates, box and
        # boolean-composition programs, sampling requests).
        self._sched_autos = [
            auto for auto in self._autos
            if any(bl.dynamic or bl.vec_cross or bl.scalar_cross
                   or (bl.sampling_only and not self._base_needs_sampling)
                   for bl in auto.tab.locations)]
        self._coupling_programs = [self._lower_coupling(c) for c in self.couplings]
        self._act_version += 1

    def _rebuild_matrices(self) -> None:
        """(Re)allocate the global state/rate/driven/crossing matrices.

        With matching :class:`ExternalBatchBuffers` attached, the matrices
        are the caller's arrays, zero-initialized here exactly like the
        private ``np.zeros``/``np.full`` allocations — lane results never
        depend on where the storage lives.  Buffers that do not fit (a
        runtime-grown automaton widened the layout) detach permanently.
        """
        total = sum(auto.width for auto in self._autos)
        cross_total = sum(auto.tab.cross_width for auto in self._autos)
        ext = self._ext_buffers
        if ext is not None and not ext.matches(self.batch, total, cross_total):
            ext = self._ext_buffers = None
        if ext is not None:
            self._X = ext.X
            self._R = ext.R
            self._D = ext.D
            self._C_col = ext.C_col
            self._C_thr = ext.C_thr
            self._C_rate = ext.C_rate
            self._C_sign = ext.C_sign
            self._C_sthr = ext.C_sthr
            self._C_strict = ext.C_strict
            self._C_eq = ext.C_eq
            self._C_want = ext.C_want
            self._X[:] = 0.0
            self._R[:] = 0.0
            self._D[:] = False
            self._C_col[:] = 0
            self._C_thr[:] = math.inf
            self._C_rate[:] = 1.0
            self._C_sign[:] = 1.0
            self._C_sthr[:] = math.inf
            self._C_strict[:] = False
            self._C_eq[:] = False
            self._C_want[:] = False
        else:
            self._X = np.zeros((self.batch, total), dtype=np.float64)
            self._R = np.zeros((self.batch, total), dtype=np.float64)
            self._D = np.zeros((self.batch, total), dtype=bool)
            self._C_col = np.zeros((self.batch, cross_total), dtype=np.intp)
            self._C_thr = np.full((self.batch, cross_total), math.inf)
            self._C_rate = np.ones((self.batch, cross_total), dtype=np.float64)
            self._C_sign = np.ones((self.batch, cross_total), dtype=np.float64)
            self._C_sthr = np.full((self.batch, cross_total), math.inf)
            self._C_strict = np.zeros((self.batch, cross_total), dtype=bool)
            self._C_eq = np.zeros((self.batch, cross_total), dtype=bool)
            self._C_want = np.zeros((self.batch, cross_total), dtype=bool)
        self._cross_total = cross_total
        self._cross_has_eq = any(
            bool(row[6].any())
            for auto in self._autos for row in auto.tab.cross_rows)
        col_offset = 0
        cross_offset = 0
        for auto in self._autos:
            auto.attach(self._X, self._R, self._D, col_offset, cross_offset)
            col_offset += auto.width
            cross_offset += auto.tab.cross_width

    def _grow_automaton(self, grown: _BatchedAutomaton) -> None:
        """A runtime-added variable overflowed an automaton's column block."""
        old = {auto.ca.name: (np.array(auto.arr), np.array(auto.rates),
                              np.array(auto.driven)) for auto in self._autos}
        grown.width += _SPARE_COLUMNS
        # External buffers are sized for the compile-time layout; a grown
        # layout detaches them (the rebuild below re-checks the fit).
        self._rebuild_matrices()
        for auto in self._autos:
            arr, rates, driven = old[auto.ca.name]
            auto.arr[:, :arr.shape[1]] = arr
            auto.rates[:, :arr.shape[1]] = rates
            auto.driven[:, :arr.shape[1]] = driven

    def _auto_of(self, automaton_name: str) -> _BatchedAutomaton:
        return self._autos[self.compiled.index_of[automaton_name]]

    def _lower_coupling(self, coupling: Coupling):
        """Vector twins of the canonical couplings; scalar fallback otherwise.

        Mirrors the compiled kernel's lowering, including its side effect of
        materialising the target slot in every lane at lowering time.
        """
        if type(coupling) is LocationIndicatorCoupling:
            src = self._auto_of(coupling.source_automaton)
            tgt = self._auto_of(coupling.target_automaton)
            for rt in tgt.lanes:
                rt.set(coupling.target_variable,
                       rt.get(coupling.target_variable))
            slot = tgt.col_of[coupling.target_variable]
            lut = np.array([cl.name in coupling.source_locations
                            for cl in src.ca.locations], dtype=bool)
            true_value = float(coupling.true_value)
            false_value = float(coupling.false_value)

            def indicator_program(act):
                tgt.arr[act, slot] = np.where(lut[src.locs[act]],
                                              true_value, false_value)

            return indicator_program
        if type(coupling) is VariableCopyCoupling and coupling.transform is None:
            src = self._auto_of(coupling.source_automaton)
            tgt = self._auto_of(coupling.target_automaton)
            for rt in tgt.lanes:
                rt.set(coupling.target_variable,
                       rt.get(coupling.target_variable))
            tslot = tgt.col_of[coupling.target_variable]
            sslot = src.ca.slot_of.get(coupling.source_variable)
            if sslot is not None:
                def copy_program(act):
                    tgt.arr[act, tslot] = src.arr[act, sslot]

                return copy_program
            source_variable = coupling.source_variable

            def dynamic_copy_program(act):
                # The source variable did not exist at compile time: read it
                # through each lane's live slot map (it may appear later in
                # some lanes only), exactly like the compiled fallback.
                for b in act.tolist():
                    tgt.arr[b, tslot] = src.lanes[b].get(source_variable, 0.0)

            return dynamic_copy_program

        def generic_program(act, coupling=coupling):
            for b in act.tolist():
                coupling.apply(self._ctxs[b].facade)

        return generic_program

    # -- main loop ----------------------------------------------------------------
    def run(self, horizon: float):
        """Run every lane from time zero to ``horizon`` seconds.

        Returns the single lane's trace (or ``None``) in single-lane mode,
        otherwise the list of per-lane traces in lane order.
        """
        if horizon <= 0:
            raise SimulationError("simulation horizon must be positive")
        horizon = float(horizon)
        for ctx in self._ctxs:
            ctx.network.reset(ctx.seed)
        self._initialize()

        act_list = list(self._ctxs)
        act_rows = np.arange(self.batch, dtype=np.intp)
        times = self._times
        while True:
            alive = [ctx for ctx in act_list
                     if times[ctx.index] < horizon - EPSILON]
            if len(alive) != len(act_list):
                for ctx in act_list:
                    if times[ctx.index] >= horizon - EPSILON:
                        for observer in ctx.observers:
                            observer.end_run(horizon)
                        ctx.done = True
                act_list = alive
                act_rows = np.array([ctx.index for ctx in act_list],
                                    dtype=np.intp)
                self._act_version += 1
            if not act_list:
                break
            self._apply_couplings(act_rows)
            next_times = self._next_time(act_rows, act_list, horizon)
            self._advance_continuous(act_rows, next_times - times)
            times[act_rows] = next_times[act_rows]
            now_values = times.tolist()
            for ctx in act_list:
                ctx.state.time = now_values[ctx.index]
            self._apply_couplings(act_rows)
            self._wake_processes(act_list)
            self._process_discrete(act_rows, act_list)
            self._maybe_sample(act_list)

        if self._single:
            return self.trace
        return self.traces

    # -- initialization -----------------------------------------------------------
    def _initialize(self) -> None:
        self._build_state()
        risky = self.system.risky_locations()
        for ctx in self._ctxs:
            for observer in ctx.observers:
                observer.begin_run(risky)
            for auto in self._autos:
                rt = auto.lanes[ctx.index]
                for observer in ctx.observers:
                    observer.register_automaton(rt.name, rt.location.name,
                                                auto.ca.risky_locations)
            for process in ctx.processes:
                process.initialize(ctx.facade)
        all_rows = np.arange(self.batch, dtype=np.intp)
        self._apply_couplings(all_rows)
        self._wake_processes(self._ctxs)
        self._process_discrete(all_rows, self._ctxs)
        self._maybe_sample(self._ctxs, force=True)

    # -- continuous phase -----------------------------------------------------------
    def _apply_couplings(self, act_rows) -> None:
        for program in self._coupling_programs:
            program(act_rows)

    def _next_time(self, act_rows, act_list, horizon: float):
        """Vectorized earliest-relevant-instant per lane (absolute times)."""
        times = self._times
        best = np.full(self.batch, horizon, dtype=np.float64)
        needs_sampling = np.zeros(self.batch, dtype=bool)
        if self._base_needs_sampling:
            needs_sampling[act_rows] = True
        if self._cross_total:
            # One 2-D pass over the global crossing table schedules every
            # stacked linear crossing of every automaton and lane.  Entries
            # that are satisfied (0), unreachable (inf) or within EPSILON
            # map to inf exactly as the scheduler ignores them, so the row
            # minimum equals folding each crossing separately.
            rows = act_rows
            V = self._X[rows[:, None], self._C_col[rows]]
            thr = self._C_thr[rows]
            sthr = self._C_sthr[rows]
            u = V * self._C_sign[rows]
            cur = np.where(self._C_strict[rows], u < sthr, u <= sthr)
            delay = (thr - V) / self._C_rate[rows]
            out = np.where(delay < 0, math.inf, np.maximum(delay, 0.0))
            if self._cross_has_eq:
                eq = self._C_eq[rows]
                cur = np.where(eq, np.abs(V - thr) <= EPSILON, cur)
                out = np.where(eq, np.where(delay > 0, delay, math.inf), out)
            out = np.where(cur == self._C_want[rows], 0.0, out)
            out = np.where(out > EPSILON, out, math.inf)
            best[rows] = np.minimum(best[rows], times[rows] + out.min(axis=1))
        version = self._act_version
        for auto in self._sched_autos:
            arr = auto.arr
            for loc_index, rows in auto.groups(act_rows, version):
                bl = auto.tab.locations[loc_index]
                if bl.sampling_only:
                    if not self._base_needs_sampling:
                        needs_sampling[rows] = True
                    continue
                if bl.dynamic:
                    self._next_time_dynamic(auto, loc_index, rows, best,
                                            needs_sampling)
                    continue
                if bl.vec_cross:
                    now_rows = times[rows]
                    for entry in bl.vec_cross:
                        delay = entry.delay(arr, rows)
                        if entry.may_sample:
                            invalid = np.isnan(delay)
                            if invalid.any():
                                needs_sampling[rows[invalid]] = True
                        ok = np.isfinite(delay) & (delay > EPSILON)
                        best[rows] = np.minimum(
                            best[rows],
                            np.where(ok, now_rows + delay, math.inf))
                if bl.scalar_cross:
                    self._next_time_scalar(auto, bl, rows, best, needs_sampling)
        for ctx in act_list:
            index = ctx.index
            now = ctx.state.time
            for process in ctx.processes:
                wakeup = process.next_wakeup(now)
                if wakeup is not None and math.isfinite(wakeup):
                    candidate = max(wakeup, now)
                    if candidate < best[index]:
                        best[index] = candidate
        if needs_sampling.any():
            cap = times + self.dt_max
            best = np.where(needs_sampling & (cap < best), cap, best)
        next_times = np.minimum(best, horizon)
        forced = next_times <= times + EPSILON
        if forced.any():
            next_times = np.where(forced,
                                  np.minimum(times + _MIN_ADVANCE, horizon),
                                  next_times)
        return next_times

    def _next_time_scalar(self, auto: _BatchedAutomaton, bl: BatchedLocation,
                          rows, best, needs_sampling) -> None:
        """Per-lane generic crossing programs (non-vectorizable predicates)."""
        times = self._times
        lanes = auto.lanes
        for b in rows.tolist():
            rt = lanes[b]
            values = rt.values
            view = rt.view
            now = times[b]
            for program in bl.scalar_cross:
                delay = program(values, view)
                if delay is None:
                    needs_sampling[b] = True
                elif math.isfinite(delay) and delay > EPSILON:
                    candidate = now + delay
                    if candidate < best[b]:
                        best[b] = candidate

    def _next_time_dynamic(self, auto: _BatchedAutomaton, loc_index: int,
                           rows, best, needs_sampling) -> None:
        """Affine flow of unknown shape: reference semantics per lane."""
        times = self._times
        cl = auto.ca.locations[loc_index]
        for b in rows.tolist():
            rt = auto.lanes[b]
            now = times[b]
            rates = cl.flow.rates(rt.view)
            for ce in cl.asap_edges:
                delay = ce.edge.guard.time_until_true(rt.view, rates)
                if delay is None:
                    needs_sampling[b] = True
                elif math.isfinite(delay) and delay > EPSILON:
                    candidate = now + delay
                    if candidate < best[b]:
                        best[b] = candidate
            inv_delay = cl.invariant.time_until_false(rt.view, rates)
            if inv_delay is None:
                needs_sampling[b] = True
            elif math.isfinite(inv_delay) and inv_delay > EPSILON:
                candidate = now + inv_delay
                if candidate < best[b]:
                    best[b] = candidate

    def _advance_continuous(self, act_rows, dt) -> None:
        positive = dt > 0
        # Forced progress in _next_time makes dt > 0 for every active lane
        # except at the horizon clamp, so skip the filtering gather then.
        all_positive = bool(positive[act_rows].all())
        moving_all = act_rows if all_positive else act_rows[positive[act_rows]]
        if moving_all.size:
            # Every constant-rate slot of every automaton and lane advances
            # in one masked operation; the driven mask copies non-driven
            # slots through bit-exactly (no ``x + 0.0*dt`` sign flips).
            segment = self._X[moving_all]
            self._X[moving_all] = np.where(
                self._D[moving_all],
                segment + self._R[moving_all] * dt[moving_all, None],
                segment)
        version = self._act_version
        for auto in self._nonconst_autos:
            for loc_index, rows in auto.groups(act_rows, version):
                bl = auto.tab.locations[loc_index]
                if bl.advance_kind == "const":
                    continue
                moving = rows if all_positive else rows[positive[rows]]
                if moving.size == 0:
                    continue
                if bl.advance_kind == "vec_ode":
                    self._advance_vec_ode(auto, bl, moving, dt[moving])
                else:
                    self._advance_scalar(auto, loc_index, moving, dt)

    def _advance_vec_ode(self, auto: _BatchedAutomaton, bl: BatchedLocation,
                         rows, dts) -> None:
        """Lane-vectorized RK4, operation-for-operation like the scalar path."""
        arr = auto.arr
        vector_func = bl.ode_vector_func
        substep = bl.ode_substep
        slot_of = auto.ca.slot_of
        sub = rows
        remaining = dts.copy()
        while True:
            live = remaining > 1e-12
            if not live.any():
                break
            if not live.all():
                sub = sub[live]
                remaining = remaining[live]
            base = _VectorView(arr, sub, slot_of)
            h = np.minimum(substep, remaining)
            half = h / 2.0
            k1 = vector_func(base)
            probe = _VectorOverlay(
                base, {name: base.get(name, 0.0) + rate * half
                       for name, rate in k1.items()})
            k2 = vector_func(probe)
            probe = _VectorOverlay(
                base, {name: base.get(name, 0.0) + rate * half
                       for name, rate in k2.items()})
            k3 = vector_func(probe)
            probe = _VectorOverlay(
                base, {name: base.get(name, 0.0) + rate * h
                       for name, rate in k3.items()})
            k4 = vector_func(probe)
            for name, slot in bl.ode_var_slots:
                combined = (k1.get(name, 0.0) + 2.0 * k2.get(name, 0.0)
                            + 2.0 * k3.get(name, 0.0) + k4.get(name, 0.0)) / 6.0
                arr[sub, slot] = arr[sub, slot] + combined * h
            remaining = remaining - h

    def _advance_scalar(self, auto: _BatchedAutomaton, loc_index: int,
                        rows, dt) -> None:
        """Per-lane fallback: the compiled kernel's advance, lane by lane."""
        cl = auto.ca.locations[loc_index]
        for b in rows.tolist():
            rt = auto.lanes[b]
            dtb = float(dt[b])
            if cl.advance_program is not None:
                cl.advance_program(rt, dtb)
            else:
                new_valuation = cl.flow.advance(rt.view, dtb)
                # Every write goes through rt.set: a runtime-new variable
                # can grow the state matrix mid-loop, which rebinds
                # rt.values — a captured local would write into the
                # detached old array.
                for name, value in new_valuation.items():
                    rt.set(name, value)

    # -- environment ----------------------------------------------------------------
    def _wake_processes(self, act_list) -> None:
        for ctx in act_list:
            now = ctx.state.time
            for process in ctx.processes:
                wakeup = process.next_wakeup(now)
                if wakeup is None or wakeup > now + EPSILON:
                    continue
                key = id(process)
                if ctx.last_wake.get(key) == now:
                    continue
                ctx.last_wake[key] = now
                process.wake(ctx.facade, now)

    # -- discrete phase ----------------------------------------------------------------
    def _process_discrete(self, act_rows, act_list) -> None:
        """Vectorized may-fire pre-check, then per-lane cascades where needed."""
        maybe = self._pending_mask.copy()
        version = self._act_version
        for auto in self._autos:
            arr = auto.arr
            for loc_index, rows in auto.groups(act_rows, version):
                bl = auto.tab.locations[loc_index]
                if not bl.has_asap:
                    continue
                if bl.precheck_always:
                    maybe[rows] = True
                    continue
                hit = bl.precheck_guards[0].evaluate(arr, rows)
                for guard in bl.precheck_guards[1:]:
                    hit = hit | guard.evaluate(arr, rows)
                if hit.any():
                    maybe[rows[hit]] = True
        if not maybe.any():
            return
        ctxs = self._ctxs
        for index in np.flatnonzero(maybe).tolist():
            self._process_discrete_lane(ctxs[index])

    def _process_discrete_lane(self, ctx: _LaneContext) -> None:
        for _ in range(self.max_cascade):
            fired_any = False
            for auto in self._autos:
                if self._fire_one(ctx, auto):
                    fired_any = True
            if not fired_any:
                break
        else:
            raise ZenoError(
                f"more than {self.max_cascade} cascaded transition rounds at "
                f"t={ctx.state.time:.6f}s; the model is (quasi-)Zeno")
        # Unconsumed events do not persist across time instants.
        for auto in self._autos:
            auto.lanes[ctx.index].pending.clear()
        self._pending_mask[ctx.index] = False

    def _fire_one(self, ctx: _LaneContext, auto: _BatchedAutomaton) -> bool:
        """Fire at most one enabled edge of this lane's automaton."""
        rt = auto.lanes[ctx.index]
        location = rt.location
        edges = location.edges
        if not edges:
            return False
        pending = rt.pending
        if not pending and not location.has_asap:
            return False
        values = rt.values
        view = rt.view
        chosen: CompiledEdge | None = None
        chosen_event_index: int | None = None
        best_key: tuple[int, int, int] | None = None
        for ce in edges:
            event_index: int | None = None
            if ce.trigger_root is not None:
                event_index = next(
                    (i for i, ev in enumerate(pending) if ev.root == ce.trigger_root),
                    None)
                if event_index is None:
                    continue
            if ce.guard_program is not None and not ce.guard_program(values, view):
                continue
            if best_key is None or ce.key < best_key:
                best_key = ce.key
                chosen = ce
                chosen_event_index = event_index
        if chosen is None:
            return False
        trigger_root = None
        if chosen_event_index is not None:
            trigger_root = pending.pop(chosen_event_index).root
        self._take_edge(ctx, rt, chosen, trigger_root)
        return True

    def _take_edge(self, ctx: _LaneContext, rt: _LaneRuntime, ce: CompiledEdge,
                   trigger_root: str | None) -> None:
        now = ctx.state.time
        if ce.assignments is not None:
            values = rt.values
            for slot, value in ce.assignments:
                values[slot] = value
        else:
            new_valuation = ce.edge.reset.apply(rt.view)
            for name, value in new_valuation.items():
                rt.set(name, value)
        rt.move_to(ce.target_index, now)
        record = TransitionRecord(
            time=now, automaton=rt.name, source=ce.source_name,
            target=ce.target_name, reason=ce.reason, trigger_root=trigger_root,
            emitted=ce.emits)
        for observer in ctx.observers:
            observer.on_transition(record)
        for process in ctx.processes:
            process.notify_transition(ctx.facade, record)
        for root in ce.emits:
            self._broadcast_lane(ctx, root, rt.name)

    def _broadcast_lane(self, ctx: _LaneContext, root: str, sender: str) -> None:
        """Deliver event ``root`` to every interested receiver of one lane."""
        receivers = self.compiled.receivers_of(root)
        sender_entity = self.compiled.entity_of.get(sender, sender)
        now = ctx.state.time
        index = ctx.index
        delivered_any = False
        for receiver_index, receiver_name, lossy, receiver_entity in receivers:
            if receiver_name == sender:
                continue
            same_entity = sender_entity == receiver_entity
            if lossy and not same_entity:
                delivered = ctx.network.attempt_delivery(
                    sender_entity, receiver_entity, root, now)
            else:
                delivered = True
            record = EventRecord(
                time=now, root=root, sender=sender, receiver=receiver_name,
                delivered=delivered, lossy=lossy and not same_entity)
            for observer in ctx.observers:
                observer.on_event(record)
            if delivered:
                self._autos[receiver_index].lanes[index].pending.append(
                    _PendingEvent(root, sender))
                delivered_any = True
        if delivered_any:
            self._pending_mask[index] = True

    # -- sampling ----------------------------------------------------------------------
    def _maybe_sample(self, act_list, force: bool = False) -> None:
        if not self.record_variables:
            return
        next_sample = self._next_sample
        for ctx in act_list:
            index = ctx.index
            now = ctx.state.time
            if not force and now + EPSILON < next_sample[index]:
                continue
            state = ctx.state
            for automaton_name, variable in self.record_variables:
                value = float(state.value_of(automaton_name, variable))
                for observer in ctx.observers:
                    observer.on_sample(automaton_name, variable, now, value)
            next_sample[index] = now + self.sample_interval
