"""Compiled simulation kernel: lower once, mutate flat state, stream observations.

The reference :class:`~repro.hybrid.simulate.engine.SimulationEngine` is a
direct transcription of the paper's semantics: every step it re-derives
flow rates, re-filters edge lists, re-dispatches polymorphic predicates and
allocates a fresh frozen ``AutomatonState``/``Valuation`` pair per member
automaton.  That is ideal as an executable specification and hopeless as a
campaign workhorse.

This module is the production kernel.  :func:`compile_system` lowers a
:class:`~repro.hybrid.system.HybridSystem` into index-based tables built
once per trial:

* locations, edges and variables become integers; valuations become flat
  ``list[float]`` slot arrays mutated in place;
* affine flows become pre-resolved rate vectors (``(slot, rate)`` pairs);
* guards and invariants compile to crossing *programs* -- closures with the
  affine-crossing coefficients already solved, so the scheduler evaluates a
  handful of multiplications instead of re-walking predicate trees;
* event roots map to pre-resolved receiver tables (receiver index, lossy
  flag, hosting entity).

:class:`CompiledEngine` executes those tables with the exact control flow
and floating-point arithmetic of the reference engine, so for every seed it
produces **bit-identical** traces, event logs and samples (enforced by
``tests/hybrid/test_compiled_equivalence.py``).  Per-step invalidation is
structural rather than numeric: a guard whose watched variable cannot move
in the current location is dropped from the schedule at compile time, and
an automaton's deadline program only changes when its location does.
Numeric deadlines are deliberately *not* cached across instants -- the
reference engine re-derives them from the advanced valuation each scan, and
caching absolute crossing times would diverge from it by ULPs.

Observation goes through the same
:class:`~repro.hybrid.simulate.observers.TraceObserver` pipeline as the
reference engine; run with ``record_trace=False`` plus streaming observers
and the kernel retains no per-step history at all.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence

from repro.errors import SimulationError, TimeBlockError, ZenoError
from repro.hybrid.automaton import HybridAutomaton
from repro.hybrid.edges import Edge
from repro.hybrid.expressions import (BoxPredicate, FalsePredicate, LinearInequality,
                                      Not, Predicate, TruePredicate)
from repro.hybrid.flows import CallableFlow, CompositeFlow, ConstantFlow, Flow
from repro.hybrid.simulate.engine import _MIN_ADVANCE, Network, _PendingEvent
from repro.hybrid.simulate.observers import TraceObserver, TraceRecorder
from repro.hybrid.simulate.processes import (Coupling, EnvironmentProcess,
                                             LocationIndicatorCoupling,
                                             VariableCopyCoupling)
from repro.hybrid.system import HybridSystem
from repro.hybrid.trace import EventRecord, Trace, TransitionRecord
from repro.hybrid.variables import Valuation
from repro.util.seeding import spawn_rng
from repro.util.timebase import EPSILON

#: Sentinel: this guard/invariant can never contribute a crossing deadline
#: (nor a sampling request) in this location, so the scheduler skips it.
_STATIC_SKIP = object()


class SlotValuation(Mapping[str, float]):
    """Read-only :class:`Valuation`-compatible view over a slot array.

    Generic predicates, callable flows and reset functions written against
    the dict-based :class:`~repro.hybrid.variables.Valuation` interface run
    unchanged against the compiled kernel's mutable state through this
    view.  Slots the reference valuation never contained hold ``0.0``,
    which is indistinguishable from a missing key under the library-wide
    ``get(name, 0.0)`` convention.
    """

    __slots__ = ("_slots", "_values")

    def __init__(self, slots: Dict[str, int], values: List[float]):
        self._slots = slots
        self._values = values

    def __getitem__(self, key: str) -> float:
        return self._values[self._slots[key]]

    def __iter__(self) -> Iterator[str]:
        return iter(self._slots)

    def __len__(self) -> int:
        return len(self._slots)

    def get(self, key: str, default: float = 0.0) -> float:
        index = self._slots.get(key)
        return default if index is None else self._values[index]

    def as_dict(self) -> Dict[str, float]:
        return {name: self._values[index] for name, index in self._slots.items()}

    def updated(self, changes: Mapping[str, float]) -> Valuation:
        # Same arithmetic as Valuation.updated on an equal dict.
        merged = self.as_dict()
        merged.update({k: float(v) for k, v in changes.items()})
        return Valuation(merged)

    def advanced(self, rates: Mapping[str, float], dt: float) -> Valuation:
        # Same arithmetic as Valuation.advanced on an equal dict.
        if dt < 0:
            raise ValueError("dt must be non-negative")
        merged = self.as_dict()
        for name, rate in rates.items():
            merged[name] = merged.get(name, 0.0) + rate * dt
        return Valuation(merged)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:.6g}" for k, v in sorted(self.as_dict().items()))
        return f"SlotValuation({inner})"


class _OverlayValuation(Mapping[str, float]):
    """A base valuation with a few overridden entries (RK4 probe states).

    Stands in for the intermediate ``Valuation.advanced`` copies the
    reference RK4 integrator builds, without materialising the full dict.
    """

    __slots__ = ("_base", "_over")

    def __init__(self, base: Mapping[str, float], over: Dict[str, float]):
        self._base = base
        self._over = over

    def __getitem__(self, key: str) -> float:
        if key in self._over:
            return self._over[key]
        return self._base[key]

    def __iter__(self) -> Iterator[str]:
        yield from self._base
        for key in self._over:
            if key not in self._base:
                yield key

    def __len__(self) -> int:
        return len(self._base) + sum(1 for key in self._over
                                     if key not in self._base)

    def get(self, key: str, default: float = 0.0) -> float:
        if key in self._over:
            return self._over[key]
        return self._base.get(key, default)

    def as_dict(self) -> Dict[str, float]:
        merged = dict(self._base)
        merged.update(self._over)
        return merged

    def updated(self, changes: Mapping[str, float]) -> Valuation:
        merged = self.as_dict()
        merged.update({k: float(v) for k, v in changes.items()})
        return Valuation(merged)

    def advanced(self, rates: Mapping[str, float], dt: float) -> Valuation:
        if dt < 0:
            raise ValueError("dt must be non-negative")
        merged = self.as_dict()
        for name, rate in rates.items():
            merged[name] = merged.get(name, 0.0) + rate * dt
        return Valuation(merged)


# ---------------------------------------------------------------------------
# Lowering (model layer): HybridSystem -> index-based tables
# ---------------------------------------------------------------------------

def _predicate_variables(predicate: Predicate) -> set[str]:
    """Variable names a predicate reads, as far as statically known."""
    if isinstance(predicate, (LinearInequality,)):
        return {predicate.variable}
    if isinstance(predicate, BoxPredicate):
        return {predicate.variable}
    if isinstance(predicate, Not):
        return _predicate_variables(predicate.operand)
    operands = getattr(predicate, "operands", None)
    if operands is not None:
        names: set[str] = set()
        for operand in operands:
            names |= _predicate_variables(operand)
        return names
    return set()


def _flow_variables(flow: Flow) -> set[str]:
    """Variable names a flow may drive (including zero-rate declarations)."""
    if isinstance(flow, ConstantFlow):
        return set(flow.derivatives)
    if isinstance(flow, CompositeFlow):
        names: set[str] = set()
        for part in flow.parts:
            names |= _flow_variables(part)
        return names
    try:
        return set(flow.driven_variables())
    except NotImplementedError:  # pragma: no cover - defensive
        return set()


def _static_rates(flow: Flow) -> Dict[str, float] | None:
    """The flow's exact ``rates()`` result when it is valuation-independent."""
    if isinstance(flow, ConstantFlow):
        return dict(flow.derivatives)
    if isinstance(flow, CompositeFlow) and all(isinstance(p, ConstantFlow)
                                               for p in flow.parts):
        return flow.rates(Valuation({}))
    return None


def _lower_crossing(predicate: Predicate, rates: Mapping[str, float],
                    slot_of: Mapping[str, int], want_true: bool):
    """Compile ``time_until_true``/``time_until_false`` under constant rates.

    Returns :data:`_STATIC_SKIP` when the answer is provably ``0.0`` or
    ``inf`` for every reachable valuation (neither is a scheduling
    candidate, and neither requests sampling), otherwise a program
    ``(values, view) -> float | None`` that reproduces the reference
    predicate method bit-for-bit.
    """
    if isinstance(predicate, (TruePredicate, FalsePredicate)):
        return _STATIC_SKIP
    if isinstance(predicate, Not):
        return _lower_crossing(predicate.operand, rates, slot_of, not want_true)
    if isinstance(predicate, LinearInequality):
        rate = rates.get(predicate.variable, 0.0)
        if abs(rate) <= EPSILON:
            # _crossing_delay returns 0.0 (already there) or inf (frozen):
            # never a finite positive deadline, never a sampling request.
            return _STATIC_SKIP
        slot = slot_of[predicate.variable]

        def linear_program(values, view, *, predicate=predicate, slot=slot,
                           rate=rate, want=want_true):
            return predicate._crossing_delay(values[slot], rate, want)

        return linear_program
    if isinstance(predicate, BoxPredicate):
        rate = rates.get(predicate.variable, 0.0)
        if abs(rate) <= EPSILON:
            return _STATIC_SKIP

    def generic_program(values, view, *, predicate=predicate, rates=rates,
                        want=want_true):
        if want:
            return predicate.time_until_true(view, rates)
        return predicate.time_until_false(view, rates)

    return generic_program


def _lower_callable_advance(flow: CallableFlow, slot_of: Mapping[str, int]):
    """Compile a :class:`CallableFlow` into an in-place RK4 integrator.

    Reproduces ``CallableFlow.advance`` / ``_rk4_step`` /
    ``Valuation.advanced`` operation for operation over the slot array, so
    the integrated values are bit-identical to the reference engine's.
    """
    func = flow.func
    substep = flow.substep
    var_slots = tuple((name, slot_of[name]) for name in flow.variables)

    def advance_program(rt: "_AutomatonRuntime", dt: float) -> None:
        if dt <= 0:
            return
        values = rt.values
        view = rt.view
        remaining = dt
        while remaining > 1e-12:
            h = min(substep, remaining)
            half = h / 2.0
            k1 = {k: float(v) for k, v in func(view).items()}
            probe = _OverlayValuation(
                view, {name: view.get(name, 0.0) + rate * half
                       for name, rate in k1.items()})
            k2 = {k: float(v) for k, v in func(probe).items()}
            probe = _OverlayValuation(
                view, {name: view.get(name, 0.0) + rate * half
                       for name, rate in k2.items()})
            k3 = {k: float(v) for k, v in func(probe).items()}
            probe = _OverlayValuation(
                view, {name: view.get(name, 0.0) + rate * h
                       for name, rate in k3.items()})
            k4 = {k: float(v) for k, v in func(probe).items()}
            for name, slot in var_slots:
                combined = (k1.get(name, 0.0) + 2.0 * k2.get(name, 0.0)
                            + 2.0 * k3.get(name, 0.0) + k4.get(name, 0.0)) / 6.0
                values[slot] = values[slot] + combined * h
            remaining -= h

    return advance_program


def _lower_guard_eval(predicate: Predicate, slot_of: Mapping[str, int]):
    """Compile a guard's boolean evaluation; ``None`` means "always true"."""
    if isinstance(predicate, TruePredicate):
        return None
    if isinstance(predicate, LinearInequality):
        slot = slot_of[predicate.variable]

        def linear_eval(values, view, *, op=predicate.op, slot=slot,
                        threshold=predicate.threshold):
            return op.evaluate(values[slot], threshold)

        return linear_eval

    def generic_eval(values, view, *, predicate=predicate):
        return predicate.evaluate(view)

    return generic_eval


class CompiledEdge:
    """One lowered edge: integer target, pre-solved guard, flat reset."""

    __slots__ = ("edge", "source_name", "target_name", "target_index",
                 "trigger_root", "guard_program", "assignments", "emits",
                 "reason", "key")

    def __init__(self, edge: Edge, order_index: int, target_index: int,
                 slot_of: Mapping[str, int]):
        self.edge = edge
        self.source_name = edge.source
        self.target_name = edge.target
        self.target_index = target_index
        self.trigger_root = edge.trigger.root if edge.trigger is not None else None
        self.guard_program = _lower_guard_eval(edge.guard, slot_of)
        if edge.reset.function is None:
            self.assignments = tuple((slot_of[name], float(value))
                                     for name, value in edge.reset.assignments.items())
        else:
            self.assignments = None
        self.emits = tuple(edge.emits)
        self.reason = edge.reason
        # Same priority key the reference engine builds per enabled edge.
        self.key = (-edge.priority, 0 if edge.trigger is not None else 1, order_index)


class CompiledLocation:
    """One lowered location: rate vector, deadline programs, edge table."""

    __slots__ = ("name", "index", "flow", "affine", "invariant", "risky",
                 "static_rates", "const_items", "advance_program", "edges",
                 "asap_edges", "has_asap", "cross_programs", "inv_program")

    def __init__(self, automaton: HybridAutomaton, name: str, index: int,
                 loc_index: Mapping[str, int], slot_of: Mapping[str, int]):
        location = automaton.location(name)
        self.name = name
        self.index = index
        self.flow = location.flow
        self.affine = location.flow.is_affine
        self.invariant = location.invariant
        self.risky = location.risky
        self.static_rates = _static_rates(location.flow)
        if self.static_rates is not None:
            self.const_items = tuple((slot_of[var], rate)
                                     for var, rate in self.static_rates.items()
                                     if rate != 0.0)
        else:
            self.const_items = None
        self.advance_program = (_lower_callable_advance(location.flow, slot_of)
                                if isinstance(location.flow, CallableFlow) else None)
        source_edges = [e for e in automaton.edges if e.source == name]
        self.edges = tuple(CompiledEdge(edge, order_index, loc_index[edge.target],
                                        slot_of)
                           for order_index, edge in enumerate(source_edges))
        self.asap_edges = tuple(ce for ce in self.edges if ce.trigger_root is None)
        self.has_asap = bool(self.asap_edges)
        # Deadline programs exist only for affine locations with static
        # rates; dynamic-affine and non-affine locations are handled
        # generically by the scheduler.
        self.cross_programs = ()
        self.inv_program = None
        if self.affine and self.static_rates is not None:
            programs = []
            for ce in self.asap_edges:
                program = _lower_crossing(ce.edge.guard, self.static_rates,
                                          slot_of, True)
                if program is not _STATIC_SKIP:
                    programs.append(program)
            self.cross_programs = tuple(programs)
            inv = _lower_crossing(self.invariant, self.static_rates, slot_of, False)
            self.inv_program = None if inv is _STATIC_SKIP else inv


class CompiledAutomaton:
    """One lowered member automaton: slot map, location table, initial state."""

    __slots__ = ("name", "index", "entity", "slot_of", "initial_values",
                 "initial_location", "locations", "loc_index", "risky_locations")

    def __init__(self, automaton: HybridAutomaton, index: int, entity: str):
        automaton.validate()
        self.name = automaton.name
        self.index = index
        self.entity = entity
        names: Dict[str, None] = dict.fromkeys(automaton.variables)
        names.update(dict.fromkeys(automaton.initial_valuation))
        for location in automaton.locations.values():
            names.update(dict.fromkeys(sorted(_flow_variables(location.flow))))
            names.update(dict.fromkeys(
                sorted(_predicate_variables(location.invariant))))
        for edge in automaton.edges:
            names.update(dict.fromkeys(sorted(_predicate_variables(edge.guard))))
            names.update(dict.fromkeys(edge.reset.assignments))
        self.slot_of: Dict[str, int] = {name: i for i, name in enumerate(names)}
        initial = automaton.initial_valuation
        self.initial_values = [initial.get(name, 0.0) for name in names]
        self.loc_index: Dict[str, int] = {name: i
                                          for i, name in enumerate(automaton.locations)}
        if automaton.initial_location is None:
            raise SimulationError(
                f"automaton {automaton.name!r} has no initial location")
        self.initial_location = self.loc_index[automaton.initial_location]
        self.locations = tuple(
            CompiledLocation(automaton, name, i, self.loc_index, self.slot_of)
            for name, i in self.loc_index.items())
        self.risky_locations = set(automaton.risky_locations)


class CompiledSystem:
    """A hybrid system lowered to index-based tables (built once per trial)."""

    def __init__(self, system: HybridSystem):
        self.system = system
        self.automata: tuple[CompiledAutomaton, ...] = tuple(
            CompiledAutomaton(automaton, index, system.entity_of(name))
            for index, (name, automaton) in enumerate(system.automata.items()))
        self.index_of: Dict[str, int] = {ca.name: ca.index for ca in self.automata}
        self.entity_of: Dict[str, str] = {ca.name: ca.entity for ca in self.automata}
        #: root -> ((receiver automaton index, receiver name, lossy, entity), ...)
        self.receivers: Dict[str, tuple[tuple[int, str, bool, str], ...]] = {}
        for ca in self.automata:
            for root in system.automata[ca.name].received_roots():
                if root not in self.receivers:
                    self.receivers[root] = self._lower_receivers(root)

    def _lower_receivers(self, root: str) -> tuple[tuple[int, str, bool, str], ...]:
        return tuple((self.index_of[name], name, lossy, self.entity_of[name])
                     for name, lossy in self.system.receivers_of(root))

    def receivers_of(self, root: str) -> tuple[tuple[int, str, bool, str], ...]:
        table = self.receivers.get(root)
        if table is None:
            table = self._lower_receivers(root)
            self.receivers[root] = table
        return table

    def batched_tables(self):
        """Vector lowering tables for the batched kernel (built once, cached).

        Lanes of every :class:`~repro.hybrid.simulate.batched.BatchedEngine`
        sharing this compiled system reuse one table set, so a campaign cell
        pays the batched lowering exactly once per process.
        """
        tables = getattr(self, "_batched_tables", None)
        if tables is None:
            from repro.hybrid.simulate.batched import build_batched_tables

            tables = build_batched_tables(self)
            self._batched_tables = tables
        return tables

    def slot_layout(self) -> tuple[tuple[str, int], ...]:
        """Export the per-automaton slot layout of this lowered system.

        The layout is what external allocators (the shared-memory batch
        plane in :mod:`repro.campaign.shm`) need to size a ``(B,
        total_slots)`` state matrix without rebuilding the lowering: one
        ``(automaton_name, slot_count)`` pair per member automaton, in
        automaton index order.  It is a pure function of the hybrid model,
        so any process that lowers the same system computes the same
        layout.

        Returns:
            ``(name, slots)`` pairs in automaton order.
        """
        return tuple((ca.name, len(ca.slot_of)) for ca in self.automata)

    @property
    def total_slots(self) -> int:
        """Total state-variable slots across every member automaton."""
        return sum(len(ca.slot_of) for ca in self.automata)


def compile_system(system: HybridSystem) -> CompiledSystem:
    """Lower ``system`` into the compiled kernel's index-based tables."""
    return CompiledSystem(system)


# ---------------------------------------------------------------------------
# State layer: array-backed mutable state behind the SystemState read API
# ---------------------------------------------------------------------------

class _AutomatonRuntime:
    """Mutable hot-loop state of one member automaton (slots, not objects)."""

    __slots__ = ("ca", "name", "slots", "values", "view", "loc", "location",
                 "entered_at", "pending")

    def __init__(self, ca: CompiledAutomaton):
        self.ca = ca
        self.name = ca.name
        self.slots: Dict[str, int] = dict(ca.slot_of)
        self.values: List[float] = list(ca.initial_values)
        self.view = SlotValuation(self.slots, self.values)
        self.loc: int = ca.initial_location
        self.location: CompiledLocation = ca.locations[self.loc]
        self.entered_at: float = 0.0
        self.pending: List[_PendingEvent] = []

    def move_to(self, target_index: int, now: float) -> None:
        self.loc = target_index
        self.location = self.ca.locations[target_index]
        self.entered_at = now

    def set(self, name: str, value: float) -> None:
        slot = self.slots.get(name)
        if slot is None:
            slot = len(self.values)
            self.slots[name] = slot
            self.values.append(0.0)
        self.values[slot] = value

    def get(self, name: str, default: float = 0.0) -> float:
        slot = self.slots.get(name)
        return default if slot is None else self.values[slot]


class CompiledAutomatonState:
    """Read view of one automaton's runtime, shaped like ``AutomatonState``."""

    __slots__ = ("_runtime",)

    def __init__(self, runtime: _AutomatonRuntime):
        self._runtime = runtime

    @property
    def location(self) -> str:
        return self._runtime.location.name

    @property
    def valuation(self) -> SlotValuation:
        return self._runtime.view

    @property
    def entered_at(self) -> float:
        return self._runtime.entered_at

    def dwelling_time(self, now: float) -> float:
        return max(0.0, now - self._runtime.entered_at)


class CompiledSystemState:
    """Joint state of a compiled run, exposing the ``SystemState`` read API.

    Couplings, environment processes and tests read simulation state
    through :meth:`location_of` / :meth:`value_of` / ``automata[...]``
    exactly as with the reference engine; the backing storage is the flat
    per-automaton slot arrays.
    """

    def __init__(self, runtimes: Sequence[_AutomatonRuntime]):
        self.time: float = 0.0
        self._by_name: Dict[str, _AutomatonRuntime] = {rt.name: rt
                                                       for rt in runtimes}
        self.automata: Dict[str, CompiledAutomatonState] = {
            rt.name: CompiledAutomatonState(rt) for rt in runtimes}

    def runtime(self, automaton_name: str) -> _AutomatonRuntime:
        return self._by_name[automaton_name]

    def state_of(self, automaton_name: str) -> CompiledAutomatonState:
        return self.automata[automaton_name]

    def location_of(self, automaton_name: str) -> str:
        return self._by_name[automaton_name].location.name

    def valuation_of(self, automaton_name: str) -> SlotValuation:
        return self._by_name[automaton_name].view

    def value_of(self, automaton_name: str, variable: str,
                 default: float = 0.0) -> float:
        return self._by_name[automaton_name].get(variable, default)

    def snapshot(self) -> Mapping[str, tuple[str, Mapping[str, float]]]:
        return {name: (rt.location.name, rt.view.as_dict())
                for name, rt in self._by_name.items()}


# ---------------------------------------------------------------------------
# Scheduling + discrete execution
# ---------------------------------------------------------------------------

class CompiledEngine:
    """Execute a compiled hybrid system with reference-identical semantics.

    Drop-in counterpart of
    :class:`~repro.hybrid.simulate.engine.SimulationEngine`: same
    constructor arguments (plus ``observers`` / ``record_trace``), same
    public helpers (``now``, ``state``, ``inject_event``, ``set_variable``,
    ``location_of``, ``check_invariants``), and bit-identical traces for
    every seed.  Accepts either a :class:`~repro.hybrid.system.HybridSystem`
    (lowered on the spot) or a pre-built :class:`CompiledSystem`.
    """

    kind = "compiled"

    def __init__(self, system: HybridSystem | CompiledSystem, *,
                 network: Network | None = None,
                 processes: Sequence[EnvironmentProcess] = (),
                 couplings: Sequence[Coupling] = (),
                 seed: int | None = None,
                 dt_max: float = 0.1,
                 max_cascade: int = 200,
                 record_variables: Iterable[tuple[str, str]] = (),
                 sample_interval: float = 0.25,
                 observers: Sequence[TraceObserver] = (),
                 record_trace: bool = True):
        self.compiled = (system if isinstance(system, CompiledSystem)
                         else compile_system(system))
        self.system = self.compiled.system
        self.network = network or Network()
        self.processes: List[EnvironmentProcess] = list(processes)
        self.couplings: List[Coupling] = list(couplings)
        self.seed = seed
        self.dt_max = float(dt_max)
        self.max_cascade = int(max_cascade)
        self.record_variables = list(record_variables)
        self.sample_interval = float(sample_interval)
        self.rng = spawn_rng(seed, "engine")

        self._recorder = TraceRecorder() if record_trace else None
        self.observers: List[TraceObserver] = (
            ([self._recorder] if self._recorder is not None else [])
            + list(observers))
        if self._recorder is not None:
            self._recorder.trace = Trace(self.system.risky_locations())
        self._runtimes: List[_AutomatonRuntime] = [
            _AutomatonRuntime(ca) for ca in self.compiled.automata]
        self.state = CompiledSystemState(self._runtimes)
        self._coupling_programs = [self._lower_coupling(c) for c in self.couplings]
        self._next_sample_time = 0.0
        self._time_of_last_wake: Dict[int, float] = {}
        self._base_needs_sampling = bool(self.couplings) or bool(self.record_variables)

    # -- public helpers ---------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self.state.time

    @property
    def trace(self) -> Trace | None:
        """The recorded trace (``None`` when ``record_trace=False``)."""
        return self._recorder.trace if self._recorder is not None else None

    def set_variable(self, automaton_name: str, variable: str, value: float) -> None:
        """Overwrite one variable of one member automaton (used by couplings)."""
        self.state.runtime(automaton_name).set(variable, float(value))

    def inject_event(self, root: str, *, sender: str = "environment") -> None:
        """Broadcast an event from the environment at the current instant."""
        self._broadcast(root, sender)

    def location_of(self, automaton_name: str) -> str:
        """Current location of a member automaton."""
        return self.state.location_of(automaton_name)

    # -- main loop ----------------------------------------------------------------
    def run(self, horizon: float) -> Trace | None:
        """Run the simulation from time zero up to ``horizon`` seconds."""
        if horizon <= 0:
            raise SimulationError("simulation horizon must be positive")
        self.network.reset(self.seed)
        self._initialize()
        state = self.state
        while state.time < horizon - EPSILON:
            self._apply_couplings()
            next_time = self._next_time(horizon)
            dt = next_time - state.time
            if dt > 0:
                self._advance_continuous(dt)
            state.time = next_time
            self._apply_couplings()
            self._wake_processes()
            self._process_discrete()
            self._maybe_sample()
        for observer in self.observers:
            observer.end_run(horizon)
        return self.trace

    # -- initialization -----------------------------------------------------------
    def _initialize(self) -> None:
        self._runtimes = [_AutomatonRuntime(ca) for ca in self.compiled.automata]
        self.state = CompiledSystemState(self._runtimes)
        # Re-derived from the live lists so that couplings/record_variables
        # mutated after construction behave exactly as on the reference
        # engine (which re-checks them on every scan).
        self._coupling_programs = [self._lower_coupling(c) for c in self.couplings]
        self._base_needs_sampling = bool(self.couplings) or bool(self.record_variables)
        self._next_sample_time = 0.0
        self._time_of_last_wake = {}
        risky = self.system.risky_locations()
        for observer in self.observers:
            observer.begin_run(risky)
        for rt in self._runtimes:
            for observer in self.observers:
                observer.register_automaton(rt.name, rt.location.name,
                                            rt.ca.risky_locations)
        for process in self.processes:
            process.initialize(self)
        self._apply_couplings()
        self._wake_processes()
        self._process_discrete()
        self._maybe_sample(force=True)

    # -- continuous phase -----------------------------------------------------------
    def _lower_coupling(self, coupling: Coupling):
        """Compile the two canonical coupling shapes into direct slot moves.

        Exactly the reads and writes their ``apply`` would perform through
        the engine API; anything else (subclasses, transforms) falls back
        to ``coupling.apply(self)``.
        """
        if type(coupling) is LocationIndicatorCoupling:
            source = self.state.runtime(coupling.source_automaton)
            target = self.state.runtime(coupling.target_automaton)
            target.set(coupling.target_variable,
                       target.get(coupling.target_variable))
            slot = target.slots[coupling.target_variable]
            wanted = frozenset(coupling.source_locations)
            true_value = float(coupling.true_value)
            false_value = float(coupling.false_value)

            def indicator_program(values=target.values, slot=slot):
                values[slot] = (true_value if source.location.name in wanted
                                else false_value)

            return indicator_program
        if type(coupling) is VariableCopyCoupling and coupling.transform is None:
            source = self.state.runtime(coupling.source_automaton)
            target = self.state.runtime(coupling.target_automaton)
            target.set(coupling.target_variable,
                       target.get(coupling.target_variable))
            slot = target.slots[coupling.target_variable]
            source_variable = coupling.source_variable

            def copy_program(values=target.values, slot=slot):
                values[slot] = source.get(source_variable, 0.0)

            return copy_program
        return lambda: coupling.apply(self)

    def _apply_couplings(self) -> None:
        for program in self._coupling_programs:
            program()

    def _next_time(self, horizon: float) -> float:
        """Earliest relevant future instant (guard crossing, wakeup, sample cap)."""
        now = self.state.time
        best = horizon
        needs_sampling = self._base_needs_sampling
        for rt in self._runtimes:
            loc = rt.location
            if not loc.affine:
                needs_sampling = True
                continue
            if loc.static_rates is None:
                # Affine flow of unknown shape: reference semantics, with
                # rates re-derived from the live valuation.
                rates = loc.flow.rates(rt.view)
                for ce in loc.asap_edges:
                    delay = ce.edge.guard.time_until_true(rt.view, rates)
                    if delay is None:
                        needs_sampling = True
                    elif math.isfinite(delay) and delay > EPSILON:
                        candidate = now + delay
                        if candidate < best:
                            best = candidate
                inv_delay = loc.invariant.time_until_false(rt.view, rates)
                if inv_delay is None:
                    needs_sampling = True
                elif math.isfinite(inv_delay) and inv_delay > EPSILON:
                    candidate = now + inv_delay
                    if candidate < best:
                        best = candidate
                continue
            values = rt.values
            view = rt.view
            for program in loc.cross_programs:
                delay = program(values, view)
                if delay is None:
                    needs_sampling = True
                elif math.isfinite(delay) and delay > EPSILON:
                    candidate = now + delay
                    if candidate < best:
                        best = candidate
            if loc.inv_program is not None:
                inv_delay = loc.inv_program(values, view)
                if inv_delay is None:
                    needs_sampling = True
                elif math.isfinite(inv_delay) and inv_delay > EPSILON:
                    candidate = now + inv_delay
                    if candidate < best:
                        best = candidate
        for process in self.processes:
            wakeup = process.next_wakeup(now)
            if wakeup is not None and math.isfinite(wakeup):
                candidate = max(wakeup, now)
                if candidate < best:
                    best = candidate
        if needs_sampling:
            candidate = now + self.dt_max
            if candidate < best:
                best = candidate
        next_time = min(best, horizon)
        if next_time <= now + EPSILON:
            next_time = min(now + _MIN_ADVANCE, horizon)
        return next_time

    def _advance_continuous(self, dt: float) -> None:
        for rt in self._runtimes:
            loc = rt.location
            items = loc.const_items
            if items is not None:
                values = rt.values
                for slot, rate in items:
                    values[slot] += rate * dt
            elif loc.advance_program is not None:
                loc.advance_program(rt, dt)
            else:
                new_valuation = loc.flow.advance(rt.view, dt)
                values = rt.values
                slots = rt.slots
                for name, value in new_valuation.items():
                    slot = slots.get(name)
                    if slot is None:
                        rt.set(name, value)
                    else:
                        values[slot] = value

    # -- environment ----------------------------------------------------------------
    def _wake_processes(self) -> None:
        now = self.state.time
        for process in self.processes:
            wakeup = process.next_wakeup(now)
            if wakeup is None or wakeup > now + EPSILON:
                continue
            key = id(process)
            if self._time_of_last_wake.get(key) == now:
                continue
            self._time_of_last_wake[key] = now
            process.wake(self, now)

    # -- discrete phase ----------------------------------------------------------------
    def _process_discrete(self) -> None:
        """Fire enabled transitions at the current instant until quiescent."""
        for _ in range(self.max_cascade):
            fired_any = False
            for rt in self._runtimes:
                if self._fire_one(rt):
                    fired_any = True
            if not fired_any:
                break
        else:
            raise ZenoError(
                f"more than {self.max_cascade} cascaded transition rounds at "
                f"t={self.state.time:.6f}s; the model is (quasi-)Zeno")
        # Unconsumed events do not persist across time instants.
        for rt in self._runtimes:
            rt.pending.clear()

    def _fire_one(self, rt: _AutomatonRuntime) -> bool:
        """Fire at most one enabled edge of ``rt``; return True if fired."""
        location = rt.location
        edges = location.edges
        if not edges:
            return False
        pending = rt.pending
        if not pending and not location.has_asap:
            # Event-triggered edges need a pending event; with none queued
            # nothing here can fire (exactly what the reference scan finds).
            return False
        values = rt.values
        view = rt.view
        chosen: CompiledEdge | None = None
        chosen_event_index: int | None = None
        best_key: tuple[int, int, int] | None = None
        for ce in edges:
            event_index: int | None = None
            if ce.trigger_root is not None:
                event_index = next(
                    (i for i, ev in enumerate(pending) if ev.root == ce.trigger_root),
                    None)
                if event_index is None:
                    continue
            if ce.guard_program is not None and not ce.guard_program(values, view):
                continue
            if best_key is None or ce.key < best_key:
                best_key = ce.key
                chosen = ce
                chosen_event_index = event_index
        if chosen is None:
            return False
        trigger_root = None
        if chosen_event_index is not None:
            trigger_root = pending.pop(chosen_event_index).root
        self._take_edge(rt, chosen, trigger_root)
        return True

    def _take_edge(self, rt: _AutomatonRuntime, ce: CompiledEdge,
                   trigger_root: str | None) -> None:
        now = self.state.time
        if ce.assignments is not None:
            values = rt.values
            for slot, value in ce.assignments:
                values[slot] = value
        else:
            new_valuation = ce.edge.reset.apply(rt.view)
            for name, value in new_valuation.items():
                rt.set(name, value)
        rt.move_to(ce.target_index, now)
        record = TransitionRecord(
            time=now, automaton=rt.name, source=ce.source_name,
            target=ce.target_name, reason=ce.reason, trigger_root=trigger_root,
            emitted=ce.emits)
        for observer in self.observers:
            observer.on_transition(record)
        for process in self.processes:
            process.notify_transition(self, record)
        for root in ce.emits:
            self._broadcast(root, sender=rt.name)

    def _broadcast(self, root: str, sender: str) -> None:
        """Deliver event ``root`` from ``sender`` to every interested receiver."""
        receivers = self.compiled.receivers_of(root)
        sender_entity = self.compiled.entity_of.get(sender, sender)
        now = self.state.time
        runtimes = self._runtimes
        for receiver_index, receiver_name, lossy, receiver_entity in receivers:
            if receiver_name == sender:
                continue
            same_entity = sender_entity == receiver_entity
            if lossy and not same_entity:
                delivered = self.network.attempt_delivery(
                    sender_entity, receiver_entity, root, now)
            else:
                delivered = True
            record = EventRecord(
                time=now, root=root, sender=sender, receiver=receiver_name,
                delivered=delivered, lossy=lossy and not same_entity)
            for observer in self.observers:
                observer.on_event(record)
            if delivered:
                runtimes[receiver_index].pending.append(_PendingEvent(root, sender))

    # -- sampling ----------------------------------------------------------------------
    def _maybe_sample(self, force: bool = False) -> None:
        if not self.record_variables:
            return
        now = self.state.time
        if not force and now + EPSILON < self._next_sample_time:
            return
        for automaton_name, variable in self.record_variables:
            value = self.state.value_of(automaton_name, variable)
            for observer in self.observers:
                observer.on_sample(automaton_name, variable, now, value)
        self._next_sample_time = now + self.sample_interval

    # -- invariant checking (advisory) ----------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`TimeBlockError` if any automaton violates its invariant now."""
        for rt in self._runtimes:
            loc = rt.location
            if not loc.invariant.evaluate(rt.view):
                raise TimeBlockError(
                    f"automaton {rt.name!r} violates the invariant of location "
                    f"{loc.name!r} at t={self.state.time:.6f}s and no edge fired")


# ---------------------------------------------------------------------------
# Engine selection
# ---------------------------------------------------------------------------

#: Environment variable that selects the default simulation kernel.
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: Kernel names accepted by :func:`build_engine` and the campaign CLI.
ENGINE_KINDS = ("reference", "compiled", "batched")


def resolve_engine_kind(kind: str | None = None, *,
                        default: str = "reference") -> str:
    """Resolve the simulation kernel to use.

    Precedence: explicit ``kind`` argument, then the ``REPRO_ENGINE``
    environment variable, then ``default``.  Direct engine construction
    defaults to the reference engine (the executable specification); the
    campaign layer passes ``default="compiled"`` so campaign-scale
    workloads get the fast kernel unless the caller or the environment
    opts out.
    """
    import os

    resolved = kind if kind is not None else os.environ.get(ENGINE_ENV_VAR)
    if resolved is None or resolved == "":
        resolved = default
    if resolved not in ENGINE_KINDS:
        raise ValueError(f"unknown simulation engine {resolved!r}; "
                         f"expected one of {ENGINE_KINDS}")
    return resolved


def build_engine(system: HybridSystem | CompiledSystem, *,
                 kind: str | None = None, **kwargs):
    """Build a reference, compiled or batched engine for ``system``.

    ``kwargs`` are forwarded verbatim (the engines share the same
    constructor signature; the batched kernel runs in single-lane mode
    when built this way).  The compiled and batched kernels accept a
    pre-lowered :class:`CompiledSystem`; the reference engine unwraps it.
    """
    from repro.hybrid.simulate.engine import SimulationEngine

    resolved = resolve_engine_kind(kind)
    if resolved == "compiled":
        return CompiledEngine(system, **kwargs)
    if resolved == "batched":
        from repro.hybrid.simulate.batched import BatchedEngine

        return BatchedEngine(system, **kwargs)
    if isinstance(system, CompiledSystem):
        system = system.system
    return SimulationEngine(system, **kwargs)
