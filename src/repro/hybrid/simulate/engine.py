"""Discrete-event simulation engine for hybrid systems.

The engine executes a :class:`~repro.hybrid.system.HybridSystem` according
to the semantics described in DESIGN.md:

* **Continuous phase** -- between discrete instants, every member automaton
  flows according to its current location's flow map.  For affine flows the
  engine computes the exact time of the next relevant guard crossing and
  jumps there directly; non-affine flows (and function predicates,
  couplings, or sampling requests) cap the jump at :attr:`SimulationEngine.dt_max`.
* **Discrete phase** -- at an instant, enabled transitions fire and cascade:
  an edge may emit events, delivered instantaneously to receivers (through
  the lossy network for ``??`` labels), possibly enabling further edges.
  The cascade is bounded to detect Zeno behaviour.
* **Environment** -- :class:`~repro.hybrid.simulate.processes.EnvironmentProcess`
  objects wake at chosen times and inject events;
  :class:`~repro.hybrid.simulate.processes.Coupling` objects propagate
  physical values at every integration boundary.

Event semantics follow the paper: an event is an instantaneous broadcast;
a receiver consumes it only if it currently has an enabled edge labelled
``?root``/``??root``; otherwise the event is ignored.  Deliveries through
``??`` labels between different entities are subject to the network's loss
model (arbitrary loss is allowed by the fault model of Section II-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.errors import SimulationError, TimeBlockError, ZenoError
from repro.hybrid.automaton import HybridAutomaton
from repro.hybrid.edges import Edge
from repro.hybrid.state import AutomatonState, SystemState
from repro.hybrid.system import HybridSystem
from repro.hybrid.trace import EventRecord, Trace, TransitionRecord
from repro.hybrid.simulate.observers import TraceObserver, TraceRecorder
from repro.hybrid.simulate.processes import Coupling, EnvironmentProcess
from repro.util.seeding import spawn_rng
from repro.util.timebase import EPSILON

#: Smallest time advance the engine will make when it must force progress.
_MIN_ADVANCE = 1e-7


class Network:
    """Delivery decision interface used by the engine for lossy receptions.

    The default implementation delivers everything; the wireless substrate
    (:mod:`repro.wireless.network`) provides sink-topology channels with
    configurable loss processes.
    """

    def attempt_delivery(self, sender_entity: str, receiver_entity: str,
                         root: str, now: float) -> bool:
        """Return True when the event survives the channel."""
        return True

    def reset(self, seed: int | None = None) -> None:
        """Reset any internal stochastic state (start of a new trial)."""


PerfectNetwork = Network


@dataclass
class _PendingEvent:
    """An event waiting to be consumed by one receiver at the current instant."""

    root: str
    sender: str


class SimulationEngine:
    """Simulate a hybrid system over a finite horizon.

    Args:
        system: The hybrid system to execute.
        network: Delivery model for lossy (``??``) receptions between
            different entities.  Defaults to perfect delivery.
        processes: Environment processes (surgeon model, fault scripts...).
        couplings: Physical couplings applied at integration boundaries.
        seed: Master seed for all stochastic components owned by the engine.
        dt_max: Maximum continuous step when exact event times are not
            available (non-affine flows, function predicates, couplings).
        max_cascade: Maximum discrete transitions per automaton allowed at a
            single time instant before a :class:`ZenoError` is raised.
        record_variables: ``(automaton, variable)`` pairs to sample into the
            trace.
        sample_interval: Sampling period for ``record_variables``.
        observers: Additional :class:`TraceObserver` objects notified of
            every transition, event delivery and sample (streaming
            consumers that never need the full trace).
        record_trace: When False, no :class:`TraceRecorder` is attached and
            :meth:`run` returns ``None`` -- memory stays flat regardless of
            the horizon; only the explicit ``observers`` see the run.
    """

    #: Kernel name (the compiled counterpart reports ``"compiled"``).
    kind = "reference"

    def __init__(self, system: HybridSystem, *, network: Network | None = None,
                 processes: Sequence[EnvironmentProcess] = (),
                 couplings: Sequence[Coupling] = (),
                 seed: int | None = None,
                 dt_max: float = 0.1,
                 max_cascade: int = 200,
                 record_variables: Iterable[tuple[str, str]] = (),
                 sample_interval: float = 0.25,
                 observers: Sequence[TraceObserver] = (),
                 record_trace: bool = True):
        self.system = system
        self.network = network or Network()
        self.processes: List[EnvironmentProcess] = list(processes)
        self.couplings: List[Coupling] = list(couplings)
        self.seed = seed
        self.dt_max = float(dt_max)
        self.max_cascade = int(max_cascade)
        self.record_variables = list(record_variables)
        self.sample_interval = float(sample_interval)
        self.rng = spawn_rng(seed, "engine")

        self._recorder = TraceRecorder() if record_trace else None
        self.observers: List[TraceObserver] = (
            ([self._recorder] if self._recorder is not None else [])
            + list(observers))
        self.state = SystemState()
        if self._recorder is not None:
            self._recorder.trace = Trace(system.risky_locations())
        self._order: List[str] = list(system.automata)
        self._pending: Dict[str, List[_PendingEvent]] = {name: [] for name in self._order}
        self._receivers: Dict[str, list[tuple[str, bool]]] = {}
        self._next_sample_time = 0.0
        self._time_of_last_wake: Dict[int, float] = {}

        for name, automaton in system.automata.items():
            automaton.validate()
            self._receivers_cache_for(automaton)

    # -- public helpers ---------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self.state.time

    @property
    def trace(self) -> Trace | None:
        """The recorded trace (``None`` when ``record_trace=False``)."""
        return self._recorder.trace if self._recorder is not None else None

    def set_variable(self, automaton_name: str, variable: str, value: float) -> None:
        """Overwrite one variable of one member automaton (used by couplings)."""
        st = self.state.automata[automaton_name]
        self.state.automata[automaton_name] = st.with_valuation(
            st.valuation.updated({variable: float(value)}))

    def inject_event(self, root: str, *, sender: str = "environment") -> None:
        """Broadcast an event from the environment at the current instant.

        Deliveries follow the same rules as automaton-emitted events: a
        reliable ``?root`` reception always arrives, a lossy ``??root``
        reception is passed through the network's loss model.
        """
        self._broadcast(root, sender)

    def location_of(self, automaton_name: str) -> str:
        """Current location of a member automaton."""
        return self.state.location_of(automaton_name)

    # -- main loop ----------------------------------------------------------------
    def run(self, horizon: float) -> Trace | None:
        """Run the simulation from time zero up to ``horizon`` seconds.

        Returns the recorded :class:`Trace`, or ``None`` when the engine
        was built with ``record_trace=False`` (streaming observers only).
        """
        if horizon <= 0:
            raise SimulationError("simulation horizon must be positive")
        self.network.reset(self.seed)
        self._initialize()
        while self.state.time < horizon - EPSILON:
            self._apply_couplings()
            next_time = self._next_time(horizon)
            dt = next_time - self.state.time
            if dt > 0:
                self._advance_continuous(dt)
            self.state.time = next_time
            self._apply_couplings()
            self._wake_processes()
            self._process_discrete()
            self._maybe_sample()
        for observer in self.observers:
            observer.end_run(horizon)
        return self.trace

    # -- initialization -----------------------------------------------------------
    def _initialize(self) -> None:
        self.state = SystemState(time=0.0)
        self._pending = {name: [] for name in self._order}
        self._next_sample_time = 0.0
        # A fresh run must re-enable every t=0 process wakeup: without this
        # reset a second run() on the same engine would skip them because
        # the previous run already recorded a wake at the same timestamps.
        self._time_of_last_wake = {}
        risky = self.system.risky_locations()
        for observer in self.observers:
            observer.begin_run(risky)
        for name, automaton in self.system.automata.items():
            if automaton.initial_location is None:
                raise SimulationError(f"automaton {name!r} has no initial location")
            self.state.automata[name] = AutomatonState(
                location=automaton.initial_location,
                valuation=automaton.initial_valuation,
                entered_at=0.0)
            for observer in self.observers:
                observer.register_automaton(name, automaton.initial_location,
                                            automaton.risky_locations)
        for process in self.processes:
            process.initialize(self)
        self._apply_couplings()
        self._wake_processes()
        self._process_discrete()
        self._maybe_sample(force=True)

    def _receivers_cache_for(self, automaton: HybridAutomaton) -> None:
        for root in automaton.received_roots():
            self._receivers[root] = self.system.receivers_of(root)

    # -- continuous phase -----------------------------------------------------------
    def _apply_couplings(self) -> None:
        for coupling in self.couplings:
            coupling.apply(self)

    def _current_rates(self, name: str) -> Mapping[str, float]:
        automaton = self.system.automata[name]
        st = self.state.automata[name]
        return automaton.location(st.location).flow.rates(st.valuation)

    def _next_time(self, horizon: float) -> float:
        """Earliest relevant future instant (guard crossing, wakeup, sample cap)."""
        now = self.state.time
        candidates: List[float] = [horizon]
        needs_sampling = bool(self.couplings) or bool(self.record_variables)
        for name, automaton in self.system.automata.items():
            st = self.state.automata[name]
            location = automaton.location(st.location)
            flow = location.flow
            if not flow.is_affine:
                needs_sampling = True
                continue
            rates = flow.rates(st.valuation)
            for edge in automaton.edges_from(st.location):
                if edge.is_event_triggered:
                    continue
                delay = edge.guard.time_until_true(st.valuation, rates)
                if delay is None:
                    needs_sampling = True
                elif math.isfinite(delay) and delay > EPSILON:
                    candidates.append(now + delay)
            inv_delay = location.invariant.time_until_false(st.valuation, rates)
            if inv_delay is None:
                needs_sampling = True
            elif math.isfinite(inv_delay) and inv_delay > EPSILON:
                candidates.append(now + inv_delay)
        for process in self.processes:
            wakeup = process.next_wakeup(now)
            if wakeup is not None and math.isfinite(wakeup):
                candidates.append(max(wakeup, now))
        if needs_sampling:
            candidates.append(now + self.dt_max)
        next_time = min(candidates)
        next_time = min(next_time, horizon)
        if next_time <= now + EPSILON:
            next_time = min(now + _MIN_ADVANCE, horizon)
        return next_time

    def _advance_continuous(self, dt: float) -> None:
        for name, automaton in self.system.automata.items():
            st = self.state.automata[name]
            flow = automaton.location(st.location).flow
            new_valuation = flow.advance(st.valuation, dt)
            self.state.automata[name] = st.with_valuation(new_valuation)

    # -- environment ----------------------------------------------------------------
    def _wake_processes(self) -> None:
        now = self.state.time
        for process in self.processes:
            wakeup = process.next_wakeup(now)
            if wakeup is None or wakeup > now + EPSILON:
                continue
            key = id(process)
            if self._time_of_last_wake.get(key) == now:
                continue
            self._time_of_last_wake[key] = now
            process.wake(self, now)

    # -- discrete phase ----------------------------------------------------------------
    def _process_discrete(self) -> None:
        """Fire enabled transitions at the current instant until quiescent."""
        for _ in range(self.max_cascade):
            fired_any = False
            for name in self._order:
                if self._fire_one(name):
                    fired_any = True
            if not fired_any:
                break
        else:
            raise ZenoError(
                f"more than {self.max_cascade} cascaded transition rounds at "
                f"t={self.state.time:.6f}s; the model is (quasi-)Zeno")
        # Unconsumed events do not persist across time instants.
        for pending in self._pending.values():
            pending.clear()

    def _fire_one(self, name: str) -> bool:
        """Fire at most one enabled edge of automaton ``name``; return True if fired."""
        automaton = self.system.automata[name]
        st = self.state.automata[name]
        edges = automaton.edges_from(st.location)
        if not edges:
            return False
        pending = self._pending[name]
        chosen: Edge | None = None
        chosen_event_index: int | None = None
        best_key: tuple[int, int, int] | None = None
        for order_index, edge in enumerate(edges):
            event_index: int | None = None
            if edge.is_event_triggered:
                assert edge.trigger is not None
                event_index = next(
                    (i for i, ev in enumerate(pending) if ev.root == edge.trigger.root),
                    None)
                if event_index is None:
                    continue
            if not edge.guard.evaluate(st.valuation):
                continue
            key = (-edge.priority, 0 if edge.is_event_triggered else 1, order_index)
            if best_key is None or key < best_key:
                best_key = key
                chosen = edge
                chosen_event_index = event_index
        if chosen is None:
            return False
        trigger_root = None
        if chosen_event_index is not None:
            trigger_root = pending.pop(chosen_event_index).root
        self._take_edge(name, chosen, trigger_root)
        return True

    def _take_edge(self, name: str, edge: Edge, trigger_root: str | None) -> None:
        st = self.state.automata[name]
        new_valuation = edge.reset.apply(st.valuation)
        self.state.automata[name] = st.moved_to(edge.target, new_valuation, self.state.time)
        record = TransitionRecord(
            time=self.state.time, automaton=name, source=edge.source,
            target=edge.target, reason=edge.reason, trigger_root=trigger_root,
            emitted=tuple(edge.emits))
        for observer in self.observers:
            observer.on_transition(record)
        for process in self.processes:
            process.notify_transition(self, record)
        for root in edge.emits:
            self._broadcast(root, sender=name)

    def _broadcast(self, root: str, sender: str) -> None:
        """Deliver event ``root`` from ``sender`` to every interested receiver."""
        receivers = self._receivers.get(root)
        if receivers is None:
            receivers = self.system.receivers_of(root)
            self._receivers[root] = receivers
        sender_entity = (self.system.entity_of(sender)
                         if sender in self.system.automata else sender)
        for receiver_name, lossy in receivers:
            if receiver_name == sender:
                continue
            receiver_entity = self.system.entity_of(receiver_name)
            same_entity = sender_entity == receiver_entity
            if lossy and not same_entity:
                delivered = self.network.attempt_delivery(
                    sender_entity, receiver_entity, root, self.state.time)
            else:
                delivered = True
            record = EventRecord(
                time=self.state.time, root=root, sender=sender,
                receiver=receiver_name, delivered=delivered,
                lossy=lossy and not same_entity)
            for observer in self.observers:
                observer.on_event(record)
            if delivered:
                self._pending[receiver_name].append(_PendingEvent(root, sender))

    # -- sampling ----------------------------------------------------------------------
    def _maybe_sample(self, force: bool = False) -> None:
        if not self.record_variables:
            return
        if not force and self.state.time + EPSILON < self._next_sample_time:
            return
        for automaton_name, variable in self.record_variables:
            value = self.state.value_of(automaton_name, variable)
            for observer in self.observers:
                observer.on_sample(automaton_name, variable, self.state.time, value)
        self._next_sample_time = self.state.time + self.sample_interval

    # -- invariant checking (advisory) ----------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`TimeBlockError` if any automaton violates its invariant now.

        The engine does not call this automatically (ASAP edges normally
        leave a location before its invariant expires); tests and the
        analysis module call it to detect time-blocking models.
        """
        for name, automaton in self.system.automata.items():
            st = self.state.automata[name]
            location = automaton.location(st.location)
            if not location.invariant.evaluate(st.valuation):
                raise TimeBlockError(
                    f"automaton {name!r} violates the invariant of location "
                    f"{st.location!r} at t={self.state.time:.6f}s and no edge fired")


def simulate(system: HybridSystem, horizon: float, **kwargs) -> Trace:
    """Convenience wrapper: build a :class:`SimulationEngine` and run it."""
    engine = SimulationEngine(system, **kwargs)
    return engine.run(horizon)
