"""Streaming observation of simulation runs (the observer pipeline).

Historically the engine recorded everything into an in-memory
:class:`~repro.hybrid.trace.Trace` and every consumer (Table I statistics,
the PTE monitor, lease auditing) re-scanned that trace after the run.  That
couples memory usage to the simulation horizon and forces a second pass
over data the engine already produced in order.

This module breaks the coupling: engines push every observable fact --
automaton registration, discrete transitions, event deliveries, variable
samples, end-of-run -- through a list of :class:`TraceObserver` objects.

* :class:`TraceRecorder` is the observer that reconstructs the classic
  :class:`~repro.hybrid.trace.Trace` (attached by default, so the engine
  API is unchanged).
* Streaming consumers (e.g. the case study's
  :class:`~repro.casestudy.observers.TrialStatsObserver`) compute their
  statistics online and never retain the run, so campaign memory stays
  flat no matter how long the horizon is.

:class:`DwellTracker` is the streaming twin of
:meth:`~repro.hybrid.trace.Trace.dwell_intervals`: it folds a chronological
stream of location visits into the same maximal-dwell intervals, including
the merge across zero-duration excursions, so interval-based analyses
(PTE Rule 1/2) produce bit-identical numbers either way.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping

from repro.hybrid.trace import EventRecord, Trace, TransitionRecord
from repro.util.timebase import EPSILON


class TraceObserver:
    """Receiver of the engine's observation stream.

    All hooks are optional no-ops; subclasses override what they need.
    Hooks fire in simulation order: one :meth:`begin_run`, then one
    :meth:`register_automaton` per member automaton, then any number of
    :meth:`on_transition` / :meth:`on_event` / :meth:`on_sample` calls with
    non-decreasing timestamps, then one :meth:`end_run`.
    """

    def begin_run(self, risky_locations: Mapping[str, set[str]]) -> None:
        """A new run starts; ``risky_locations`` maps automaton -> risky set."""

    def register_automaton(self, name: str, initial_location: str,
                           risky_locations: Iterable[str] = ()) -> None:
        """One member automaton begins the run in ``initial_location``."""

    def on_transition(self, record: TransitionRecord) -> None:
        """A discrete transition fired."""

    def on_event(self, record: EventRecord) -> None:
        """One event delivery was attempted (delivered or lost)."""

    def on_sample(self, automaton: str, variable: str, time: float,
                  value: float) -> None:
        """One continuous variable was sampled."""

    def end_run(self, end_time: float) -> None:
        """The run reached its horizon."""


class TraceRecorder(TraceObserver):
    """The classic full-trace observer.

    Reconstructs exactly the :class:`~repro.hybrid.trace.Trace` the engine
    used to build inline; a fresh trace is started on every
    :meth:`begin_run` so one recorder can serve consecutive runs of the
    same engine.
    """

    def __init__(self) -> None:
        self.trace = Trace()

    def begin_run(self, risky_locations: Mapping[str, set[str]]) -> None:
        self.trace = Trace(risky_locations)

    def register_automaton(self, name: str, initial_location: str,
                           risky_locations: Iterable[str] = ()) -> None:
        self.trace.register_automaton(name, initial_location, risky_locations)

    def on_transition(self, record: TransitionRecord) -> None:
        self.trace.record_transition(record)

    def on_event(self, record: EventRecord) -> None:
        self.trace.record_event(record)

    def on_sample(self, automaton: str, variable: str, time: float,
                  value: float) -> None:
        self.trace.record_sample(automaton, variable, time, value)

    def end_run(self, end_time: float) -> None:
        self.trace.close(end_time)


class DwellTracker:
    """Streaming maximal-dwell intervals over one watched location set.

    Feed it the chronological location visits of one automaton (via
    :meth:`enter` at each visit start and :meth:`finish` at the horizon)
    and it produces the same ``(start, end)`` interval list as
    :meth:`Trace.dwell_intervals <repro.hybrid.trace.Trace.dwell_intervals>`
    over the full trace: consecutive visits to watched locations merge into
    one interval, including across zero-duration stays outside the set.
    """

    def __init__(self, watched: Iterable[str]):
        self.watched = set(watched)
        self.intervals: List[tuple[float, float]] = []
        self._location: str | None = None
        self._entered_at: float = 0.0

    def enter(self, location: str, time: float) -> None:
        """The automaton enters ``location`` at ``time`` (closing the stay)."""
        self._close_visit(time)
        self._location = location
        self._entered_at = time

    def finish(self, end_time: float) -> None:
        """Close the final open visit at the end of the run."""
        self._close_visit(end_time)
        self._location = None

    def ongoing(self, now: float) -> float:
        """Length of the current (still open) merged dwell at time ``now``.

        Returns 0.0 when the automaton is not presently in a watched
        location.  Applies the same zero-duration-excursion merge rule as
        :meth:`_close_visit`, so ``max(closed intervals, ongoing(now))`` is
        exactly the longest continuous dwell PTE Rule 1 would measure if
        the run ended at ``now`` — the streaming risk score of the
        rare-event splitting estimator.
        """
        if self._location is None or self._location not in self.watched:
            return 0.0
        start = self._entered_at
        if self.intervals and abs(self.intervals[-1][1] - start) <= EPSILON:
            start = self.intervals[-1][0]
        return now - start

    def _close_visit(self, end: float) -> None:
        if self._location is None or self._location not in self.watched:
            return
        start = self._entered_at
        # Same merge rule as Trace.dwell_intervals: a new watched visit that
        # starts where the previous merged interval ended (within EPSILON)
        # extends it -- this is what makes zero-dwell excursions invisible
        # to the "continuous dwelling time" of PTE Safety Rule 1.
        if self.intervals and abs(self.intervals[-1][1] - start) <= EPSILON:
            self.intervals[-1] = (self.intervals[-1][0], end)
        else:
            self.intervals.append((start, end))
