"""Environment processes and physical couplings for the simulator.

The paper distinguishes cyber coordination (events over wireless, possibly
lost) from physical-world influences that the cyber side does not fully
control (the surgeon's will, the patient's blood oxygen level).  The
simulator mirrors this split:

* :class:`EnvironmentProcess` -- an active component outside the hybrid
  automata that can wake up at chosen times and inject events (e.g. the
  surgeon model drawing exponential ``Ton``/``Toff`` timers), and that can
  observe discrete transitions of the automata.
* :class:`Coupling` -- a continuous physical connection that copies or
  derives values between automata every integration segment (e.g. the
  ventilation state of the ventilator automaton feeding the patient's SpO2
  dynamics, and the oximeter reading feeding the supervisor's
  ``ApprovalCondition`` variable).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.hybrid.trace import TransitionRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hybrid.simulate.engine import SimulationEngine


class EnvironmentProcess:
    """Base class for active environment models.

    Subclasses typically keep internal timers and use
    :meth:`SimulationEngine.inject_event` from :meth:`wake` to influence the
    hybrid system.  All randomness must come from the engine's RNG streams
    so runs stay reproducible.
    """

    #: Name used for trace records of injected events.
    name: str = "environment"

    def initialize(self, engine: "SimulationEngine") -> None:
        """Called once before the simulation starts."""

    def next_wakeup(self, now: float) -> float | None:
        """Absolute time of the next wakeup, or ``None`` for no wakeup."""
        return None

    def wake(self, engine: "SimulationEngine", now: float) -> None:
        """Called when simulation time reaches :meth:`next_wakeup`."""

    def notify_transition(self, engine: "SimulationEngine",
                          record: TransitionRecord) -> None:
        """Called after any member automaton takes a discrete transition."""


class CallbackProcess(EnvironmentProcess):
    """Convenience process that wakes at fixed times and runs a callback.

    Useful in tests and in scripted fault scenarios: schedule a list of
    ``(time, callback)`` pairs and each callback receives the engine when
    its time arrives.
    """

    def __init__(self, schedule: list[tuple[float, Callable[["SimulationEngine"], None]]],
                 name: str = "callback-process"):
        self.name = name
        self._schedule = sorted(schedule, key=lambda item: item[0])
        self._index = 0

    def next_wakeup(self, now: float) -> float | None:
        if self._index >= len(self._schedule):
            return None
        return self._schedule[self._index][0]

    def wake(self, engine: "SimulationEngine", now: float) -> None:
        while (self._index < len(self._schedule)
               and self._schedule[self._index][0] <= now + 1e-9):
            _, callback = self._schedule[self._index]
            self._index += 1
            callback(engine)


class Coupling:
    """Base class for continuous physical couplings between automata.

    :meth:`apply` is called by the engine at every integration boundary; it
    may read any automaton's state through the engine and write variables
    with :meth:`SimulationEngine.set_variable`.
    """

    def apply(self, engine: "SimulationEngine") -> None:
        """Propagate physical values between automata."""
        raise NotImplementedError


class FunctionCoupling(Coupling):
    """Wrap a plain function as a :class:`Coupling`."""

    def __init__(self, func: Callable[["SimulationEngine"], None], description: str = ""):
        self._func = func
        self.description = description or getattr(func, "__name__", "coupling")

    def apply(self, engine: "SimulationEngine") -> None:
        self._func(engine)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"FunctionCoupling({self.description})"


class LocationIndicatorCoupling(Coupling):
    """Set a 0/1 indicator variable based on another automaton's location.

    This is the canonical physical coupling of the case study: the patient
    model's ``ventilated`` input is 1 exactly when the ventilator automaton
    currently dwells in one of its ventilating locations.
    """

    def __init__(self, *, source_automaton: str, source_locations: set[str],
                 target_automaton: str, target_variable: str,
                 true_value: float = 1.0, false_value: float = 0.0):
        self.source_automaton = source_automaton
        self.source_locations = set(source_locations)
        self.target_automaton = target_automaton
        self.target_variable = target_variable
        self.true_value = true_value
        self.false_value = false_value

    def apply(self, engine: "SimulationEngine") -> None:
        location = engine.state.location_of(self.source_automaton)
        value = self.true_value if location in self.source_locations else self.false_value
        engine.set_variable(self.target_automaton, self.target_variable, value)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (f"LocationIndicatorCoupling({self.source_automaton}@"
                f"{sorted(self.source_locations)} -> "
                f"{self.target_automaton}.{self.target_variable})")


class VariableCopyCoupling(Coupling):
    """Copy one continuous variable from one automaton to another.

    Models a wired sensor: e.g. the oximeter is wired to the supervisor, so
    the patient's ``spo2`` value is copied into the supervisor automaton's
    ``spo2`` variable without going through the lossy wireless network.
    """

    def __init__(self, *, source_automaton: str, source_variable: str,
                 target_automaton: str, target_variable: str,
                 transform: Callable[[float], float] | None = None):
        self.source_automaton = source_automaton
        self.source_variable = source_variable
        self.target_automaton = target_automaton
        self.target_variable = target_variable
        self.transform = transform

    def apply(self, engine: "SimulationEngine") -> None:
        value = engine.state.value_of(self.source_automaton, self.source_variable)
        if self.transform is not None:
            value = self.transform(value)
        engine.set_variable(self.target_automaton, self.target_variable, value)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (f"VariableCopyCoupling({self.source_automaton}.{self.source_variable}"
                f" -> {self.target_automaton}.{self.target_variable})")
