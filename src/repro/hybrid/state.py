"""Runtime state of automata and hybrid systems during simulation.

The *state* of a hybrid automaton at time ``t`` is the pair
``phi(t) = (l(t), x(t))`` of location counter and data state (paper
Section II-A, item 2).  :class:`AutomatonState` additionally records when
the current location was entered, which makes dwelling-time queries cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping

from repro.hybrid.variables import Valuation


@dataclass(frozen=True)
class AutomatonState:
    """The state of one member automaton.

    Attributes:
        location: Current location name (the location counter ``l(t)``).
        valuation: Current data state ``x(t)``.
        entered_at: Simulation time at which ``location`` was entered.
    """

    location: str
    valuation: Valuation
    entered_at: float = 0.0

    def dwelling_time(self, now: float) -> float:
        """Continuous time spent in the current location up to ``now``."""
        return max(0.0, now - self.entered_at)

    def with_valuation(self, valuation: Valuation) -> "AutomatonState":
        """Return a copy with the data state replaced."""
        return replace(self, valuation=valuation)

    def moved_to(self, location: str, valuation: Valuation, now: float) -> "AutomatonState":
        """Return the state after a discrete transition at time ``now``."""
        return AutomatonState(location=location, valuation=valuation, entered_at=now)


@dataclass
class SystemState:
    """The joint state of every member automaton of a hybrid system.

    Attributes:
        time: Current simulation time.
        automata: Mapping from automaton name to its :class:`AutomatonState`.
    """

    time: float = 0.0
    automata: Dict[str, AutomatonState] = field(default_factory=dict)

    def state_of(self, automaton_name: str) -> AutomatonState:
        """Return the state of the named member automaton."""
        return self.automata[automaton_name]

    def location_of(self, automaton_name: str) -> str:
        """Return the current location of the named member automaton."""
        return self.automata[automaton_name].location

    def valuation_of(self, automaton_name: str) -> Valuation:
        """Return the current data state of the named member automaton."""
        return self.automata[automaton_name].valuation

    def value_of(self, automaton_name: str, variable: str, default: float = 0.0) -> float:
        """Return one variable's current value for the named automaton."""
        return self.automata[automaton_name].valuation.get(variable, default)

    def snapshot(self) -> Mapping[str, tuple[str, Mapping[str, float]]]:
        """Return a plain-data snapshot (useful for logging and debugging)."""
        return {name: (st.location, st.valuation.as_dict())
                for name, st in self.automata.items()}
