"""Hybrid systems: collections of concurrently executing hybrid automata.

A hybrid system ``H`` is a collection of member hybrid automata that
coordinate through event communication (paper Section II-B).  As in the
paper we require that member automata share no data state variable names,
no location names and no synchronization labels other than the intended
sender/receiver pairs -- names are local to their automata.

The hybrid system also knows, for each member automaton, which *entity* of
the distributed wireless CPS it belongs to.  Entities matter for the fault
model: events exchanged between two different entities travel over the
wireless network (and may be lost when received through a ``??`` label),
whereas events between automata of the same entity are local and reliable.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.errors import ModelError
from repro.hybrid.automaton import HybridAutomaton
from repro.hybrid.labels import Prefix


class HybridSystem:
    """A named collection of member hybrid automata.

    Args:
        name: System name (for reports).
    """

    def __init__(self, name: str = "hybrid-system"):
        self.name = name
        self.automata: Dict[str, HybridAutomaton] = {}
        self._entity_of: Dict[str, str] = {}

    # -- construction --------------------------------------------------------
    def add(self, automaton: HybridAutomaton, *, entity: str | None = None) -> HybridAutomaton:
        """Add a member automaton.

        Args:
            automaton: The automaton to add (validated on the spot).
            entity: Name of the distributed entity hosting this automaton;
                defaults to the automaton's own name.

        Raises:
            ModelError: If the automaton is ill-formed or its names collide
                with an existing member (shared variable or location names).
        """
        automaton.validate()
        if automaton.name in self.automata:
            raise ModelError(f"hybrid system already contains automaton {automaton.name!r}")
        for other in self.automata.values():
            shared_vars = set(automaton.variables) & set(other.variables)
            if shared_vars:
                raise ModelError(
                    f"automata {automaton.name!r} and {other.name!r} share data state "
                    f"variables {sorted(shared_vars)}; the paper's system model forbids this")
            shared_locations = automaton.location_names & other.location_names
            if shared_locations:
                raise ModelError(
                    f"automata {automaton.name!r} and {other.name!r} share location names "
                    f"{sorted(shared_locations)}; the paper's system model forbids this")
        self.automata[automaton.name] = automaton
        self._entity_of[automaton.name] = entity or automaton.name
        return automaton

    # -- queries ---------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self.automata

    def __iter__(self):
        return iter(self.automata.values())

    def __len__(self) -> int:
        return len(self.automata)

    def automaton(self, name: str) -> HybridAutomaton:
        """Return the member automaton named ``name``."""
        try:
            return self.automata[name]
        except KeyError as exc:
            raise ModelError(f"hybrid system has no member automaton named {name!r}") from exc

    def entity_of(self, automaton_name: str) -> str:
        """Return the entity hosting the named automaton."""
        return self._entity_of[automaton_name]

    def entities(self) -> set[str]:
        """All entity names present in the system."""
        return set(self._entity_of.values())

    def receivers_of(self, root: str) -> list[tuple[str, bool]]:
        """Automata that can receive event ``root``.

        Returns:
            A list of ``(automaton_name, lossy)`` pairs where ``lossy`` is
            True when the automaton receives the event through a ``??``
            label (i.e. the reception may be lost).
        """
        result: list[tuple[str, bool]] = []
        for automaton in self.automata.values():
            lossy = None
            for label in automaton.sync_labels():
                if label.is_receive and label.root == root:
                    is_lossy = label.prefix is Prefix.RECEIVE_LOSSY
                    lossy = is_lossy if lossy is None else (lossy or is_lossy)
            if lossy is not None:
                result.append((automaton.name, lossy))
        return result

    def emitters_of(self, root: str) -> list[str]:
        """Automata that can broadcast event ``root``."""
        return [a.name for a in self.automata.values() if root in a.emitted_roots()]

    def external_roots(self) -> set[str]:
        """Event roots communicated across two or more member automata."""
        roots: set[str] = set()
        for automaton in self.automata.values():
            for root in automaton.received_roots():
                senders = [s for s in self.emitters_of(root) if s != automaton.name]
                if senders:
                    roots.add(root)
        return roots

    def risky_locations(self) -> Dict[str, set[str]]:
        """Mapping automaton name -> risky location names (for traces)."""
        return {name: automaton.risky_locations
                for name, automaton in self.automata.items()}

    def validate(self) -> None:
        """Validate every member automaton and cross-automaton wiring.

        Beyond per-automaton validation this checks that every externally
        received event root has at least one emitter somewhere in the system
        (a dangling ``?root`` usually indicates a typo in an event name);
        roots with no emitter are allowed only when they are injected by an
        environment process, so this check is advisory and collected into
        the returned report rather than raised.
        """
        for automaton in self.automata.values():
            automaton.validate()

    def dangling_receive_roots(self) -> set[str]:
        """Received roots that no member automaton emits.

        These must be supplied by environment processes (e.g. the surgeon
        model injecting laser request commands); listing them helps catch
        misspelled event names early.
        """
        dangling: set[str] = set()
        for automaton in self.automata.values():
            for root in automaton.received_roots():
                if not any(s != automaton.name for s in self.emitters_of(root)):
                    dangling.add(root)
        return dangling

    def __repr__(self) -> str:
        return f"HybridSystem({self.name!r}, members={sorted(self.automata)})"
