"""Execution traces of hybrid-system simulations.

A :class:`Trace` is the recorded *execution trace* (trajectory) of a hybrid
system: for every member automaton the sequence of locations visited with
their entry times, every discrete transition taken, every event emission
with its delivery outcome per receiver, and (optionally) sampled values of
continuous variables.

The PTE safety monitor (:mod:`repro.core.monitor`), the Table I statistics
(:mod:`repro.casestudy.emulation`) and the figure benchmarks all operate on
traces, never on live simulator state, so analysis is reproducible and can
be done offline.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping

from repro.util.timebase import EPSILON


@dataclass(frozen=True)
class TransitionRecord:
    """One discrete transition taken by a member automaton."""

    time: float
    automaton: str
    source: str
    target: str
    reason: str = ""
    trigger_root: str | None = None
    emitted: tuple[str, ...] = ()


@dataclass(frozen=True)
class EventRecord:
    """One attempted delivery of a broadcast event to one receiver."""

    time: float
    root: str
    sender: str
    receiver: str
    delivered: bool
    lossy: bool


@dataclass(frozen=True)
class Sample:
    """A sampled value of one continuous variable."""

    time: float
    value: float


@dataclass
class LocationVisit:
    """A (possibly still open) stay of an automaton in one location."""

    location: str
    start: float
    end: float | None = None

    @property
    def duration(self) -> float:
        """Length of the visit; ``inf`` when the visit is still open."""
        if self.end is None:
            return float("inf")
        return self.end - self.start


class Trace:
    """Recorded execution trace of a hybrid-system simulation.

    Args:
        risky_locations: Mapping automaton name -> set of risky location
            names, captured at simulation start so that risky-interval
            queries do not need the original automata objects.
    """

    def __init__(self, risky_locations: Mapping[str, set[str]] | None = None):
        self._risky: Dict[str, set[str]] = {k: set(v)
                                            for k, v in (risky_locations or {}).items()}
        self.transitions: List[TransitionRecord] = []
        self.events: List[EventRecord] = []
        self._visits: Dict[str, List[LocationVisit]] = {}
        self._samples: Dict[tuple[str, str], List[Sample]] = {}
        self.end_time: float = 0.0

    # -- recording (used by the simulation engine) ---------------------------
    def register_automaton(self, name: str, initial_location: str,
                           risky_locations: Iterable[str] = ()) -> None:
        """Begin recording for one member automaton."""
        self._risky.setdefault(name, set(risky_locations))
        self._visits[name] = [LocationVisit(initial_location, 0.0)]

    def record_transition(self, record: TransitionRecord) -> None:
        """Record a discrete transition and update the location timeline."""
        self.transitions.append(record)
        visits = self._visits.setdefault(record.automaton, [])
        if visits and visits[-1].end is None:
            visits[-1].end = record.time
        visits.append(LocationVisit(record.target, record.time))

    def record_event(self, record: EventRecord) -> None:
        """Record one event delivery attempt."""
        self.events.append(record)

    def record_sample(self, automaton: str, variable: str, time: float, value: float) -> None:
        """Record one sampled value of a continuous variable."""
        self._samples.setdefault((automaton, variable), []).append(Sample(time, value))

    def close(self, end_time: float) -> None:
        """Close all open location visits at the end of the simulation."""
        self.end_time = end_time
        for visits in self._visits.values():
            if visits and visits[-1].end is None:
                visits[-1].end = end_time

    # -- queries --------------------------------------------------------------
    @property
    def automata(self) -> list[str]:
        """Names of the automata recorded in this trace."""
        return sorted(self._visits)

    def visits(self, automaton: str) -> list[LocationVisit]:
        """The chronological list of location visits of ``automaton``."""
        return list(self._visits.get(automaton, []))

    def location_at(self, automaton: str, time: float) -> str | None:
        """Return the location occupied by ``automaton`` at ``time``."""
        visits = self._visits.get(automaton, [])
        if not visits:
            return None
        starts = [v.start for v in visits]
        index = bisect.bisect_right(starts, time) - 1
        if index < 0:
            return None
        return visits[index].location

    def risky_set(self, automaton: str) -> set[str]:
        """The risky location names recorded for ``automaton``."""
        return set(self._risky.get(automaton, set()))

    def dwell_intervals(self, automaton: str,
                        locations: Iterable[str]) -> list[tuple[float, float]]:
        """Maximal intervals during which ``automaton`` stays within ``locations``.

        Consecutive visits to (possibly different) locations of the given
        set are merged into a single continuous-dwelling interval, which is
        exactly the notion of "continuous dwelling time" used by PTE Safety
        Rule 1.
        """
        wanted = set(locations)
        merged: list[tuple[float, float]] = []
        for visit in self._visits.get(automaton, []):
            end = visit.end if visit.end is not None else self.end_time
            if visit.location not in wanted:
                continue
            if merged and abs(merged[-1][1] - visit.start) <= EPSILON:
                merged[-1] = (merged[-1][0], end)
            else:
                merged.append((visit.start, end))
        return merged

    def risky_intervals(self, automaton: str) -> list[tuple[float, float]]:
        """Maximal intervals during which ``automaton`` dwells in risky locations."""
        return self.dwell_intervals(automaton, self.risky_set(automaton))

    def transitions_of(self, automaton: str, *, reason: str | None = None,
                       target: str | None = None,
                       source: str | None = None) -> list[TransitionRecord]:
        """Filter transition records by automaton and optional attributes."""
        result = []
        for record in self.transitions:
            if record.automaton != automaton:
                continue
            if reason is not None and record.reason != reason:
                continue
            if target is not None and record.target != target:
                continue
            if source is not None and record.source != source:
                continue
            result.append(record)
        return result

    def count_entries(self, automaton: str, location: str) -> int:
        """Number of times ``automaton`` entered ``location``."""
        return sum(1 for r in self.transitions
                   if r.automaton == automaton and r.target == location)

    def series(self, automaton: str, variable: str) -> tuple[list[float], list[float]]:
        """Sampled time series ``(times, values)`` of one variable."""
        samples = self._samples.get((automaton, variable), [])
        return [s.time for s in samples], [s.value for s in samples]

    def delivered_events(self, root: str | None = None) -> list[EventRecord]:
        """Event records that were actually delivered (optionally filtered by root)."""
        return [e for e in self.events
                if e.delivered and (root is None or e.root == root)]

    def lost_events(self, root: str | None = None) -> list[EventRecord]:
        """Event records that were lost in transit (optionally filtered by root)."""
        return [e for e in self.events
                if not e.delivered and (root is None or e.root == root)]

    def loss_ratio(self) -> float:
        """Fraction of lossy event deliveries that were lost."""
        lossy = [e for e in self.events if e.lossy]
        if not lossy:
            return 0.0
        return sum(1 for e in lossy if not e.delivered) / len(lossy)

    def __repr__(self) -> str:
        return (f"Trace(automata={self.automata}, transitions={len(self.transitions)}, "
                f"events={len(self.events)}, horizon={self.end_time:g}s)")
