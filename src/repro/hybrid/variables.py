"""Data state variables and valuations.

A hybrid automaton carries a vector of continuous *data state variables*
``x(t)``; a concrete assignment of values to these variables is a *data
state* (paper Section II-A, item 1).  We represent a data state as a
:class:`Valuation`, a thin mapping from variable name to ``float`` with a
few convenience operations used by the simulator.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping


class Valuation(Mapping[str, float]):
    """An immutable-by-convention mapping of variable names to values.

    The simulator treats valuations as value objects: every update produces
    a new :class:`Valuation` (see :meth:`updated` and :meth:`advanced`), so
    recorded traces never alias live state.
    """

    __slots__ = ("_values",)

    def __init__(self, values: Mapping[str, float] | None = None):
        self._values: Dict[str, float] = dict(values or {})

    # -- Mapping protocol --------------------------------------------------
    def __getitem__(self, key: str) -> float:
        return self._values[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.6g}" for k, v in sorted(self._values.items()))
        return f"Valuation({inner})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Valuation):
            return self._values == other._values
        if isinstance(other, Mapping):
            return self._values == dict(other)
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash(tuple(sorted(self._values.items())))

    # -- convenience -------------------------------------------------------
    def get(self, key: str, default: float = 0.0) -> float:
        """Return the value of ``key`` or ``default`` when absent."""
        return self._values.get(key, default)

    def as_dict(self) -> Dict[str, float]:
        """Return a mutable copy of the underlying mapping."""
        return dict(self._values)

    def updated(self, changes: Mapping[str, float]) -> "Valuation":
        """Return a new valuation with ``changes`` applied on top of this one."""
        merged = dict(self._values)
        merged.update({k: float(v) for k, v in changes.items()})
        return Valuation(merged)

    def advanced(self, rates: Mapping[str, float], dt: float) -> "Valuation":
        """Return a new valuation after flowing for ``dt`` at constant ``rates``.

        Variables without an entry in ``rates`` keep their value (rate 0),
        matching the elaboration rule that a child automaton's variables
        "remain unchanged" while control is elsewhere.
        """
        if dt < 0:
            raise ValueError("dt must be non-negative")
        merged = dict(self._values)
        for name, rate in rates.items():
            merged[name] = merged.get(name, 0.0) + rate * dt
        return Valuation(merged)

    def restricted(self, names: Iterable[str]) -> "Valuation":
        """Return the valuation restricted to the given variable names."""
        wanted = set(names)
        return Valuation({k: v for k, v in self._values.items() if k in wanted})


def zero_valuation(names: Iterable[str]) -> Valuation:
    """Return the all-zero valuation over ``names``.

    The paper's design-pattern automata all start with every data state
    variable equal to zero; this helper builds that initial data state.
    """
    return Valuation({name: 0.0 for name in names})
