"""Small shared utilities (RNG handling, formatting, time helpers)."""

from repro.util.seeding import SeedSequenceFactory, derive_seed, spawn_rng
from repro.util.tables import format_table
from repro.util.timebase import TimePoint, almost_equal, almost_leq, almost_geq, EPSILON

__all__ = [
    "SeedSequenceFactory",
    "derive_seed",
    "spawn_rng",
    "format_table",
    "TimePoint",
    "almost_equal",
    "almost_leq",
    "almost_geq",
    "EPSILON",
]
