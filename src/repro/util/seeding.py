"""Deterministic random-number handling.

Every stochastic component of the library (wireless channels, surgeon
behaviour model, fault-injection campaigns) draws its randomness from a
``random.Random`` instance obtained through the helpers in this module, so
that a single integer seed reproduces a whole experiment bit-for-bit.
"""

from __future__ import annotations

import bisect
import hashlib
import random
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple


def _stable_mix(seed: int, stream: str) -> int:
    """Deterministically mix a seed and a stream name into one integer.

    Python's built-in ``hash`` of strings is randomized per process, so it
    must not be used here: experiment seeds have to reproduce bit-for-bit
    across processes and machines.
    """
    digest = hashlib.sha256(f"{int(seed)}::{stream}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def derive_seed(seed: int, stream: str) -> int:
    """Derive a deterministic 31-bit child seed for a named stream.

    The campaign executor uses this to give every trial of a batch its own
    decorrelated seed, keyed only by the master seed and the trial's
    position in the campaign spec — never by scheduling — so any worker
    count reproduces the same trials.
    """
    return _stable_mix(seed, stream) & 0x7FFFFFFF


def spawn_rng(seed: int | None, stream: str = "") -> random.Random:
    """Create an independent ``random.Random`` for a named stream.

    Different ``stream`` names derived from the same ``seed`` produce
    decorrelated generators, so adding a new consumer of randomness does not
    perturb the draws seen by existing consumers.

    Inside an active :func:`rng_session` the generator is adopted by the
    session's :class:`RngLedger`: its draws are counted, and — when the
    session's :class:`ForkPlan` carries fork segments — replayed from the
    parent trial's generators up to each recorded watermark before
    switching to fresh child randomness.  Outside a session (every
    pre-existing code path) the behaviour is unchanged.

    Args:
        seed: Master seed.  ``None`` produces an OS-seeded generator.
        stream: Human-readable stream name (e.g. ``"channel:uplink:xi1"``).

    Returns:
        A dedicated ``random.Random`` instance.
    """
    if seed is None:
        return random.Random()
    if _ACTIVE_LEDGER is not None:
        return _ACTIVE_LEDGER.spawn(seed, stream)
    return random.Random(_stable_mix(seed, stream))


# -- RNG forking (rare-event importance splitting) ---------------------------
#
# The splitting estimator in ``repro.verify.rare`` needs *conditional*
# trial continuations: a child trial that is bit-identical to its parent up
# to the moment the parent first reached a risk level, and stochastically
# independent afterwards.  Because every stochastic component draws through
# :func:`spawn_rng`, that fork can be expressed purely in seed space:
# replay the parent's generators for the first ``k`` draws of every stream
# (``k`` recorded at the crossing — the *watermark*), then switch each
# stream to a fresh generator derived from a child seed.  The replayed
# prefix reproduces the parent trajectory exactly on any engine tier, so
# the child is a proper sample from the conditional distribution given the
# parent's level-entrance state.

#: One RNG stream inside a session: ``(stream name, occurrence index)``.
#: The occurrence index counts repeated ``spawn_rng`` calls with the same
#: stream name (e.g. a channel seeded at construction and re-seeded by the
#: engine's per-trial reset), which is deterministic under replay.
StreamKey = Tuple[str, int]


@dataclass(frozen=True)
class ForkSegment:
    """One fork in a trial's lineage.

    Attributes:
        seed: Child seed salting the post-fork randomness of every stream.
        watermark: Per-stream draw counts at the fork point; streams absent
            from the mapping had made no draws yet (or did not exist) when
            the fork was recorded.
    """

    seed: int
    watermark: Dict[StreamKey, int]

    def to_json(self) -> dict:
        """Encode the segment as JSON-ready primitives."""
        return {"seed": int(self.seed),
                "watermark": [[stream, occ, count] for (stream, occ), count
                              in sorted(self.watermark.items())]}

    @classmethod
    def from_json(cls, data: dict) -> "ForkSegment":
        """Rebuild a segment encoded by :meth:`to_json`."""
        return cls(seed=int(data["seed"]),
                   watermark={(stream, int(occ)): int(count)
                              for stream, occ, count in data["watermark"]})


@dataclass(frozen=True)
class ForkPlan:
    """The full stochastic identity of one (possibly forked) trial.

    ``segments`` is the trial's fork lineage, oldest first: an empty tuple
    is an ordinary root trial; each segment replays the prefix recorded by
    its watermark and diverges afterwards with randomness salted by the
    segment seed.  Running the same plan reproduces the same trial
    bit-for-bit on any worker and any engine tier.
    """

    root_seed: int
    segments: Tuple[ForkSegment, ...] = ()

    def fork(self, seed: int, watermark: Dict[StreamKey, int]) -> "ForkPlan":
        """Extend the lineage with one more fork point."""
        return ForkPlan(self.root_seed,
                        self.segments + (ForkSegment(seed, dict(watermark)),))

    def to_json(self) -> dict:
        """Encode the plan as JSON-ready primitives."""
        return {"root_seed": int(self.root_seed),
                "segments": [segment.to_json() for segment in self.segments]}

    @classmethod
    def from_json(cls, data: dict) -> "ForkPlan":
        """Rebuild a plan encoded by :meth:`to_json`."""
        return cls(root_seed=int(data["root_seed"]),
                   segments=tuple(ForkSegment.from_json(part)
                                  for part in data["segments"]))


class _ForkedStream(random.Random):
    """A ``random.Random`` that replays parent generators, then diverges.

    Draw ``i`` (counting calls to :meth:`random` and :meth:`getrandbits`,
    the two primitives every other ``random.Random`` method reduces to) is
    served by the parent generator while ``i`` is below the first
    watermark boundary, by the first child generator until the second
    boundary, and so on.  Replaying the same call sequence therefore
    reproduces the parent's draws exactly up to each fork and fresh,
    decorrelated draws afterwards.
    """

    def __init__(self, generators: List[random.Random],
                 boundaries: List[int]):
        super().__init__(0)
        self._generators = generators
        self._boundaries = boundaries
        self.draws = 0

    def _generator(self) -> random.Random:
        index = bisect.bisect_right(self._boundaries, self.draws)
        self.draws += 1
        return self._generators[index]

    def random(self) -> float:
        """Serve one uniform draw from the lineage-selected generator."""
        return self._generator().random()

    def getrandbits(self, k: int) -> int:
        """Serve one ``getrandbits`` draw from the lineage-selected generator."""
        return self._generator().getrandbits(k)


class RngLedger:
    """Per-trial registry of every RNG stream spawned during a session.

    The ledger exists for two reasons: *counting* (its :meth:`snapshot`
    is the watermark a risk-level observer records when a trial first
    crosses a splitting threshold) and *forking* (streams spawned while a
    plan with fork segments is active replay the parent's draws up to each
    segment's watermark).  Both sides use the same draw counter, so a
    watermark recorded in one run is exact replay state for the next.
    """

    def __init__(self, plan: ForkPlan):
        self.plan = plan
        self._streams: Dict[StreamKey, _ForkedStream] = {}
        self._occurrences: Dict[str, int] = {}

    def spawn(self, seed: int, stream: str) -> random.Random:
        """Create (and track) the generator for one ``spawn_rng`` call."""
        occurrence = self._occurrences.get(stream, 0)
        self._occurrences[stream] = occurrence + 1
        key: StreamKey = (stream, occurrence)
        generators: List[random.Random] = [random.Random(_stable_mix(seed, stream))]
        boundaries: List[int] = []
        for segment in self.plan.segments:
            generators.append(random.Random(
                _stable_mix(segment.seed, f"fork:{stream}#{occurrence}")))
            boundaries.append(int(segment.watermark.get(key, 0)))
        forked = _ForkedStream(generators, boundaries)
        self._streams[key] = forked
        return forked

    def snapshot(self) -> Dict[StreamKey, int]:
        """Current per-stream draw counts (streams with zero draws omitted)."""
        return {key: stream.draws for key, stream in self._streams.items()
                if stream.draws}


#: The session ledger :func:`spawn_rng` consults; trials run one at a time
#: within a worker process, so a module-global (not thread-local) suffices.
_ACTIVE_LEDGER: RngLedger | None = None


def current_ledger() -> RngLedger | None:
    """Return the active session's ledger, or ``None`` outside a session."""
    return _ACTIVE_LEDGER


@contextmanager
def rng_session(plan: ForkPlan):
    """Run one trial under a :class:`RngLedger` (fork-aware randomness).

    Every :func:`spawn_rng` call inside the ``with`` block is adopted by
    the yielded ledger.  Sessions do not nest: a trial is the unit of
    forking.

    Args:
        plan: The trial's stochastic identity (root seed + fork lineage).

    Yields:
        The session's :class:`RngLedger`.

    Raises:
        RuntimeError: If a session is already active.
    """
    global _ACTIVE_LEDGER
    if _ACTIVE_LEDGER is not None:
        raise RuntimeError("rng_session does not nest: a session is already active")
    ledger = RngLedger(plan)
    _ACTIVE_LEDGER = ledger
    try:
        yield ledger
    finally:
        _ACTIVE_LEDGER = None


class SeedSequenceFactory:
    """Produce reproducible child seeds for batches of trials.

    Used by the verification explorer and the benchmark harness to run many
    independent trials whose seeds are all derived from one master seed.
    """

    def __init__(self, master_seed: int):
        self._master_seed = int(master_seed)
        self._rng = random.Random(self._master_seed)

    @property
    def master_seed(self) -> int:
        """The master seed this factory was created with."""
        return self._master_seed

    def child_seed(self, index: int) -> int:
        """Return a deterministic child seed for trial number ``index``."""
        return derive_seed(self._master_seed, f"trial:{int(index)}")

    def child_seeds(self, count: int) -> list[int]:
        """Return ``count`` deterministic child seeds."""
        return [self.child_seed(i) for i in range(count)]

    def iter_seeds(self) -> Iterator[int]:
        """Yield an unbounded stream of child seeds."""
        index = 0
        while True:
            yield self.child_seed(index)
            index += 1
