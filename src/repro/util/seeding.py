"""Deterministic random-number handling.

Every stochastic component of the library (wireless channels, surgeon
behaviour model, fault-injection campaigns) draws its randomness from a
``random.Random`` instance obtained through the helpers in this module, so
that a single integer seed reproduces a whole experiment bit-for-bit.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


def _stable_mix(seed: int, stream: str) -> int:
    """Deterministically mix a seed and a stream name into one integer.

    Python's built-in ``hash`` of strings is randomized per process, so it
    must not be used here: experiment seeds have to reproduce bit-for-bit
    across processes and machines.
    """
    digest = hashlib.sha256(f"{int(seed)}::{stream}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def derive_seed(seed: int, stream: str) -> int:
    """Derive a deterministic 31-bit child seed for a named stream.

    The campaign executor uses this to give every trial of a batch its own
    decorrelated seed, keyed only by the master seed and the trial's
    position in the campaign spec — never by scheduling — so any worker
    count reproduces the same trials.
    """
    return _stable_mix(seed, stream) & 0x7FFFFFFF


def spawn_rng(seed: int | None, stream: str = "") -> random.Random:
    """Create an independent ``random.Random`` for a named stream.

    Different ``stream`` names derived from the same ``seed`` produce
    decorrelated generators, so adding a new consumer of randomness does not
    perturb the draws seen by existing consumers.

    Args:
        seed: Master seed.  ``None`` produces an OS-seeded generator.
        stream: Human-readable stream name (e.g. ``"channel:uplink:xi1"``).

    Returns:
        A dedicated ``random.Random`` instance.
    """
    if seed is None:
        return random.Random()
    return random.Random(_stable_mix(seed, stream))


class SeedSequenceFactory:
    """Produce reproducible child seeds for batches of trials.

    Used by the verification explorer and the benchmark harness to run many
    independent trials whose seeds are all derived from one master seed.
    """

    def __init__(self, master_seed: int):
        self._master_seed = int(master_seed)
        self._rng = random.Random(self._master_seed)

    @property
    def master_seed(self) -> int:
        """The master seed this factory was created with."""
        return self._master_seed

    def child_seed(self, index: int) -> int:
        """Return a deterministic child seed for trial number ``index``."""
        return derive_seed(self._master_seed, f"trial:{int(index)}")

    def child_seeds(self, count: int) -> list[int]:
        """Return ``count`` deterministic child seeds."""
        return [self.child_seed(i) for i in range(count)]

    def iter_seeds(self) -> Iterator[int]:
        """Yield an unbounded stream of child seeds."""
        index = 0
        while True:
            yield self.child_seed(index)
            index += 1
