"""Plain-text table formatting used by the benchmark harness.

The benchmarks print the rows of the paper's Table I (and of the derived
figures) as aligned ASCII tables; no plotting library is required.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Args:
        headers: Column names.
        rows: Iterable of row tuples; cells are converted with ``str``
            (floats get a compact 3-decimal rendering).
        title: Optional title printed above the table.

    Returns:
        A multi-line string ready to ``print``.
    """
    str_rows = [[_stringify(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        padded = [c.ljust(widths[i]) for i, c in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(fmt_row(list(headers)))
    lines.append(separator)
    for row in str_rows:
        lines.append(fmt_row(row))
    lines.append(separator)
    return "\n".join(lines)


def format_series(name: str, times: Sequence[float], values: Sequence[float],
                  max_points: int = 20) -> str:
    """Render a time series compactly (used for figure benchmarks).

    Long series are down-sampled to at most ``max_points`` points so that a
    benchmark log stays readable while still conveying the shape of the
    curve.
    """
    if len(times) != len(values):
        raise ValueError("times and values must have equal length")
    n = len(times)
    if n == 0:
        return f"{name}: (empty)"
    stride = max(1, n // max_points)
    picked = list(range(0, n, stride))
    if picked[-1] != n - 1:
        picked.append(n - 1)
    pairs = ", ".join(f"({times[i]:.2f}, {values[i]:.3f})" for i in picked)
    return f"{name}: {pairs}"
