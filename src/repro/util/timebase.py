"""Time comparison helpers.

The simulator jumps to exact guard-crossing times computed in floating
point, so strict comparisons like ``clock >= threshold`` need a small
tolerance to behave deterministically.  All tolerant comparisons used in
the library live here so the tolerance is defined in exactly one place.
"""

from __future__ import annotations

#: Absolute tolerance used for all time and guard comparisons (seconds).
EPSILON: float = 1e-9

#: Convenience alias: simulation timestamps are plain floats (seconds).
TimePoint = float


def almost_equal(a: float, b: float, eps: float = EPSILON) -> bool:
    """Return True when ``a`` and ``b`` differ by at most ``eps``."""
    return abs(a - b) <= eps


def almost_leq(a: float, b: float, eps: float = EPSILON) -> bool:
    """Return True when ``a`` is less than or equal to ``b`` within ``eps``."""
    return a <= b + eps


def almost_geq(a: float, b: float, eps: float = EPSILON) -> bool:
    """Return True when ``a`` is greater than or equal to ``b`` within ``eps``."""
    return a >= b - eps


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` to the closed interval ``[low, high]``."""
    if value < low:
        return low
    if value > high:
        return high
    return value
