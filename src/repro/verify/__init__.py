"""Simulation-based verification harness (fault-injection campaigns)."""

from repro.verify.explorer import (RARE_METHODS, CampaignSettings,
                                   compare_lease_vs_baseline,
                                   estimate_violation_probability,
                                   run_case_study_campaign)
from repro.verify.faults import FaultScenario, blackout_scenario, standard_fault_scenarios
from repro.verify.properties import (PropertyResult, TraceProperty, auto_reset_property,
                                     bounded_dwelling_property, pte_safety_property,
                                     single_risky_visit_per_round_property)
from repro.verify.rare import (CellTemplate, RareEventEstimate, ScoredTrial,
                               SplitSettings, crude_estimate,
                               crude_estimate_for_cell, crude_trials_for,
                               fixed_effort_splitting, scored_case_trial,
                               split_estimate_for_cell)
from repro.verify.report import CampaignReport, TrialRecord
from repro.verify.sprt import (SequentialProbabilityRatioTest, SprtResult,
                               SprtSettings, run_sprt_campaign,
                               run_sprt_trials)

__all__ = [
    "CampaignSettings", "run_case_study_campaign", "compare_lease_vs_baseline",
    "estimate_violation_probability", "RARE_METHODS",
    "FaultScenario", "standard_fault_scenarios", "blackout_scenario",
    "TraceProperty", "PropertyResult", "pte_safety_property",
    "bounded_dwelling_property", "auto_reset_property",
    "single_risky_visit_per_round_property",
    "CampaignReport", "TrialRecord",
    "ScoredTrial", "RareEventEstimate", "SplitSettings", "CellTemplate",
    "fixed_effort_splitting", "crude_estimate", "crude_trials_for",
    "scored_case_trial", "split_estimate_for_cell", "crude_estimate_for_cell",
    "SprtSettings", "SprtResult", "SequentialProbabilityRatioTest",
    "run_sprt_trials", "run_sprt_campaign",
]
