"""Simulation-based verification harness (fault-injection campaigns)."""

from repro.verify.explorer import (CampaignSettings, compare_lease_vs_baseline,
                                   run_case_study_campaign)
from repro.verify.faults import FaultScenario, blackout_scenario, standard_fault_scenarios
from repro.verify.properties import (PropertyResult, TraceProperty, auto_reset_property,
                                     bounded_dwelling_property, pte_safety_property,
                                     single_risky_visit_per_round_property)
from repro.verify.report import CampaignReport, TrialRecord

__all__ = [
    "CampaignSettings", "run_case_study_campaign", "compare_lease_vs_baseline",
    "FaultScenario", "standard_fault_scenarios", "blackout_scenario",
    "TraceProperty", "PropertyResult", "pte_safety_property",
    "bounded_dwelling_property", "auto_reset_property",
    "single_risky_visit_per_round_property",
    "CampaignReport", "TrialRecord",
]
