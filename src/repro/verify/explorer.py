"""Randomized fault-injection campaigns over the case study and the pattern.

The explorer is the empirical stand-in for the paper's Theorem 1/2 proofs:
it runs many independent trials of a design under a family of loss
processes and seeds and checks the PTE safety properties on every recorded
trace.  A campaign over the lease-based design must pass every trial; the
same campaign over the no-lease baseline is expected to fail some of them,
quantifying the value of the leases.
"""

from __future__ import annotations

import functools

from dataclasses import dataclass, field
from typing import Sequence

from repro.casestudy.config import CaseStudyConfig
from repro.casestudy.emulation import run_trial
from repro.verify.faults import FaultScenario, standard_fault_scenarios
from repro.verify.properties import PropertyResult, TraceProperty
from repro.verify.rare import (CellTemplate, RareEventEstimate, SplitSettings,
                               crude_estimate, fixed_effort_splitting,
                               pool_map, scored_case_trial)
from repro.verify.report import CampaignReport, TrialRecord
from repro.verify.sprt import SprtResult, SprtSettings, run_sprt_trials
from repro.util.seeding import SeedSequenceFactory

#: Estimation methods :func:`estimate_violation_probability` dispatches on.
RARE_METHODS = ("crude", "split", "sprt")


@dataclass
class CampaignSettings:
    """Parameters of one fault-injection campaign.

    Attributes:
        scenarios: Loss processes to sweep.
        seeds_per_scenario: Independent trials per loss process.
        trial_duration: Length of each trial (seconds).
        master_seed: Seed from which every trial seed is derived.
        with_lease: Whether to run the lease design or the no-lease baseline.
        engine: Simulation kernel executing the trials (``"reference"`` /
            ``"compiled"``); ``None`` defers to ``REPRO_ENGINE``.
        method: Violation-probability estimation method used by
            :func:`estimate_violation_probability`: ``"crude"`` Monte
            Carlo, ``"split"`` multilevel importance splitting, or
            ``"sprt"`` sequential hypothesis testing.
        crude_trials: Trial budget of the ``"crude"`` method.
        trials_per_level: Per-level effort of the ``"split"`` method (and
            the dispatch batch of ``"sprt"``).
        quantile: Adaptive promotion quantile of the ``"split"`` method.
        levels: Explicit splitting thresholds (``None`` = adaptive).
        max_levels: Adaptive level cap of the ``"split"`` method.
        confidence: Confidence level of reported intervals.
        p0: SPRT null hypothesis (H0: p <= p0).
        p1: SPRT alternative hypothesis (H1: p >= p1).
        alpha: SPRT type-I error budget.
        beta: SPRT type-II error budget.
        max_trials: SPRT truncation point.
        max_workers: Worker processes for the rare-event estimators
            (``1`` = serial; results are identical either way).
    """

    scenarios: Sequence[FaultScenario] = field(default_factory=standard_fault_scenarios)
    seeds_per_scenario: int = 3
    trial_duration: float = 600.0
    master_seed: int = 42
    with_lease: bool = True
    engine: str | None = None
    method: str = "crude"
    crude_trials: int = 512
    trials_per_level: int = 64
    quantile: float = 0.25
    levels: tuple[float, ...] | None = None
    max_levels: int = 12
    confidence: float = 0.95
    p0: float = 1e-4
    p1: float = 1e-2
    alpha: float = 0.05
    beta: float = 0.05
    max_trials: int = 10_000
    max_workers: int = 1

    def split_settings(self) -> SplitSettings:
        """The ``"split"`` method's knobs as a :class:`SplitSettings`."""
        return SplitSettings(trials_per_level=self.trials_per_level,
                             quantile=self.quantile, levels=self.levels,
                             max_levels=self.max_levels,
                             confidence=self.confidence)

    def sprt_settings(self) -> SprtSettings:
        """The ``"sprt"`` method's knobs as a :class:`SprtSettings`."""
        return SprtSettings(p0=self.p0, p1=self.p1, alpha=self.alpha,
                            beta=self.beta, max_trials=self.max_trials)


def run_case_study_campaign(config: CaseStudyConfig,
                            settings: CampaignSettings,
                            extra_properties: Sequence[TraceProperty] = ()) -> CampaignReport:
    """Run a fault-injection campaign over the laser-tracheotomy case study.

    Every trial runs the full case study (surgeon, patient, supervisor,
    ventilator, laser) under one loss process and one seed, then evaluates
    the PTE safety rules plus any extra trace properties.

    Args:
        config: Case-study configuration (the trial duration is overridden
            by the campaign settings).
        settings: Campaign parameters.
        extra_properties: Additional trace properties to evaluate.

    Returns:
        The aggregated :class:`~repro.verify.report.CampaignReport`.
    """
    report = CampaignReport()
    seeder = SeedSequenceFactory(settings.master_seed)
    trial_index = 0
    for scenario in settings.scenarios:
        for _ in range(settings.seeds_per_scenario):
            seed = seeder.child_seed(trial_index)
            trial_index += 1
            channel = scenario.build_channel(seed)
            result = run_trial(config, with_lease=settings.with_lease, seed=seed,
                               duration=settings.trial_duration, channel=channel,
                               keep_trace=bool(extra_properties),
                               engine=settings.engine)
            properties: list[PropertyResult] = [
                PropertyResult("pte-safety", result.monitor.safe,
                               result.monitor.summary())]
            for prop in extra_properties:
                properties.append(prop.evaluate(result.trace))
            report.add(TrialRecord(
                scenario=scenario.name, seed=seed,
                properties=tuple(properties),
                observed_loss_ratio=result.observed_loss_ratio))
    return report


def compare_lease_vs_baseline(config: CaseStudyConfig,
                              settings: CampaignSettings) -> dict[str, CampaignReport]:
    """Run the same campaign with and without leases and return both reports.

    The headline reproduction claim corresponds to
    ``reports["with_lease"].all_passed`` being True while
    ``reports["without_lease"]`` records failures under sufficiently harsh
    loss processes.
    """
    with_settings = CampaignSettings(
        scenarios=settings.scenarios, seeds_per_scenario=settings.seeds_per_scenario,
        trial_duration=settings.trial_duration, master_seed=settings.master_seed,
        with_lease=True, engine=settings.engine)
    without_settings = CampaignSettings(
        scenarios=settings.scenarios, seeds_per_scenario=settings.seeds_per_scenario,
        trial_duration=settings.trial_duration, master_seed=settings.master_seed,
        with_lease=False, engine=settings.engine)
    return {
        "with_lease": run_case_study_campaign(config, with_settings),
        "without_lease": run_case_study_campaign(config, without_settings),
    }


def estimate_violation_probability(
        config: CaseStudyConfig, settings: CampaignSettings,
        scenario: FaultScenario | None = None,
) -> RareEventEstimate | SprtResult:
    """Estimate one scenario's PTE-violation probability.

    Dispatches on ``settings.method``:

    * ``"crude"`` — plain Monte Carlo over ``settings.crude_trials``
      independent trials; returns a :class:`RareEventEstimate`.
    * ``"split"`` — fixed-effort multilevel importance splitting over the
      monitor's risk levels (see :mod:`repro.verify.rare`); returns a
      :class:`RareEventEstimate` from typically orders of magnitude fewer
      trials at equal relative error.
    * ``"sprt"`` — Wald's sequential probability ratio test of
      H0: p <= ``settings.p0`` vs H1: p >= ``settings.p1`` (see
      :mod:`repro.verify.sprt`); returns an :class:`SprtResult` instead
      of a point estimate.

    All three methods run the same scored-trial machinery, derive every
    seed deterministically from ``settings.master_seed``, and produce
    bit-identical numbers for any ``settings.max_workers`` and any engine
    tier.

    Args:
        config: Case-study configuration.
        settings: Campaign parameters (method selection and knobs).
        scenario: The loss process to estimate under; ``None`` uses the
            configuration's calibrated channel.

    Returns:
        A :class:`RareEventEstimate` (crude/split) or an
        :class:`SprtResult` (sprt).

    Raises:
        ValueError: If ``settings.method`` is not one of ``RARE_METHODS``.
    """
    if settings.method not in RARE_METHODS:
        raise ValueError(f"unknown estimation method {settings.method!r}; "
                         f"expected one of {RARE_METHODS}")
    template = CellTemplate(config=config, with_lease=settings.with_lease,
                            duration=settings.trial_duration,
                            channel=scenario, engine=settings.engine)
    trial_fn = functools.partial(scored_case_trial, template)
    map_fn = functools.partial(pool_map, max_workers=settings.max_workers)
    name = f"explorer:{scenario.name if scenario is not None else 'default'}"
    if settings.method == "crude":
        return crude_estimate(trial_fn, master_seed=settings.master_seed,
                              trials=settings.crude_trials,
                              name=f"crude:{name}", map_fn=map_fn,
                              confidence=settings.confidence)
    if settings.method == "split":
        return fixed_effort_splitting(trial_fn,
                                      master_seed=settings.master_seed,
                                      settings=settings.split_settings(),
                                      name=f"split:{name}", map_fn=map_fn)
    return run_sprt_trials(trial_fn, master_seed=settings.master_seed,
                           settings=settings.sprt_settings(),
                           name=f"sprt:{name}",
                           batch=settings.trials_per_level, map_fn=map_fn)
