"""Randomized fault-injection campaigns over the case study and the pattern.

The explorer is the empirical stand-in for the paper's Theorem 1/2 proofs:
it runs many independent trials of a design under a family of loss
processes and seeds and checks the PTE safety properties on every recorded
trace.  A campaign over the lease-based design must pass every trial; the
same campaign over the no-lease baseline is expected to fail some of them,
quantifying the value of the leases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.casestudy.config import CaseStudyConfig
from repro.casestudy.emulation import run_trial
from repro.verify.faults import FaultScenario, standard_fault_scenarios
from repro.verify.properties import PropertyResult, TraceProperty
from repro.verify.report import CampaignReport, TrialRecord
from repro.util.seeding import SeedSequenceFactory


@dataclass
class CampaignSettings:
    """Parameters of one fault-injection campaign.

    Attributes:
        scenarios: Loss processes to sweep.
        seeds_per_scenario: Independent trials per loss process.
        trial_duration: Length of each trial (seconds).
        master_seed: Seed from which every trial seed is derived.
        with_lease: Whether to run the lease design or the no-lease baseline.
        engine: Simulation kernel executing the trials (``"reference"`` /
            ``"compiled"``); ``None`` defers to ``REPRO_ENGINE``.
    """

    scenarios: Sequence[FaultScenario] = field(default_factory=standard_fault_scenarios)
    seeds_per_scenario: int = 3
    trial_duration: float = 600.0
    master_seed: int = 42
    with_lease: bool = True
    engine: str | None = None


def run_case_study_campaign(config: CaseStudyConfig,
                            settings: CampaignSettings,
                            extra_properties: Sequence[TraceProperty] = ()) -> CampaignReport:
    """Run a fault-injection campaign over the laser-tracheotomy case study.

    Every trial runs the full case study (surgeon, patient, supervisor,
    ventilator, laser) under one loss process and one seed, then evaluates
    the PTE safety rules plus any extra trace properties.

    Args:
        config: Case-study configuration (the trial duration is overridden
            by the campaign settings).
        settings: Campaign parameters.
        extra_properties: Additional trace properties to evaluate.

    Returns:
        The aggregated :class:`~repro.verify.report.CampaignReport`.
    """
    report = CampaignReport()
    seeder = SeedSequenceFactory(settings.master_seed)
    trial_index = 0
    for scenario in settings.scenarios:
        for _ in range(settings.seeds_per_scenario):
            seed = seeder.child_seed(trial_index)
            trial_index += 1
            channel = scenario.build_channel(seed)
            result = run_trial(config, with_lease=settings.with_lease, seed=seed,
                               duration=settings.trial_duration, channel=channel,
                               keep_trace=bool(extra_properties),
                               engine=settings.engine)
            properties: list[PropertyResult] = [
                PropertyResult("pte-safety", result.monitor.safe,
                               result.monitor.summary())]
            for prop in extra_properties:
                properties.append(prop.evaluate(result.trace))
            report.add(TrialRecord(
                scenario=scenario.name, seed=seed,
                properties=tuple(properties),
                observed_loss_ratio=result.observed_loss_ratio))
    return report


def compare_lease_vs_baseline(config: CaseStudyConfig,
                              settings: CampaignSettings) -> dict[str, CampaignReport]:
    """Run the same campaign with and without leases and return both reports.

    The headline reproduction claim corresponds to
    ``reports["with_lease"].all_passed`` being True while
    ``reports["without_lease"]`` records failures under sufficiently harsh
    loss processes.
    """
    with_settings = CampaignSettings(
        scenarios=settings.scenarios, seeds_per_scenario=settings.seeds_per_scenario,
        trial_duration=settings.trial_duration, master_seed=settings.master_seed,
        with_lease=True, engine=settings.engine)
    without_settings = CampaignSettings(
        scenarios=settings.scenarios, seeds_per_scenario=settings.seeds_per_scenario,
        trial_duration=settings.trial_duration, master_seed=settings.master_seed,
        with_lease=False, engine=settings.engine)
    return {
        "with_lease": run_case_study_campaign(config, with_settings),
        "without_lease": run_case_study_campaign(config, without_settings),
    }
