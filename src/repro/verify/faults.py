"""Fault-injection descriptions for verification campaigns.

The paper's fault model allows *arbitrary* loss of wireless events.  A
verification campaign therefore sweeps a family of loss processes -- from
light memoryless loss to near-total blackouts and adversarially placed loss
windows -- and checks that the PTE safety properties hold under every one
of them (for the lease-based design) while documenting how the no-lease
baseline degrades.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.wireless.channel import (BernoulliChannel, Channel, GilbertElliottChannel,
                                    LossWindow, PerfectChannel, ScriptedChannel)


@dataclass(frozen=True)
class FaultScenario:
    """One loss process used by a verification campaign."""

    name: str
    description: str
    make_channel_kwargs: dict = field(default_factory=dict)
    kind: str = "bernoulli"

    def build_channel(self, seed: int | None = None) -> Channel:
        """Instantiate the scenario's channel with the given seed."""
        if self.kind == "perfect":
            return PerfectChannel()
        if self.kind == "bernoulli":
            return BernoulliChannel(seed=seed, **self.make_channel_kwargs)
        if self.kind == "gilbert":
            return GilbertElliottChannel(seed=seed, **self.make_channel_kwargs)
        if self.kind == "scripted":
            windows = [LossWindow(*w) for w in self.make_channel_kwargs.get("windows", [])]
            return ScriptedChannel(windows)
        raise ValueError(f"unknown fault scenario kind {self.kind!r}")


def standard_fault_scenarios(*, include_perfect: bool = True,
                             loss_levels: Sequence[float] = (0.1, 0.3, 0.5, 0.8),
                             burst_levels: Sequence[tuple[float, float]] = ((300.0, 30.0),
                                                                            (120.0, 60.0))
                             ) -> List[FaultScenario]:
    """The default family of loss processes swept by campaigns.

    Args:
        include_perfect: Include the lossless control condition.
        loss_levels: Memoryless loss probabilities to sweep.
        burst_levels: ``(mean_good, mean_bad)`` pairs for burst-loss channels.
    """
    scenarios: List[FaultScenario] = []
    if include_perfect:
        scenarios.append(FaultScenario("perfect", "no losses", kind="perfect"))
    for p in loss_levels:
        scenarios.append(FaultScenario(
            f"bernoulli-{int(round(p * 100))}",
            f"memoryless loss with probability {p:g}",
            {"loss_probability": p}, kind="bernoulli"))
    for good, bad in burst_levels:
        scenarios.append(FaultScenario(
            f"burst-{int(good)}-{int(bad)}",
            f"burst loss: good ~{good:g}s (5% loss), bad ~{bad:g}s (95% loss)",
            {"mean_good_duration": good, "mean_bad_duration": bad,
             "loss_good": 0.05, "loss_bad": 0.95}, kind="gilbert"))
    return scenarios


def blackout_scenario(start: float, end: float, name: str | None = None) -> FaultScenario:
    """A deterministic total blackout of the wireless network in ``[start, end]``."""
    return FaultScenario(
        name or f"blackout-{int(start)}-{int(end)}",
        f"every wireless packet sent during [{start:g}s, {end:g}s] is lost",
        {"windows": [(start, end)]}, kind="scripted")
