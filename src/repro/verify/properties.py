"""Trace properties used by verification campaigns.

A *property* is a named predicate over a recorded trace.  The campaign
runner (:mod:`repro.verify.explorer`) evaluates every property on every
trial and aggregates the outcomes into a report.  The two built-in property
families correspond directly to the paper's claims:

* :func:`pte_safety_property` -- both PTE safety rules hold (Theorem 1 /
  Theorem 2 conclusion);
* :func:`auto_reset_property` -- after every coordination round each remote
  entity is back in its Fall-Back location within the lease horizon
  ``T^max_wait + T^max_LS1`` (the first step of the paper's proof sketch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.core.monitor import PTEMonitor
from repro.core.rules import PTERuleSet
from repro.hybrid.trace import Trace


@dataclass(frozen=True)
class PropertyResult:
    """Outcome of evaluating one property on one trace."""

    name: str
    holds: bool
    detail: str = ""


class TraceProperty:
    """A named boolean property of a trace."""

    def __init__(self, name: str, check: Callable[[Trace], PropertyResult]):
        self.name = name
        self._check = check

    def evaluate(self, trace: Trace) -> PropertyResult:
        """Evaluate the property on one trace."""
        return self._check(trace)


def pte_safety_property(rules: PTERuleSet,
                        automaton_of: Mapping[str, str] | None = None,
                        name: str = "pte-safety") -> TraceProperty:
    """Property: the trace satisfies both PTE safety rules."""
    monitor = PTEMonitor(rules, automaton_of)

    def check(trace: Trace) -> PropertyResult:
        report = monitor.check(trace)
        if report.safe:
            return PropertyResult(name, True, report.summary())
        first = report.violations[0]
        return PropertyResult(name, False,
                              f"{len(report.violations)} violation(s); first: {first}")

    return TraceProperty(name, check)


def bounded_dwelling_property(entities: Sequence[str], bound: float,
                              risky_of: Mapping[str, set[str]] | None = None,
                              name: str = "bounded-dwelling") -> TraceProperty:
    """Property: every listed entity's continuous risky dwell stays below ``bound``."""

    def check(trace: Trace) -> PropertyResult:
        for entity in entities:
            risky = (risky_of or {}).get(entity) or trace.risky_set(entity)
            for start, end in trace.dwell_intervals(entity, risky):
                if end - start > bound + 1e-9:
                    return PropertyResult(
                        name, False,
                        f"{entity} dwelled {end - start:.3f}s in risky locations "
                        f"(bound {bound:.3f}s) starting at t={start:.3f}s")
        return PropertyResult(name, True, f"max bound {bound:.3f}s respected")

    return TraceProperty(name, check)


def auto_reset_property(entities: Sequence[str], fallback_locations: Mapping[str, str],
                        horizon: float, name: str = "auto-reset") -> TraceProperty:
    """Property: entities always return to Fall-Back within the lease horizon.

    For every maximal excursion of an entity away from its Fall-Back
    location, the excursion must last at most ``horizon`` seconds
    (``T^max_wait + T^max_LS1`` for a valid configuration).  Excursions cut
    off by the end of the trace are ignored.
    """

    def check(trace: Trace) -> PropertyResult:
        for entity in entities:
            fallback = fallback_locations[entity]
            excursion_start: float | None = None
            for visit in trace.visits(entity):
                if visit.location == fallback:
                    if excursion_start is not None:
                        length = visit.start - excursion_start
                        if length > horizon + 1e-9:
                            return PropertyResult(
                                name, False,
                                f"{entity} stayed away from Fall-Back for {length:.3f}s "
                                f"(allowed {horizon:.3f}s) starting at t={excursion_start:.3f}s")
                        excursion_start = None
                elif excursion_start is None:
                    excursion_start = visit.start
        return PropertyResult(name, True, f"all excursions within {horizon:.3f}s")

    return TraceProperty(name, check)


def single_risky_visit_per_round_property(entity: str, round_marker_root: str,
                                          name: str = "single-risky-visit") -> TraceProperty:
    """Property: at most one risky episode between consecutive round starts.

    This mirrors the second step of the paper's proof sketch: between two
    consecutive ``evt xi0 -> xi1 LeaseReq`` events, any entity dwells in its
    risky locations at most once.
    """

    def check(trace: Trace) -> PropertyResult:
        round_starts = sorted({e.time for e in trace.events if e.root == round_marker_root})
        boundaries = [0.0, *round_starts, trace.end_time + 1.0]
        risky = trace.risky_intervals(entity)
        for lo, hi in zip(boundaries, boundaries[1:]):
            episodes = [iv for iv in risky if lo <= iv[0] < hi]
            if len(episodes) > 1:
                return PropertyResult(
                    name, False,
                    f"{entity} had {len(episodes)} risky episodes between round "
                    f"boundaries [{lo:.3f}, {hi:.3f})")
        return PropertyResult(name, True, "at most one risky episode per round")

    return TraceProperty(name, check)
