"""Rare-event violation-probability estimation by importance splitting.

At realistic loss rates PTE violations are rare: crude Monte Carlo needs
on the order of ``1/p`` trials before it sees a single violation, and
``(1-p)/(p * re^2)`` trials for a relative error of ``re``.  This module
estimates the same probability from orders of magnitude fewer trials with
**fixed-effort multilevel splitting** over the monitor's risk levels:

1. Every trial is scored online by the largest fraction of the PTE Rule-1
   dwelling budget any monitored entity consumed in one continuous risky
   dwell (streamed by :class:`~repro.casestudy.observers.RiskLevelObserver`
   — no traces are retained).  A score of 1.0 is the violation boundary.
2. ``N`` trials run per level.  The top quantile (or the survivors of a
   fixed threshold ladder) are *promoted*: each of the next level's ``N``
   trials replays a uniformly chosen survivor's RNG streams up to the
   draw-count watermark recorded when the survivor first crossed the
   threshold, then diverges with fresh randomness derived from the master
   seed (:func:`~repro.util.seeding.rng_session` fork-by-replay).  The
   child is therefore an exact sample of the trial distribution
   conditioned on reaching the level — on any engine tier and any worker
   count.
3. The product of the per-level conditional probabilities estimates the
   violation probability, with the standard relative-error bound
   ``re^2 <= sum_j (1 - p_j) / (N * p_j)`` and a lognormal confidence
   interval.  With a **fixed threshold ladder** the estimate is exactly
   unbiased; **adaptive** (quantile-placed) thresholds add the well-known
   ``O(1/N)`` upward bias of adaptive multilevel splitting (Cerou &
   Guyader), which vanishes as the per-level effort grows — the
   statistical test suite pins both behaviours on the toy chain.

The module is deliberately generic: a *trial function* maps a
:class:`~repro.util.seeding.ForkPlan` to a :class:`ScoredTrial`.  The
case study's trial function is :func:`scored_case_trial`; an analytically
solvable birth--death chain (:func:`run_chain_trial`) backs the
statistical-correctness test suite.

Estimator progress checkpoints level-by-level into the durable campaign
store's ``estimator`` table (schema v4), so a killed splitting run resumes
bit-identically with ``--resume``.
"""

from __future__ import annotations

import functools
import hashlib
import json
import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.casestudy.config import CaseStudyConfig
from repro.casestudy.emulation import _lowered_case_study, run_trial
from repro.casestudy.observers import RiskLevelObserver
from repro.hybrid.simulate import resolve_engine_kind
from repro.util.seeding import (ForkPlan, StreamKey, derive_seed, rng_session,
                                spawn_rng)

#: Marker-valued watermark type (draw counts per RNG stream), or ``None``
#: when a trial ran without a ledger attached.
Watermark = Dict[StreamKey, int]

#: A trial function: deterministic map from a fork plan to a scored trial.
TrialFn = Callable[[ForkPlan], "ScoredTrial"]

#: A map strategy: applies a trial function to many plans, order-preserving.
MapFn = Callable[[TrialFn, Sequence[ForkPlan]], List["ScoredTrial"]]


# -- scored trials -----------------------------------------------------------
@dataclass(frozen=True)
class ScoredTrial:
    """One executed trial, reduced to what the splitting estimator needs.

    Attributes:
        plan: The trial's full stochastic identity; re-running the plan
            reproduces the trial bit-for-bit.
        score: The risk level reached (fraction of the PTE dwelling
            budget; >= 1.0 on the violation boundary).
        violation: Whether the trial violated the PTE rules.
        staircase: Strictly increasing ``(score, watermark)`` records of
            every new running-maximum score, in time order.  Watermarks
            are ``None`` when the trial ran without an RNG ledger.
    """

    plan: ForkPlan
    score: float
    violation: bool
    staircase: Tuple[Tuple[float, Watermark | None], ...] = ()

    def watermark_at(self, threshold: float) -> Watermark | None:
        """RNG watermark of the first score record at/above ``threshold``."""
        for score, marks in self.staircase:
            if score >= threshold:
                return marks
        return None


@dataclass(frozen=True)
class RareEventEstimate:
    """A violation-probability estimate with its error bound.

    Attributes:
        method: ``"crude"`` or ``"split"``.
        probability: The (unbiased) probability estimate.
        rel_error: Estimated relative standard error (``inf`` when no
            violation was observed).
        confidence: Confidence level of ``(ci_low, ci_high)``.
        ci_low: Lower lognormal confidence bound.
        ci_high: Upper lognormal confidence bound.
        thresholds: The splitting levels actually used (empty for crude).
        factors: Per-level conditional probabilities; their product is
            ``probability``.
        trials_used: Total trials executed.
        saturated: True when a splitting level had zero survivors (the
            estimate degenerates to 0 and the error bound is meaningless).
    """

    method: str
    probability: float
    rel_error: float
    confidence: float
    ci_low: float
    ci_high: float
    thresholds: Tuple[float, ...]
    factors: Tuple[float, ...]
    trials_used: int
    saturated: bool = False

    def to_json(self) -> dict:
        """Encode the estimate as JSON-ready primitives."""
        return {"method": self.method, "probability": self.probability,
                "rel_error": self.rel_error, "confidence": self.confidence,
                "ci_low": self.ci_low, "ci_high": self.ci_high,
                "thresholds": list(self.thresholds),
                "factors": list(self.factors),
                "trials_used": self.trials_used, "saturated": self.saturated}

    @classmethod
    def from_json(cls, data: dict) -> "RareEventEstimate":
        """Rebuild an estimate encoded by :meth:`to_json`."""
        return cls(method=data["method"], probability=data["probability"],
                   rel_error=data["rel_error"], confidence=data["confidence"],
                   ci_low=data["ci_low"], ci_high=data["ci_high"],
                   thresholds=tuple(data["thresholds"]),
                   factors=tuple(data["factors"]),
                   trials_used=int(data["trials_used"]),
                   saturated=bool(data["saturated"]))


# -- normal quantiles (no scipy dependency) ----------------------------------
def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Accurate to ~1.15e-9 over (0, 1) — far below the statistical noise of
    any estimate this module produces.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("quantile argument must be within (0, 1)")
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return ((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                 + c[5])
                / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1))
    if p > p_high:
        q = math.sqrt(-2 * math.log(1 - p))
        return -((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                  + c[5])
                 / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1))
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
            + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                            + b[4]) * r + 1)


def z_value(confidence: float) -> float:
    """Two-sided standard-normal critical value for a confidence level."""
    return _normal_quantile(1.0 - (1.0 - confidence) / 2.0)


def _build_estimate(method: str, factors: Sequence[float],
                    counts: Sequence[int], thresholds: Sequence[float],
                    confidence: float, trials_used: int,
                    saturated: bool = False) -> RareEventEstimate:
    """Fold per-level factors into the estimate + error bound + CI."""
    probability = 1.0
    for factor in factors:
        probability *= factor
    if probability <= 0.0:
        return RareEventEstimate(
            method=method, probability=0.0, rel_error=math.inf,
            confidence=confidence, ci_low=0.0, ci_high=math.inf,
            thresholds=tuple(thresholds), factors=tuple(factors),
            trials_used=trials_used, saturated=saturated)
    re2 = sum((1.0 - factor) / (count * factor)
              for factor, count in zip(factors, counts))
    rel_error = math.sqrt(re2)
    z = z_value(confidence)
    spread = math.exp(z * rel_error)
    return RareEventEstimate(
        method=method, probability=probability, rel_error=rel_error,
        confidence=confidence, ci_low=probability / spread,
        ci_high=min(1.0, probability * spread), thresholds=tuple(thresholds),
        factors=tuple(factors), trials_used=trials_used, saturated=saturated)


# -- map strategies ----------------------------------------------------------
def pool_map(trial_fn: TrialFn, plans: Sequence[ForkPlan], *,
             max_workers: int = 1) -> List[ScoredTrial]:
    """Run plans through ``trial_fn``, optionally across worker processes.

    The pool's ``map`` preserves plan order and the plans fully determine
    their trials, so results are bit-identical for any ``max_workers``.
    """
    if max_workers <= 1:
        return [trial_fn(plan) for plan in plans]
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(trial_fn, plans))


# -- the estimators ----------------------------------------------------------
@dataclass(frozen=True)
class SplitSettings:
    """Knobs of the fixed-effort splitting estimator.

    Attributes:
        trials_per_level: Trials run at every level (the "effort").
        quantile: Fraction of trials promoted per adaptive level (the
            conditional probability each level targets).
        levels: Explicit, strictly increasing score thresholds.  ``None``
            (default) places levels adaptively at the running
            ``1 - quantile`` score quantile.  A fixed ladder makes the
            estimate exactly unbiased; adaptive placement costs an
            ``O(1 / trials_per_level)`` upward bias in exchange for not
            having to know the score landscape in advance.
        max_levels: Hard cap on adaptive levels (the final level always
            estimates the violation probability directly).
        confidence: Confidence level of the reported interval.
    """

    trials_per_level: int = 64
    quantile: float = 0.25
    levels: Tuple[float, ...] | None = None
    max_levels: int = 12
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.trials_per_level < 2:
            raise ValueError("trials_per_level must be at least 2")
        if not 0.0 < self.quantile < 1.0:
            raise ValueError("quantile must be within (0, 1)")
        if self.max_levels < 1:
            raise ValueError("max_levels must be at least 1")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be within (0, 1)")
        if self.levels is not None:
            ladder = tuple(float(level) for level in self.levels)
            if not ladder:
                raise ValueError("explicit levels must be non-empty (or None)")
            if any(b <= a for a, b in zip(ladder, ladder[1:])):
                raise ValueError("explicit levels must be strictly increasing")

    def to_json(self) -> dict:
        """Encode the settings as JSON-ready primitives."""
        return {"trials_per_level": self.trials_per_level,
                "quantile": self.quantile,
                "levels": list(self.levels) if self.levels is not None else None,
                "max_levels": self.max_levels, "confidence": self.confidence}


def _next_threshold(settings: SplitSettings, level: int,
                    thresholds: Sequence[float], scores: Sequence[float],
                    violations: int) -> Tuple[bool, float | None]:
    """Decide the next splitting threshold (or that this level is final).

    ``scores`` must be sorted ascending.  Returns ``(final, threshold)``:
    a final level contributes ``violations / N`` directly.
    """
    n = len(scores)
    if settings.levels is not None:
        if level < len(settings.levels):
            return False, float(settings.levels[level])
        return True, None
    if level >= settings.max_levels:
        return True, None
    if violations / n >= settings.quantile:
        return True, None
    threshold = scores[min(int(n * (1.0 - settings.quantile)), n - 1)]
    if threshold >= 1.0:
        return True, None
    if thresholds and threshold <= thresholds[-1]:
        return True, None
    return False, threshold


def fixed_effort_splitting(trial_fn: TrialFn, *, master_seed: int,
                           settings: SplitSettings | None = None,
                           name: str = "split",
                           map_fn: MapFn | None = None,
                           store=None, identity: str | None = None,
                           resume: bool = False) -> RareEventEstimate:
    """Estimate a rare-event probability by fixed-effort splitting.

    Each level runs ``settings.trials_per_level`` trials, selects the
    survivors at/above the level threshold, and builds the next level's
    plans by forking uniformly chosen survivors at their threshold-crossing
    RNG watermark.  Every random choice (root seeds, survivor selection,
    fork seeds) is derived deterministically from ``master_seed`` and the
    level/slot position, so the estimate is invariant to worker count,
    engine tier, and resume splits.

    Args:
        trial_fn: Deterministic :class:`ForkPlan` -> :class:`ScoredTrial`
            map (must be picklable if ``map_fn`` crosses processes).
        master_seed: Root of every derived seed.
        settings: Estimator knobs; ``None`` = defaults.
        name: Seed-derivation namespace; two estimators with different
            names draw decorrelated randomness from the same master seed.
        map_fn: Order-preserving batch runner (defaults to serial;
            :func:`pool_map` fans out over processes).
        store: Optional :class:`~repro.campaign.store.CampaignStore`;
            completed levels checkpoint into its ``estimator`` table.
        identity: Estimator-state key within the store (required with
            ``store``); see :func:`split_identity`.
        resume: Continue from the store's checkpointed level instead of
            starting fresh.  A resumed run is bit-identical to an
            uninterrupted one.

    Returns:
        The :class:`RareEventEstimate` (``method="split"``).
    """
    settings = settings or SplitSettings()
    map_fn = map_fn or (lambda fn, plans: [fn(plan) for plan in plans])
    n = settings.trials_per_level
    if store is not None and identity is None:
        raise ValueError("an estimator identity is required with a store")

    level = 0
    factors: List[float] = []
    thresholds: List[float] = []
    trials_used = 0
    plans = [ForkPlan(derive_seed(master_seed, f"{name}:root:{i}"))
             for i in range(n)]
    if store is not None and resume:
        state = store.load_estimator_state("split", identity)
        if state is not None:
            if state.get("done"):
                return RareEventEstimate.from_json(state["estimate"])
            level = int(state["level"])
            factors = [float(f) for f in state["factors"]]
            thresholds = [float(t) for t in state["thresholds"]]
            trials_used = int(state["trials_used"])
            plans = [ForkPlan.from_json(p) for p in state["plans"]]

    def _save(done: bool, estimate: RareEventEstimate | None = None) -> None:
        if store is None:
            return
        store.save_estimator_state("split", identity, {
            "done": done, "level": level, "factors": factors,
            "thresholds": thresholds, "trials_used": trials_used,
            "plans": [plan.to_json() for plan in plans],
            "settings": settings.to_json(),
            "estimate": estimate.to_json() if estimate is not None else None,
        })

    while True:
        results = map_fn(trial_fn, plans)
        trials_used += len(results)
        scores = sorted(trial.score for trial in results)
        violations = sum(1 for trial in results if trial.violation)
        final, threshold = _next_threshold(settings, level, thresholds,
                                           scores, violations)
        if final:
            factors.append(violations / n)
            estimate = _build_estimate("split", factors, [n] * len(factors),
                                       thresholds, settings.confidence,
                                       trials_used)
            _save(True, estimate)
            return estimate

        survivors = [trial for trial in results if trial.score >= threshold]
        factors.append(len(survivors) / n)
        thresholds.append(threshold)
        if not survivors:
            estimate = _build_estimate("split", factors, [n] * len(factors),
                                       thresholds, settings.confidence,
                                       trials_used, saturated=True)
            _save(True, estimate)
            return estimate

        # Promote: each next-level slot forks a uniformly chosen survivor
        # at its threshold-crossing watermark.  Selection draws through a
        # level-keyed stream so the choice depends only on (master seed,
        # level, slot) — never on scheduling.
        select = spawn_rng(master_seed, f"{name}:select:{level}")
        next_plans: List[ForkPlan] = []
        for i in range(n):
            parent = survivors[select.randrange(len(survivors))]
            marks = parent.watermark_at(threshold) or {}
            child_seed = derive_seed(master_seed, f"{name}:fork:{level}:{i}")
            next_plans.append(parent.plan.fork(child_seed, marks))
        plans = next_plans
        level += 1
        _save(False)


def crude_estimate(trial_fn: TrialFn, *, master_seed: int, trials: int,
                   name: str = "crude", map_fn: MapFn | None = None,
                   confidence: float = 0.95) -> RareEventEstimate:
    """Crude Monte Carlo baseline over the same scored-trial machinery.

    Args:
        trial_fn: Deterministic :class:`ForkPlan` -> :class:`ScoredTrial` map.
        master_seed: Root of every trial seed.
        trials: Number of independent trials.
        name: Seed-derivation namespace.
        map_fn: Order-preserving batch runner (defaults to serial).
        confidence: Confidence level of the reported interval.

    Returns:
        The :class:`RareEventEstimate` (``method="crude"``).
    """
    if trials < 1:
        raise ValueError("trials must be at least 1")
    map_fn = map_fn or (lambda fn, plans: [fn(plan) for plan in plans])
    plans = [ForkPlan(derive_seed(master_seed, f"{name}:root:{i}"))
             for i in range(trials)]
    results = map_fn(trial_fn, plans)
    violations = sum(1 for trial in results if trial.violation)
    return _build_estimate("crude", [violations / trials], [trials], (),
                           confidence, trials)


def crude_trials_for(probability: float, rel_error: float) -> int:
    """Crude-MC trial count needed for a target relative error.

    The standard ``n = (1 - p) / (p * re^2)`` planning identity — the
    yardstick the splitting benchmark gates against.
    """
    if not 0.0 < probability < 1.0:
        raise ValueError("probability must be within (0, 1)")
    if rel_error <= 0.0:
        raise ValueError("rel_error must be positive")
    return max(1, math.ceil((1.0 - probability)
                            / (probability * rel_error * rel_error)))


# -- analytically solvable toy model (statistical test oracle) ---------------
def chain_success_probability(*, up: float, size: int, start: int = 1) -> float:
    """Exact absorption probability of the birth--death toy chain.

    The gambler's-ruin closed form: starting at ``start``, stepping up
    with probability ``up`` (down otherwise), the chance of hitting
    ``size`` before 0.
    """
    if up == 0.5:
        return start / size
    rho = (1.0 - up) / up
    return (1.0 - rho ** start) / (1.0 - rho ** size)


def run_chain_trial(plan: ForkPlan, *, up: float = 0.4, size: int = 12,
                    start: int = 1) -> ScoredTrial:
    """One trial of the toy birth--death chain, scored for splitting.

    The chain starts at ``start`` and steps until absorbed at 0 (no
    violation) or ``size`` (violation).  The score is the maximum state
    reached as a fraction of ``size``, with the RNG watermark recorded at
    every new maximum — exactly the staircase protocol of the case-study
    observer, but with a closed-form true probability
    (:func:`chain_success_probability`) for unbiasedness tests.
    """
    with rng_session(plan) as ledger:
        rng = spawn_rng(plan.root_seed, "chain")
        state = start
        best = start
        staircase: List[Tuple[float, Watermark]] = [(start / size,
                                                     ledger.snapshot())]
        while 0 < state < size:
            state += 1 if rng.random() < up else -1
            if state > best:
                best = state
                staircase.append((best / size, ledger.snapshot()))
    return ScoredTrial(plan=plan, score=best / size,
                       violation=(state == size),
                       staircase=tuple(staircase))


# -- the case-study trial function -------------------------------------------

#: Events a :class:`CellTemplate` can estimate the probability of.
CELL_EVENTS = ("violation", "dwell")


@dataclass(frozen=True)
class CellTemplate:
    """Picklable description of one campaign cell's trial family.

    Attributes:
        config: The fully configured case-study configuration (cell
            overrides already applied).
        with_lease: Trial mode.
        duration: Trial length (``None`` defers to the configuration).
        channel: A :class:`~repro.campaign.spec.ChannelSpec`, a
            :class:`~repro.verify.faults.FaultScenario`, or ``None`` for
            the configuration's calibrated channel.
        surgeon: A :class:`~repro.campaign.spec.SurgeonSpec` or ``None``
            for the stochastic surgeon.
        engine: Simulation kernel (``None`` defers to ``REPRO_ENGINE``).
        event: The rare event being estimated.  ``"violation"`` counts any
            monitor failure (sudden rule breaches are bumped onto the
            score boundary); ``"dwell"`` counts only exhaustion of the
            Rule-1 dwelling budget -- the event the risk score measures
            directly, and therefore the one multilevel splitting
            accelerates best.
    """

    config: CaseStudyConfig
    with_lease: bool = True
    duration: float | None = None
    channel: object | None = None
    surgeon: object | None = None
    engine: str | None = None
    event: str = "violation"

    def __post_init__(self):
        if self.event not in CELL_EVENTS:
            raise ValueError(f"unknown cell event {self.event!r}; "
                             f"expected one of {CELL_EVENTS}")


def scored_case_trial(template: CellTemplate, plan: ForkPlan) -> ScoredTrial:
    """Run one case-study trial under a fork plan and score its risk level.

    Designed for ``functools.partial(scored_case_trial, template)`` as the
    splitting estimator's (picklable) trial function.  Rule-2 violations
    that never consumed a full Rule-1 dwelling budget are bumped onto the
    violation boundary with an end-of-trial watermark: forking such a
    survivor replays it verbatim, which keeps the estimator unbiased (the
    clone is a valid — if maximally correlated — conditional sample).
    """
    config = template.config
    if resolve_engine_kind(template.engine) != "reference":
        # Warm the per-process lowered-model cache *outside* the RNG
        # session: a cache miss draws template randomness, and workers
        # with cold caches must not count draws that warm workers skip.
        _lowered_case_study(config, template.with_lease)
    with rng_session(plan) as ledger:
        risk = RiskLevelObserver(config, ledger)
        channel = None
        if template.channel is not None:
            build = getattr(template.channel, "build_channel", None)
            if build is None:
                build = template.channel.build
            channel = build(plan.root_seed)
        surgeon = template.surgeon.build() if template.surgeon is not None else None
        result = run_trial(config, with_lease=template.with_lease,
                           seed=plan.root_seed, duration=template.duration,
                           channel=channel, surgeon=surgeon,
                           engine=template.engine, observers=[risk])
    score = risk.score
    staircase = list(risk.staircase)
    if template.event == "dwell":
        # The dwelling-budget event is exactly "the risk score reached
        # 1.0", so no boundary bump is ever needed.
        violation = score >= 1.0
    else:
        violation = result.failures > 0
        if violation and score < 1.0:
            score = 1.0
            staircase.append((1.0, ledger.snapshot()))
    return ScoredTrial(plan=plan, score=score, violation=violation,
                       staircase=tuple(staircase))


def cell_template(spec, cell_index: int, *,
                  engine: str | None = None,
                  event: str = "violation") -> CellTemplate:
    """Extract a campaign cell into a :class:`CellTemplate`.

    Mirrors the campaign executor's cell-materialization semantics
    (config overrides via ``TrialSpec.configure``, the cell's channel and
    surgeon specs, the cell-then-campaign duration default), so a split
    estimate targets exactly the trials the campaign would run.
    """
    cell = spec.trials[cell_index]
    config = cell.configure(spec.config)
    duration = cell.duration if cell.duration is not None else spec.duration
    return CellTemplate(config=config, with_lease=cell.with_lease,
                        duration=duration, channel=cell.channel,
                        surgeon=cell.surgeon, engine=engine, event=event)


def split_identity(spec, cell_index: int, master_seed: int,
                   settings: SplitSettings) -> str:
    """Stable identity of one cell's splitting run (the store key).

    Covers the campaign spec, the cell, the master seed and the estimator
    settings; deliberately excludes engine and worker count, which do not
    affect the numbers — a run may crash on one tier and resume on
    another.
    """
    from repro.campaign.store import spec_fingerprint
    payload = json.dumps({"spec": spec_fingerprint(spec, master_seed),
                          "cell": int(cell_index),
                          "settings": settings.to_json()},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def split_estimate_for_cell(spec, cell_index: int = 0, *,
                            master_seed: int = 0,
                            settings: SplitSettings | None = None,
                            engine: str | None = None,
                            max_workers: int = 1,
                            store=None,
                            resume: bool = False) -> RareEventEstimate:
    """Splitting estimate of one campaign cell's violation probability.

    Args:
        spec: The :class:`~repro.campaign.spec.CampaignSpec`.
        cell_index: Which trial cell to estimate.
        master_seed: Campaign master seed.
        settings: Estimator knobs; ``None`` = defaults.
        engine: Simulation kernel (``None`` defers to ``REPRO_ENGINE``).
        max_workers: Worker processes for each level's trials.
        store: Optional durable store (or path accepted by the caller);
            levels checkpoint into its ``estimator`` table.
        resume: Continue a checkpointed run bit-identically.

    Returns:
        The cell's :class:`RareEventEstimate`.
    """
    settings = settings or SplitSettings()
    template = cell_template(spec, cell_index, engine=engine)
    trial_fn = functools.partial(scored_case_trial, template)
    map_fn = functools.partial(pool_map, max_workers=max_workers)
    return fixed_effort_splitting(
        trial_fn, master_seed=master_seed, settings=settings,
        name=f"split:{spec.name}:{cell_index}", map_fn=map_fn, store=store,
        identity=split_identity(spec, cell_index, master_seed, settings),
        resume=resume)


def crude_estimate_for_cell(spec, cell_index: int = 0, *,
                            master_seed: int = 0, trials: int = 512,
                            engine: str | None = None, max_workers: int = 1,
                            confidence: float = 0.95) -> RareEventEstimate:
    """Crude-MC estimate of one campaign cell's violation probability."""
    template = cell_template(spec, cell_index, engine=engine)
    trial_fn = functools.partial(scored_case_trial, template)
    map_fn = functools.partial(pool_map, max_workers=max_workers)
    return crude_estimate(trial_fn, master_seed=master_seed, trials=trials,
                          name=f"crude:{spec.name}:{cell_index}",
                          map_fn=map_fn, confidence=confidence)
