"""Verification campaign reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.verify.properties import PropertyResult


@dataclass(frozen=True)
class TrialRecord:
    """Outcome of one campaign trial (one seed under one fault scenario)."""

    scenario: str
    seed: int
    properties: tuple[PropertyResult, ...]
    observed_loss_ratio: float

    @property
    def passed(self) -> bool:
        """True when every property held in this trial."""
        return all(result.holds for result in self.properties)

    def failed_properties(self) -> List[PropertyResult]:
        """The properties that did not hold in this trial."""
        return [result for result in self.properties if not result.holds]


@dataclass
class CampaignReport:
    """Aggregated outcome of a verification campaign."""

    trials: List[TrialRecord] = field(default_factory=list)

    def add(self, record: TrialRecord) -> None:
        """Append one trial record."""
        self.trials.append(record)

    @property
    def total_trials(self) -> int:
        """Number of trials executed."""
        return len(self.trials)

    @property
    def failures(self) -> List[TrialRecord]:
        """Trials in which at least one property failed."""
        return [t for t in self.trials if not t.passed]

    @property
    def all_passed(self) -> bool:
        """True when every property held in every trial."""
        return not self.failures

    def pass_rate(self) -> float:
        """Fraction of trials in which every property held."""
        if not self.trials:
            return 1.0
        return 1.0 - len(self.failures) / len(self.trials)

    def by_scenario(self) -> Dict[str, tuple[int, int]]:
        """Per-scenario ``(passed, total)`` counts."""
        counts: Dict[str, tuple[int, int]] = {}
        for trial in self.trials:
            passed, total = counts.get(trial.scenario, (0, 0))
            counts[trial.scenario] = (passed + (1 if trial.passed else 0), total + 1)
        return counts

    def summary(self) -> str:
        """Human-readable multi-line summary of the campaign."""
        lines = [f"verification campaign: {self.total_trials} trial(s), "
                 f"pass rate {self.pass_rate() * 100:.1f}%"]
        for scenario, (passed, total) in sorted(self.by_scenario().items()):
            lines.append(f"  {scenario}: {passed}/{total} passed")
        for failure in self.failures[:10]:
            for prop in failure.failed_properties():
                lines.append(f"  FAILED {failure.scenario} seed={failure.seed}: "
                             f"{prop.name}: {prop.detail}")
        return "\n".join(lines)
