"""Sequential probability ratio testing for campaign cells.

Wald's SPRT decides between H0: ``p <= p0`` and H1: ``p >= p1`` (``p`` the
per-trial PTE-violation probability) with configured error rates ``alpha``
(accepting H1 when H0 holds) and ``beta`` (accepting H0 when H1 holds),
stopping as soon as the log-likelihood ratio leaves the continuation band
— typically after a small fraction of the trials a fixed-size campaign
would burn.

Two drivers share the same :class:`SequentialProbabilityRatioTest` core:

* :func:`run_sprt_trials` — a generic sequential loop over any
  :class:`~repro.verify.rare.ScoredTrial` function (the statistical test
  suite runs it on the toy chain).
* :func:`run_sprt_campaign` — wraps one campaign cell in the real
  executor: trial results stream back through ``on_result``, the test
  consumes them **in replicate order** (buffering out-of-order pool
  completions, so the decision is invariant to worker count), and the
  executor's cooperative ``stop`` poll cancels the remaining batches the
  moment the test decides.  The underlying trials checkpoint to the
  durable store like any campaign, and the final test state lands in the
  store's ``estimator`` table (schema v4): a ``--resume`` replays the
  checkpointed prefix through the same consumer — bit-identically — or
  short-circuits entirely when the stored state is already decided.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable

from repro.util.seeding import ForkPlan, derive_seed
from repro.verify.rare import MapFn, TrialFn


@dataclass(frozen=True)
class SprtSettings:
    """Hypotheses and error budget of one sequential test.

    Attributes:
        p0: Null violation probability (H0: ``p <= p0``).
        p1: Alternative violation probability (H1: ``p >= p1``).
        alpha: Admissible probability of accepting H1 under H0.
        beta: Admissible probability of accepting H0 under H1.
        max_trials: Truncation point; an undecided test is forced by the
            log-likelihood-ratio sign at this many trials.
    """

    p0: float
    p1: float
    alpha: float = 0.05
    beta: float = 0.05
    max_trials: int = 10_000

    def __post_init__(self) -> None:
        if not 0.0 < self.p0 < self.p1 < 1.0:
            raise ValueError("hypotheses must satisfy 0 < p0 < p1 < 1")
        if not 0.0 < self.alpha < 1.0 or not 0.0 < self.beta < 1.0:
            raise ValueError("alpha and beta must be within (0, 1)")
        if self.max_trials < 1:
            raise ValueError("max_trials must be at least 1")

    def to_json(self) -> dict:
        """Encode the settings as JSON-ready primitives."""
        return {"p0": self.p0, "p1": self.p1, "alpha": self.alpha,
                "beta": self.beta, "max_trials": self.max_trials}

    @classmethod
    def from_json(cls, data: dict) -> "SprtSettings":
        """Rebuild settings encoded by :meth:`to_json`."""
        return cls(p0=data["p0"], p1=data["p1"], alpha=data["alpha"],
                   beta=data["beta"], max_trials=int(data["max_trials"]))


class SequentialProbabilityRatioTest:
    """Wald's SPRT over a stream of Bernoulli trial outcomes."""

    def __init__(self, settings: SprtSettings):
        self.settings = settings
        self._step_violation = math.log(settings.p1 / settings.p0)
        self._step_safe = math.log((1.0 - settings.p1) / (1.0 - settings.p0))
        self._upper = math.log((1.0 - settings.beta) / settings.alpha)
        self._lower = math.log(settings.beta / (1.0 - settings.alpha))
        self.llr = 0.0
        self.count = 0
        self.violations = 0
        self.decision: str | None = None

    @property
    def decided(self) -> bool:
        """Whether the test has left the continuation band."""
        return self.decision is not None

    def update(self, violation: bool) -> None:
        """Consume one trial outcome (a no-op once decided)."""
        if self.decision is not None:
            return
        self.count += 1
        if violation:
            self.violations += 1
            self.llr += self._step_violation
        else:
            self.llr += self._step_safe
        if self.llr >= self._upper:
            self.decision = "H1"
        elif self.llr <= self._lower:
            self.decision = "H0"

    def forced_decision(self) -> str:
        """The truncation verdict: the hypothesis the evidence leans to."""
        return "H1" if self.llr >= 0.0 else "H0"


@dataclass(frozen=True)
class SprtResult:
    """Outcome of one sequential test.

    Attributes:
        decision: ``"H0"`` (p <= p0 accepted) or ``"H1"`` (p >= p1
            accepted).
        decided_early: True when the test stopped inside the continuation
            band's error guarantees; False for a truncation verdict.
        trials_used: Trial outcomes consumed.
        violations: Violations among the consumed trials.
        llr: Final log-likelihood ratio.
        p_hat: Empirical violation rate of the consumed trials.
        settings: The test's hypotheses and error budget.
    """

    decision: str
    decided_early: bool
    trials_used: int
    violations: int
    llr: float
    p_hat: float
    settings: SprtSettings

    def to_json(self) -> dict:
        """Encode the result as JSON-ready primitives."""
        return {"decision": self.decision,
                "decided_early": self.decided_early,
                "trials_used": self.trials_used,
                "violations": self.violations, "llr": self.llr,
                "p_hat": self.p_hat, "settings": self.settings.to_json()}

    @classmethod
    def from_json(cls, data: dict) -> "SprtResult":
        """Rebuild a result encoded by :meth:`to_json`."""
        return cls(decision=data["decision"],
                   decided_early=bool(data["decided_early"]),
                   trials_used=int(data["trials_used"]),
                   violations=int(data["violations"]),
                   llr=float(data["llr"]), p_hat=float(data["p_hat"]),
                   settings=SprtSettings.from_json(data["settings"]))


def _result_of(test: SequentialProbabilityRatioTest) -> SprtResult:
    """Snapshot a test into its (possibly truncated) result."""
    decided_early = test.decided
    decision = test.decision or test.forced_decision()
    p_hat = test.violations / test.count if test.count else 0.0
    return SprtResult(decision=decision, decided_early=decided_early,
                      trials_used=test.count, violations=test.violations,
                      llr=test.llr, p_hat=p_hat, settings=test.settings)


def run_sprt_trials(trial_fn: TrialFn, *, master_seed: int,
                    settings: SprtSettings, name: str = "sprt",
                    batch: int = 32,
                    map_fn: MapFn | None = None) -> SprtResult:
    """Sequential test over any scored-trial function.

    Trials run in fixed-size batches (batch boundaries depend only on
    ``batch``, never on scheduling) and feed the test in index order, so
    the decision is bit-identical for any map strategy.

    Args:
        trial_fn: Deterministic :class:`~repro.util.seeding.ForkPlan` ->
            :class:`~repro.verify.rare.ScoredTrial` map.
        master_seed: Root of every trial seed.
        settings: Hypotheses and error budget.
        name: Seed-derivation namespace.
        batch: Trials dispatched per sequential step.
        map_fn: Order-preserving batch runner (defaults to serial).

    Returns:
        The :class:`SprtResult`.
    """
    if batch < 1:
        raise ValueError("batch must be at least 1")
    map_fn = map_fn or (lambda fn, plans: [fn(plan) for plan in plans])
    test = SequentialProbabilityRatioTest(settings)
    index = 0
    while not test.decided and index < settings.max_trials:
        size = min(batch, settings.max_trials - index)
        plans = [ForkPlan(derive_seed(master_seed, f"{name}:root:{i}"))
                 for i in range(index, index + size)]
        index += size
        for trial in map_fn(trial_fn, plans):
            test.update(trial.violation)
            if test.decided:
                break
    return _result_of(test)


def sprt_cell_spec(spec, cell_index: int, settings: SprtSettings):
    """The single-cell campaign an SPRT run executes.

    The cell is copied with ``max_trials`` replicates and derived seeds
    (explicit seed lists are dropped: sequential consumption needs the
    unbounded deterministic seed stream).  The campaign name is suffixed
    so its store fingerprint never collides with the plain campaign's.
    """
    from repro.campaign.spec import CampaignSpec

    cell = replace(spec.trials[cell_index], replicates=settings.max_trials,
                   seeds=None)
    return CampaignSpec(name=f"{spec.name}:sprt:{cell_index}",
                        trials=(cell,), config=spec.config,
                        duration=spec.duration)


def _sprt_identity(sub_spec, master_seed: int, settings: SprtSettings) -> str:
    """Store key of one cell's sequential test."""
    import hashlib
    import json

    from repro.campaign.store import spec_fingerprint
    payload = json.dumps({"spec": spec_fingerprint(sub_spec, master_seed),
                          "settings": settings.to_json()},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def run_sprt_campaign(spec, cell_index: int = 0, *, master_seed: int = 0,
                      settings: SprtSettings,
                      max_workers: int = 1, engine: str | None = None,
                      batch_size: int | None = None,
                      store=None, resume: bool = False,
                      on_result: Callable | None = None) -> SprtResult:
    """Sequentially test one campaign cell through the real executor.

    The cell's replicates stream back through the executor's
    ``on_result`` hook; outcomes are consumed in replicate order (pool
    completions may arrive out of order and are buffered), and the
    executor's ``stop`` poll cancels all remaining batches once the test
    decides.  Trials a fast pool completed beyond the decision point are
    simply not consumed, so the verdict is invariant to worker count,
    batch size and engine tier.

    Args:
        spec: The :class:`~repro.campaign.spec.CampaignSpec`.
        cell_index: Which trial cell to test.
        master_seed: Campaign master seed.
        settings: Hypotheses and error budget.
        max_workers: Worker processes.
        engine: Simulation kernel (``None`` defers to ``REPRO_ENGINE``).
        batch_size: Executor replicate-batch size (``None`` = auto).
        store: Optional durable :class:`~repro.campaign.store.CampaignStore`:
            trial batches checkpoint as usual and the decided test state
            lands in the ``estimator`` table.
        resume: Replay the store's checkpointed trials through the test
            first (bit-identical), or return the stored decided result
            outright without touching the pool.
        on_result: Optional passthrough observer of every raw
            :class:`~repro.campaign.aggregate.TrialSummary`.

    Returns:
        The :class:`SprtResult`.
    """
    from repro.campaign.executor import CampaignCancelled, run_campaign

    sub_spec = sprt_cell_spec(spec, cell_index, settings)
    identity = None
    if store is not None:
        identity = _sprt_identity(sub_spec, master_seed, settings)
        if resume:
            state = store.load_estimator_state("sprt", identity)
            if state is not None and state.get("done"):
                return SprtResult.from_json(state["result"])

    test = SequentialProbabilityRatioTest(settings)
    pending: dict[int, bool] = {}
    next_replicate = 0

    def consume(summary) -> None:
        nonlocal next_replicate
        if on_result is not None:
            on_result(summary)
        pending[summary.replicate] = summary.failures > 0
        while next_replicate in pending:
            test.update(pending.pop(next_replicate))
            next_replicate += 1

    try:
        run_campaign(sub_spec, seed=master_seed, max_workers=max_workers,
                     engine=engine, batch_size=batch_size, store=store,
                     resume=resume, on_result=consume,
                     stop=lambda: test.decided)
    except CampaignCancelled:
        pass  # The decided test cancelled the remaining batches.

    result = _result_of(test)
    if store is not None:
        store.save_estimator_state("sprt", identity, {
            "done": True, "result": result.to_json()})
    return result
