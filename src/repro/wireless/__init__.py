"""Wireless substrate: sink topology, lossy channels, interference, statistics."""

from repro.wireless.channel import (BernoulliChannel, Channel, GilbertElliottChannel,
                                    LossWindow, PerfectChannel, ScriptedChannel,
                                    TraceChannel)
from repro.wireless.interference import InterferenceSource
from repro.wireless.network import SinkWirelessNetwork
from repro.wireless.packet import DeliveryOutcome, LinkDirection, Packet
from repro.wireless.stats import LinkStatistics, NetworkStatistics

__all__ = [
    "Channel",
    "PerfectChannel",
    "BernoulliChannel",
    "GilbertElliottChannel",
    "ScriptedChannel",
    "LossWindow",
    "TraceChannel",
    "InterferenceSource",
    "SinkWirelessNetwork",
    "Packet",
    "DeliveryOutcome",
    "LinkDirection",
    "LinkStatistics",
    "NetworkStatistics",
]
