"""Wireless channel loss models.

The paper's fault model admits *arbitrary* packet loss; the emulation in
Section V produces losses with an 802.11g interferer parked next to the
ZigBee motes.  This module provides several loss processes so experiments
can span the whole spectrum:

* :class:`PerfectChannel` -- no losses (control condition).
* :class:`BernoulliChannel` -- independent loss with fixed probability.
* :class:`GilbertElliottChannel` -- two-state burst-loss model: long *good*
  periods with light loss, shorter *bad* periods (interference bursts) with
  heavy loss.  This is the model used to reproduce Table I, because the
  qualitative failure mode of the no-lease baseline requires bursts long
  enough to swallow several retransmissions.
* :class:`ScriptedChannel` -- deterministic loss windows, used by the
  scenario benchmarks to re-create the paper's qualitative failure stories
  ("the surgeon's cancel is lost", "the supervisor's abort is lost").
* :class:`TraceChannel` -- replay an explicit per-packet loss sequence.

All channels expose the same tiny interface: :meth:`Channel.attempt`
returns a :class:`~repro.wireless.packet.DeliveryOutcome` for one packet at
a given time, and :meth:`Channel.reset` re-seeds the stochastic state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.util.seeding import spawn_rng
from repro.wireless.packet import DeliveryOutcome


class Channel:
    """Base class of all loss models."""

    def attempt(self, now: float) -> DeliveryOutcome:
        """Decide the fate of one packet sent at time ``now``."""
        raise NotImplementedError

    def reset(self, seed: int | None = None, stream: str = "") -> None:
        """Reset stochastic state; called at the start of every trial."""

    def describe(self) -> str:
        """Short human-readable description for reports."""
        return type(self).__name__


class PerfectChannel(Channel):
    """A channel that never loses packets."""

    def attempt(self, now: float) -> DeliveryOutcome:
        return DeliveryOutcome.DELIVERED

    def describe(self) -> str:
        return "perfect"


class BernoulliChannel(Channel):
    """Independent (memoryless) loss with probability ``loss_probability``.

    A small share of the losses is attributed to checksum-detected
    corruption rather than outright loss; the application-visible behaviour
    is identical, the split only feeds the statistics module.
    """

    def __init__(self, loss_probability: float, *, corruption_fraction: float = 0.2,
                 seed: int | None = None):
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError("loss_probability must be within [0, 1]")
        if not 0.0 <= corruption_fraction <= 1.0:
            raise ValueError("corruption_fraction must be within [0, 1]")
        self.loss_probability = float(loss_probability)
        self.corruption_fraction = float(corruption_fraction)
        self._seed = seed
        self._rng = spawn_rng(seed, "bernoulli:")

    def reset(self, seed: int | None = None, stream: str = "") -> None:
        self._rng = spawn_rng(seed if seed is not None else self._seed,
                              f"bernoulli:{stream}")

    def attempt(self, now: float) -> DeliveryOutcome:
        if self._rng.random() < self.loss_probability:
            if self._rng.random() < self.corruption_fraction:
                return DeliveryOutcome.CORRUPTED
            return DeliveryOutcome.LOST
        return DeliveryOutcome.DELIVERED

    def describe(self) -> str:
        return f"bernoulli(p={self.loss_probability:g})"


class GilbertElliottChannel(Channel):
    """Two-state burst loss model (Gilbert-Elliott) in continuous time.

    The channel alternates between a *good* state and a *bad* state; state
    holding times are exponential with the given means, and each packet is
    lost independently with the state's loss probability.  A WiFi
    interferer blasting a ZigBee band produces exactly this kind of
    behaviour: mostly fine, with bursts during which almost nothing gets
    through.

    Args:
        mean_good_duration: Mean sojourn time in the good state (seconds).
        mean_bad_duration: Mean sojourn time in the bad state (seconds).
        loss_good: Per-packet loss probability while in the good state.
        loss_bad: Per-packet loss probability while in the bad state.
        seed: RNG seed.
    """

    def __init__(self, *, mean_good_duration: float, mean_bad_duration: float,
                 loss_good: float = 0.05, loss_bad: float = 0.95,
                 seed: int | None = None):
        if mean_good_duration <= 0 or mean_bad_duration <= 0:
            raise ValueError("state durations must be positive")
        for name, p in (("loss_good", loss_good), ("loss_bad", loss_bad)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        self.mean_good_duration = float(mean_good_duration)
        self.mean_bad_duration = float(mean_bad_duration)
        self.loss_good = float(loss_good)
        self.loss_bad = float(loss_bad)
        self._seed = seed
        self._rng = spawn_rng(seed, "gilbert:")
        self._in_bad = False
        self._next_switch = 0.0
        self._initialize_state()

    def _initialize_state(self) -> None:
        self._in_bad = False
        self._next_switch = self._rng.expovariate(1.0 / self.mean_good_duration)

    def reset(self, seed: int | None = None, stream: str = "") -> None:
        self._rng = spawn_rng(seed if seed is not None else self._seed,
                              f"gilbert:{stream}")
        self._initialize_state()

    def _advance_state(self, now: float) -> None:
        while now >= self._next_switch:
            self._in_bad = not self._in_bad
            mean = self.mean_bad_duration if self._in_bad else self.mean_good_duration
            self._next_switch += self._rng.expovariate(1.0 / mean)

    def in_bad_state(self, now: float) -> bool:
        """Whether the channel is inside an interference burst at ``now``."""
        self._advance_state(now)
        return self._in_bad

    def attempt(self, now: float) -> DeliveryOutcome:
        self._advance_state(now)
        loss_probability = self.loss_bad if self._in_bad else self.loss_good
        if self._rng.random() < loss_probability:
            return DeliveryOutcome.LOST
        return DeliveryOutcome.DELIVERED

    def describe(self) -> str:
        return (f"gilbert-elliott(good~{self.mean_good_duration:g}s@p={self.loss_good:g}, "
                f"bad~{self.mean_bad_duration:g}s@p={self.loss_bad:g})")


@dataclass(frozen=True)
class LossWindow:
    """A closed time window during which a :class:`ScriptedChannel` drops packets."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("loss window end must not precede its start")

    def contains(self, time: float) -> bool:
        """True when ``time`` falls inside the window (inclusive)."""
        return self.start <= time <= self.end


class ScriptedChannel(Channel):
    """Deterministic channel: packets sent inside a loss window are dropped.

    Used by the scenario experiments to reproduce the paper's qualitative
    failure stories, where a *specific* message (e.g. the surgeon's cancel,
    or the supervisor's abort) is lost at a specific moment.
    """

    def __init__(self, loss_windows: Sequence[LossWindow | tuple[float, float]] = ()):
        self.loss_windows = [w if isinstance(w, LossWindow) else LossWindow(*w)
                             for w in loss_windows]

    def attempt(self, now: float) -> DeliveryOutcome:
        for window in self.loss_windows:
            if window.contains(now):
                return DeliveryOutcome.LOST
        return DeliveryOutcome.DELIVERED

    def describe(self) -> str:
        spans = ", ".join(f"[{w.start:g},{w.end:g}]" for w in self.loss_windows)
        return f"scripted(drop during {spans})" if spans else "scripted(no losses)"


class TraceChannel(Channel):
    """Replay an explicit boolean delivery sequence (True = delivered).

    Once the sequence is exhausted the channel keeps repeating its final
    value (or delivering, when the sequence is empty).
    """

    def __init__(self, deliveries: Sequence[bool]):
        self.deliveries = list(deliveries)
        self._index = 0

    def reset(self, seed: int | None = None, stream: str = "") -> None:
        self._index = 0

    def attempt(self, now: float) -> DeliveryOutcome:
        if not self.deliveries:
            return DeliveryOutcome.DELIVERED
        if self._index < len(self.deliveries):
            delivered = self.deliveries[self._index]
            self._index += 1
        else:
            delivered = self.deliveries[-1]
        return DeliveryOutcome.DELIVERED if delivered else DeliveryOutcome.LOST

    def describe(self) -> str:
        return f"trace({len(self.deliveries)} entries)"
