"""WiFi interference source model.

The paper's emulation places an IEEE 802.11g interferer two meters from the
ZigBee base station, broadcasting at 3 Mbps on an overlapping band.  We do
not model radio propagation; instead we model the *effect* of such an
interferer on a ZigBee link as a burst loss process, and provide a helper
that turns an interferer description into a calibrated
:class:`~repro.wireless.channel.GilbertElliottChannel`.

The mapping is intentionally simple and fully documented so that the
calibration used for Table I is transparent:

* the interferer's duty cycle determines the fraction of time the channel
  spends in the *bad* state;
* heavier traffic (higher data rate relative to channel capacity) raises
  the in-burst loss probability;
* the residual loss outside bursts models ordinary ZigBee losses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wireless.channel import BernoulliChannel, Channel, GilbertElliottChannel


@dataclass(frozen=True)
class InterferenceSource:
    """Description of a co-located interfering transmitter.

    Attributes:
        data_rate_mbps: Broadcast data rate of the interferer (Mbps).
        duty_cycle: Fraction of time the interferer is actively bursting.
        mean_burst_duration: Mean duration of one interference burst (s).
        distance_m: Distance between the interferer and the victim receiver.
    """

    data_rate_mbps: float = 3.0
    duty_cycle: float = 0.10
    mean_burst_duration: float = 45.0
    distance_m: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 < self.duty_cycle < 1.0:
            raise ValueError("duty_cycle must lie strictly between 0 and 1")
        if self.mean_burst_duration <= 0:
            raise ValueError("mean_burst_duration must be positive")
        if self.data_rate_mbps <= 0:
            raise ValueError("data_rate_mbps must be positive")
        if self.distance_m <= 0:
            raise ValueError("distance_m must be positive")

    @property
    def mean_quiet_duration(self) -> float:
        """Mean duration between bursts implied by the duty cycle."""
        return self.mean_burst_duration * (1.0 - self.duty_cycle) / self.duty_cycle

    def in_burst_loss_probability(self) -> float:
        """Per-packet loss probability while a burst is active.

        A 3 Mbps interferer two meters away practically saturates a ZigBee
        channel; the loss probability scales with the interferer rate
        relative to a nominal 3 Mbps saturating rate and decays gently with
        distance, clamped to ``[0.5, 0.99]``.
        """
        saturation = min(self.data_rate_mbps / 3.0, 2.0)
        proximity = min(2.0 / self.distance_m, 2.0)
        raw = 0.75 * saturation * proximity
        return min(max(raw, 0.5), 0.99)

    def background_loss_probability(self) -> float:
        """Residual per-packet loss probability outside bursts."""
        return 0.05

    def to_channel(self, seed: int | None = None) -> Channel:
        """Build the calibrated burst-loss channel for this interferer."""
        return GilbertElliottChannel(
            mean_good_duration=self.mean_quiet_duration,
            mean_bad_duration=self.mean_burst_duration,
            loss_good=self.background_loss_probability(),
            loss_bad=self.in_burst_loss_probability(),
            seed=seed,
        )

    def to_average_channel(self, seed: int | None = None) -> Channel:
        """Build a memoryless channel with the same *average* loss rate.

        Useful as an ablation: the average-rate channel loses just as many
        packets overall but without bursts, which is much easier on the
        no-lease baseline -- demonstrating that burstiness, not just loss
        rate, drives the failures in Table I.
        """
        average = (self.duty_cycle * self.in_burst_loss_probability()
                   + (1.0 - self.duty_cycle) * self.background_loss_probability())
        return BernoulliChannel(average, seed=seed)
