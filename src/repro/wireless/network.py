"""Sink-based wireless network for distributed CPS entities.

The system model of Section II-B: one central base station and ``N``
remote entities; remote entities never talk to each other directly, only
over *uplinks* (remote -> base station) and *downlinks* (base station ->
remote).  Each directed link has its own loss channel, so uplink and
downlink of the same entity can degrade independently (as they do under
real interference).

:class:`SinkWirelessNetwork` implements the engine-facing
:class:`~repro.hybrid.simulate.engine.Network` protocol: the simulation
engine asks it whether a lossy (``??``) event between two entities gets
through.  Every attempt is recorded both as a :class:`~repro.wireless.packet.Packet`
counter in :class:`~repro.wireless.stats.NetworkStatistics` and available
for post-trial reporting.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.errors import ModelError
from repro.hybrid.simulate.engine import Network
from repro.wireless.channel import Channel, PerfectChannel
from repro.wireless.packet import DeliveryOutcome, LinkDirection, Packet
from repro.wireless.stats import NetworkStatistics


class SinkWirelessNetwork(Network):
    """A star-topology wireless network around one base station.

    Args:
        base_station: Entity name of the base station (``xi0`` / Supervisor).
        remote_entities: Names of the remote entities.
        default_channel: Channel model used for links without an explicit
            override.  Each link gets its own reset stream, so two links
            sharing one channel object still see independent randomness
            after :meth:`reset`.
        uplink_channels: Optional per-remote-entity channel overrides for
            the uplink direction.
        downlink_channels: Optional per-remote-entity overrides for the
            downlink direction.
        strict: When True (default), traffic between two remote entities
            raises :class:`ModelError` -- the topology forbids such links.
            When False, such traffic is simply dropped.
    """

    def __init__(self, *, base_station: str, remote_entities: Iterable[str],
                 default_channel: Channel | None = None,
                 uplink_channels: Mapping[str, Channel] | None = None,
                 downlink_channels: Mapping[str, Channel] | None = None,
                 strict: bool = True):
        self.base_station = base_station
        self.remote_entities = list(dict.fromkeys(remote_entities))
        if base_station in self.remote_entities:
            raise ModelError("the base station cannot also be a remote entity")
        self.default_channel = default_channel or PerfectChannel()
        self._uplink: Dict[str, Channel] = dict(uplink_channels or {})
        self._downlink: Dict[str, Channel] = dict(downlink_channels or {})
        self.strict = strict
        self.statistics = NetworkStatistics()
        self._sequence = 0
        self.packet_log: list[tuple[Packet, DeliveryOutcome]] = []

    # -- topology ---------------------------------------------------------------
    def direction(self, sender: str, receiver: str) -> LinkDirection:
        """Classify the link between two entities.

        Raises:
            ModelError: For remote-to-remote traffic when ``strict`` is set,
                since the system model forbids direct links between remote
                entities.
        """
        if sender == receiver:
            return LinkDirection.LOCAL
        if sender == self.base_station and receiver in self.remote_entities:
            return LinkDirection.DOWNLINK
        if receiver == self.base_station and sender in self.remote_entities:
            return LinkDirection.UPLINK
        if self.strict:
            raise ModelError(
                f"no wireless link exists between {sender!r} and {receiver!r}: "
                "remote entities only communicate through the base station")
        return LinkDirection.LOCAL

    def channel_for(self, sender: str, receiver: str) -> Channel:
        """The loss channel governing the directed link ``sender -> receiver``."""
        direction = self.direction(sender, receiver)
        if direction is LinkDirection.LOCAL:
            return PerfectChannel()
        if direction is LinkDirection.UPLINK:
            return self._uplink.get(sender, self.default_channel)
        return self._downlink.get(receiver, self.default_channel)

    def set_uplink_channel(self, remote_entity: str, channel: Channel) -> None:
        """Override the uplink channel of one remote entity."""
        self._uplink[remote_entity] = channel

    def set_downlink_channel(self, remote_entity: str, channel: Channel) -> None:
        """Override the downlink channel of one remote entity."""
        self._downlink[remote_entity] = channel

    # -- engine protocol -----------------------------------------------------------
    def attempt_delivery(self, sender_entity: str, receiver_entity: str,
                         root: str, now: float) -> bool:
        """Decide whether one lossy event delivery succeeds.

        The attempt is logged as a packet transmission regardless of the
        outcome so post-trial statistics reflect the offered load.
        """
        direction = self.direction(sender_entity, receiver_entity)
        if direction is LinkDirection.LOCAL:
            return True
        channel = self.channel_for(sender_entity, receiver_entity)
        outcome = channel.attempt(now)
        self._sequence += 1
        packet = Packet.create(sequence=self._sequence, source=sender_entity,
                               destination=receiver_entity, event_root=root,
                               timestamp=now)
        if outcome is DeliveryOutcome.CORRUPTED:
            packet = packet.corrupted_copy()
        self.packet_log.append((packet, outcome))
        self.statistics.record(sender_entity, receiver_entity, outcome)
        return outcome.received_by_application

    def reset(self, seed: int | None = None) -> None:
        """Reset channels, statistics and the packet log for a new trial."""
        self.statistics.reset()
        self.packet_log.clear()
        self._sequence = 0
        self.default_channel.reset(seed, stream="default")
        for entity, channel in self._uplink.items():
            channel.reset(seed, stream=f"uplink:{entity}")
        for entity, channel in self._downlink.items():
            channel.reset(seed, stream=f"downlink:{entity}")

    # -- reporting -------------------------------------------------------------------
    def observed_loss_ratio(self) -> float:
        """Aggregate loss ratio observed so far in this trial."""
        return self.statistics.overall_loss_ratio

    def describe(self) -> str:
        """Human-readable one-line description of the topology and channels."""
        return (f"sink network: base={self.base_station}, "
                f"remotes={self.remote_entities}, "
                f"default channel={self.default_channel.describe()}")
