"""Packets and checksums for the wireless substrate.

The fault model of the paper (Section II-B) assumes every packet carries a
checksum strong enough to detect any bit error; a corrupted packet is
discarded at the receiver, which from the application's point of view is
indistinguishable from a loss.  The channel models therefore fold
corruption and outright loss into a single "not delivered" outcome, but the
packet abstraction keeps both causes visible for statistics.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, field


class LinkDirection(enum.Enum):
    """Direction of a wireless link in the sink topology."""

    UPLINK = "uplink"      # remote entity -> base station
    DOWNLINK = "downlink"  # base station -> remote entity
    LOCAL = "local"        # same entity (wired / in-process), never lossy


class DeliveryOutcome(enum.Enum):
    """What happened to one transmitted packet."""

    DELIVERED = "delivered"
    LOST = "lost"                  # never arrived at the receiver
    CORRUPTED = "corrupted"        # arrived, failed the checksum, discarded

    @property
    def received_by_application(self) -> bool:
        """True only when the application layer actually sees the packet."""
        return self is DeliveryOutcome.DELIVERED


@dataclass(frozen=True)
class Packet:
    """A single application event carried over the wireless network.

    Attributes:
        sequence: Monotonically increasing per-sender sequence number.
        source: Sending entity name.
        destination: Receiving entity name.
        event_root: The synchronization-label root carried by the packet.
        timestamp: Send time (simulation seconds).
        payload: Optional opaque payload bytes (checksummed).
    """

    sequence: int
    source: str
    destination: str
    event_root: str
    timestamp: float
    payload: bytes = b""
    checksum: int = field(default=0)

    @staticmethod
    def compute_checksum(source: str, destination: str, event_root: str,
                         payload: bytes) -> int:
        """CRC32 over the addressing fields and payload."""
        blob = b"|".join([source.encode(), destination.encode(),
                          event_root.encode(), payload])
        return zlib.crc32(blob) & 0xFFFFFFFF

    @classmethod
    def create(cls, *, sequence: int, source: str, destination: str,
               event_root: str, timestamp: float, payload: bytes = b"") -> "Packet":
        """Build a packet with its checksum filled in."""
        checksum = cls.compute_checksum(source, destination, event_root, payload)
        return cls(sequence=sequence, source=source, destination=destination,
                   event_root=event_root, timestamp=timestamp, payload=payload,
                   checksum=checksum)

    def verify_checksum(self) -> bool:
        """True when the stored checksum matches the packet contents."""
        return self.checksum == self.compute_checksum(
            self.source, self.destination, self.event_root, self.payload)

    def corrupted_copy(self, flip: int = 0x1) -> "Packet":
        """Return a copy whose checksum no longer matches (bit-error model)."""
        return Packet(sequence=self.sequence, source=self.source,
                      destination=self.destination, event_root=self.event_root,
                      timestamp=self.timestamp, payload=self.payload,
                      checksum=self.checksum ^ flip)
