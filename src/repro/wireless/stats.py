"""Delivery statistics for wireless links."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.wireless.packet import DeliveryOutcome


@dataclass
class LinkStatistics:
    """Counters for one directed link (sender entity -> receiver entity)."""

    sent: int = 0
    delivered: int = 0
    lost: int = 0
    corrupted: int = 0

    def record(self, outcome: DeliveryOutcome) -> None:
        """Account for one transmission attempt."""
        self.sent += 1
        if outcome is DeliveryOutcome.DELIVERED:
            self.delivered += 1
        elif outcome is DeliveryOutcome.CORRUPTED:
            self.corrupted += 1
        else:
            self.lost += 1

    @property
    def loss_ratio(self) -> float:
        """Fraction of transmissions that did not reach the application."""
        if self.sent == 0:
            return 0.0
        return (self.lost + self.corrupted) / self.sent


@dataclass
class NetworkStatistics:
    """Per-link and aggregate delivery statistics for a whole network."""

    links: Dict[tuple[str, str], LinkStatistics] = field(default_factory=dict)

    def record(self, sender: str, receiver: str, outcome: DeliveryOutcome) -> None:
        """Account for one transmission attempt on the given link."""
        self.links.setdefault((sender, receiver), LinkStatistics()).record(outcome)

    def link(self, sender: str, receiver: str) -> LinkStatistics:
        """Statistics of one directed link (empty stats when unused)."""
        return self.links.get((sender, receiver), LinkStatistics())

    @property
    def total_sent(self) -> int:
        """Total transmissions across all links."""
        return sum(link.sent for link in self.links.values())

    @property
    def total_delivered(self) -> int:
        """Total successful deliveries across all links."""
        return sum(link.delivered for link in self.links.values())

    @property
    def overall_loss_ratio(self) -> float:
        """Aggregate loss ratio over every link."""
        sent = self.total_sent
        if sent == 0:
            return 0.0
        return 1.0 - self.total_delivered / sent

    def reset(self) -> None:
        """Clear every counter (start of a new trial)."""
        self.links.clear()

    def summary_rows(self) -> list[tuple[str, str, int, int, float]]:
        """Rows ``(sender, receiver, sent, delivered, loss_ratio)`` for reports."""
        rows = []
        for (sender, receiver), link in sorted(self.links.items()):
            rows.append((sender, receiver, link.sent, link.delivered, link.loss_ratio))
        return rows
