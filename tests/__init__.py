"""Test package."""
