"""Tests of the Monte-Carlo campaign runner.

The two load-bearing guarantees:

* determinism — the same master seed yields byte-identical aggregate
  summaries no matter how many worker processes execute the trials;
* compatibility — Table I routed through the campaign layer reproduces the
  pre-campaign serial loop's numbers exactly.
"""

import json

import pytest

from repro.campaign import (CampaignSpec, ChannelSpec, SurgeonSpec, TrialSpec,
                            expand_grid, run_campaign, table1_spec)
from repro.campaign.cli import main as campaign_main
from repro.casestudy import CaseStudyConfig, run_table1_trials, run_trial
from repro.experiments import run_table1
from repro.util.seeding import derive_seed


class TestSpecExpansion:
    def test_seeds_depend_only_on_position(self):
        spec = table1_spec(replicates=3)
        first = spec.expand(7)
        second = spec.expand(7)
        assert [r.seed for r in first] == [r.seed for r in second]
        assert len(first) == 4 * 3
        assert [r.index for r in first] == list(range(12))

    def test_different_master_seeds_decorrelate(self):
        spec = table1_spec(replicates=2)
        assert ([r.seed for r in spec.expand(1)]
                != [r.seed for r in spec.expand(2)])

    def test_explicit_seeds_take_priority(self):
        spec = CampaignSpec(
            name="pinned",
            trials=(TrialSpec(label="a", seeds=(11, 22), replicates=3),))
        runs = spec.expand(99)
        assert len(runs) == 3
        assert runs[0].seed == 11 and runs[1].seed == 22
        assert runs[2].seed == derive_seed(99, "campaign:pinned:0:2")

    def test_scaled_drops_explicit_seeds(self):
        spec = CampaignSpec(
            name="pinned",
            trials=(TrialSpec(label="a", seeds=(11,)),))
        scaled = spec.scaled(5)
        assert scaled.total_trials == 5
        assert all(t.seeds is None for t in scaled.trials)

    def test_expand_grid_is_cartesian(self):
        points = list(expand_grid(loss=(0.0, 0.5), mean_toff=(18.0, 6.0)))
        assert len(points) == 4
        assert {(p["loss"], p["mean_toff"]) for p in points} == {
            (0.0, 18.0), (0.0, 6.0), (0.5, 18.0), (0.5, 6.0)}

    def test_channel_spec_validates(self):
        with pytest.raises(ValueError):
            ChannelSpec("wat")
        with pytest.raises(ValueError):
            ChannelSpec("bernoulli", loss=1.5)
        assert ChannelSpec().build(1) is None
        assert ChannelSpec("bernoulli", loss=0.3).build(1) is not None

    def test_trial_spec_overrides_config(self):
        base = CaseStudyConfig()
        spec = TrialSpec(label="x", mean_toff=6.0, supervisor_resend_limit=0)
        config = spec.configure(base)
        assert config.surgeon.mean_toff == 6.0
        assert config.supervisor_resend_limit == 0
        # the base configuration is untouched
        assert base.surgeon.mean_toff == 18.0


class TestDeterminism:
    def test_workers_do_not_change_aggregates(self):
        # Same master seed must yield byte-identical aggregate summaries for
        # serial and process-pool execution.
        spec = table1_spec(duration=150.0, replicates=2)
        serial = run_campaign(spec, seed=7, max_workers=1)
        parallel = run_campaign(spec, seed=7, max_workers=4)
        serial_payload = json.dumps(serial.to_json()["campaign"], sort_keys=True)
        parallel_payload = json.dumps(parallel.to_json()["campaign"], sort_keys=True)
        assert serial_payload == parallel_payload
        assert serial.total_trials == 8

    def test_streaming_callback_sees_every_trial(self):
        spec = table1_spec(duration=100.0)
        seen = []
        result = run_campaign(spec, seed=3, max_workers=1,
                              on_result=seen.append)
        assert len(seen) == result.total_trials == 4
        assert {s.label for s in seen} == {t.label for t in spec.trials}

    def test_full_payload_collects_trial_results(self):
        spec = table1_spec(duration=100.0)
        result = run_campaign(spec, seed=3, max_workers=1, payload="full")
        assert result.results is not None and len(result.results) == 4
        assert all(r.trace is None for r in result.results)  # memory-safe
        assert [r.failures for r in result.results] == [
            s.failures for s in result.summaries]

    def test_stats_payload_streams_full_results(self):
        spec = table1_spec(duration=100.0)
        result = run_campaign(spec, seed=3, max_workers=1, payload="stats")
        assert result.results is not None and len(result.results) == 4
        assert all(r.trace is None for r in result.results)
        # The streaming observer populates monitor and ledger without a trace.
        assert all(r.monitor is not None and r.ledger is not None
                   for r in result.results)
        assert [r.failures for r in result.results] == [
            s.failures for s in result.summaries]

    def test_compiled_engine_matches_reference_campaign(self):
        spec = table1_spec(duration=120.0, replicates=1)
        reference = run_campaign(spec, seed=5, max_workers=1, engine="reference")
        compiled = run_campaign(spec, seed=5, max_workers=1, engine="compiled")
        ref_payload = json.dumps(reference.to_json()["campaign"], sort_keys=True)
        cmp_payload = json.dumps(compiled.to_json()["campaign"], sort_keys=True)
        assert ref_payload == cmp_payload

    def test_batch_size_does_not_change_aggregates(self):
        # The batched kernel at any batch width, the compiled kernel, and
        # the process pool must all produce byte-identical Table I
        # aggregates: batching is a throughput knob, never a semantics knob.
        spec = table1_spec(duration=120.0, replicates=5)
        baseline = run_campaign(spec, seed=9, max_workers=1, engine="compiled")
        base_payload = json.dumps(baseline.to_json()["campaign"], sort_keys=True)
        for batch_size, workers in ((1, 1), (2, 1), (5, 1), (None, 1), (3, 2)):
            campaign = run_campaign(spec, seed=9, max_workers=workers,
                                    engine="batched", batch_size=batch_size)
            payload = json.dumps(campaign.to_json()["campaign"], sort_keys=True)
            assert payload == base_payload, (batch_size, workers)

    def test_batched_stats_payload_streams_full_results(self):
        spec = table1_spec(duration=100.0, replicates=3)
        result = run_campaign(spec, seed=3, max_workers=1, engine="batched",
                              payload="stats", batch_size=3)
        assert result.results is not None and len(result.results) == 12
        assert all(r.trace is None for r in result.results)
        assert all(r.monitor is not None and r.ledger is not None
                   for r in result.results)
        assert [r.failures for r in result.results] == [
            s.failures for s in result.summaries]

    def test_auto_batch_size_heuristic(self):
        from repro.campaign import resolve_batch_size

        spec = table1_spec(duration=100.0, replicates=40)
        assert resolve_batch_size(7, spec, 4, "batched") == 7
        assert resolve_batch_size(None, spec, 1, "compiled") == 1
        # 40 replicates over 4 workers is a 10-lane split — below the
        # lockstep break-even, so auto keeps per-trial dispatch.
        assert resolve_batch_size(None, spec, 4, "batched") == 1
        assert resolve_batch_size(None, spec, 1, "batched") == 40
        wide = table1_spec(duration=100.0, replicates=1000)
        assert resolve_batch_size(None, wide, 1, "batched") == 64  # capped
        with pytest.raises(ValueError):
            resolve_batch_size(-1, spec, 1, "batched")

    def test_min_lanes_threshold_env(self, monkeypatch):
        from repro.campaign import min_lockstep_lanes, resolve_batch_size
        from repro.campaign.executor import (BATCH_MIN_LANES_ENV_VAR,
                                             DEFAULT_BATCH_MIN_LANES)

        spec = table1_spec(duration=100.0, replicates=40)
        assert min_lockstep_lanes() == DEFAULT_BATCH_MIN_LANES
        # Lowering the break-even re-enables lockstep for the 10-lane split.
        monkeypatch.setenv(BATCH_MIN_LANES_ENV_VAR, "4")
        assert min_lockstep_lanes() == 4
        assert resolve_batch_size(None, spec, 4, "batched") == 10
        # Raising it past the largest cell forces per-trial dispatch even
        # for a single worker.
        monkeypatch.setenv(BATCH_MIN_LANES_ENV_VAR, "64")
        assert resolve_batch_size(None, spec, 1, "batched") == 1
        # Explicit batch sizes are always honoured as given.
        monkeypatch.setenv(BATCH_MIN_LANES_ENV_VAR, "64")
        assert resolve_batch_size(3, spec, 4, "batched") == 3
        monkeypatch.setenv(BATCH_MIN_LANES_ENV_VAR, "not-a-number")
        with pytest.raises(ValueError):
            min_lockstep_lanes()
        monkeypatch.setenv(BATCH_MIN_LANES_ENV_VAR, "0")
        with pytest.raises(ValueError):
            min_lockstep_lanes()

    def test_resolve_batch_size_edge_cases(self, monkeypatch):
        from repro.campaign import resolve_batch_size
        from repro.campaign.executor import BATCH_MIN_LANES_ENV_VAR

        monkeypatch.setenv(BATCH_MIN_LANES_ENV_VAR, "1")
        one = table1_spec(duration=100.0, replicates=1)
        # One trial per cell: nothing to batch, but still a legal size.
        assert resolve_batch_size(None, one, 4, "batched") == 1
        # Explicit batch size larger than any cell is accepted; chunking
        # naturally clips it at the cell boundary.
        assert resolve_batch_size(100, one, 4, "batched") == 100
        # Worker count exceeding the total lane count still splits sanely.
        small = table1_spec(duration=100.0, replicates=3)
        assert resolve_batch_size(None, small, 64, "batched") == 1

    def test_chunk_runs_edge_cases(self):
        from repro.campaign.executor import _chunk_runs

        spec = table1_spec(duration=100.0, replicates=5)
        runs = spec.expand(7)
        per_cell = 5

        # batch_size larger than the cell: one task per cell, cells never mix.
        tasks = _chunk_runs(runs, 100)
        assert len(tasks) == len(spec.trials)
        for spec_index, chunk in tasks:
            assert len(chunk) == per_cell
            assert {index for index, _, _ in chunk} == {
                run.index for run in runs if run.spec_index == spec_index}

        # batch_size 1: one task per trial, in expansion order.
        singles = _chunk_runs(runs, 1)
        assert [chunk[0][0] for _, chunk in singles] == [r.index for r in runs]

        # Uneven split: 5 replicates in batches of 2 -> 2+2+1 per cell.
        uneven = _chunk_runs(runs, 2)
        sizes = [len(chunk) for _, chunk in uneven]
        assert sizes == [2, 2, 1] * len(spec.trials)
        # Every trial appears exactly once across the lane ranges.
        seen = [index for _, chunk in uneven for index, _, _ in chunk]
        assert sorted(seen) == [run.index for run in runs]

        # Empty input chunks to no tasks.
        assert _chunk_runs([], 4) == []


class TestTable1Compatibility:
    def test_campaign_matches_pre_refactor_serial_loop(self):
        # The historical serial loop, inlined: this is what run_table1 did
        # before the campaign layer existed.  The campaign path must
        # reproduce its rows bit-for-bit.
        base = CaseStudyConfig()
        legacy_rows = []
        for toff_index, mean_toff in enumerate((18.0, 6.0)):
            for mode_index, with_lease in enumerate((True, False)):
                trial_seed = 42 + 101 * toff_index + 13 * mode_index
                r = run_trial(base.with_mean_toff(mean_toff),
                              with_lease=with_lease, seed=trial_seed,
                              duration=300.0)
                legacy_rows.append([
                    r.mode, r.mean_toff, r.laser_emissions, r.failures,
                    r.evt_to_stop, round(r.max_pause_duration, 1),
                    round(r.max_emission_duration, 1),
                    round(r.observed_loss_ratio, 2)])

        result = run_table1(seed=42, duration=300.0)
        assert [list(row) for row in result.rows] == legacy_rows

    def test_run_table1_trials_parallel_equals_serial(self):
        serial = run_table1_trials(seed=11, duration=200.0, max_workers=1)
        parallel = run_table1_trials(seed=11, duration=200.0, max_workers=2)
        assert [r.table_row() for r in serial] == [r.table_row() for r in parallel]
        assert [r.seed for r in serial] == [r.seed for r in parallel]

    def test_replicates_aggregate_per_cell(self):
        result = run_table1(seed=5, duration=120.0, replicates=2)
        assert len(result.rows) == 4          # one row per Table I cell
        assert all(row[2] == 2 for row in result.rows)  # "# trials" column


class TestScenarioSpec:
    def test_scripted_surgeon_spec_builds(self):
        surgeon = SurgeonSpec(requests_at=(14.0,), cancels_at=(40.0,)).build()
        assert surgeon.next_wakeup(0.0) == 14.0


class TestCLI:
    def test_scenarios_run_passes_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "scenarios.json"
        code = campaign_main(["--experiment", "scenarios", "--quiet",
                              "--json", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "checks: PASS" in stdout
        payload = json.loads(out.read_text())
        assert payload["campaign"]["total_trials"] == 4
        assert payload["experiment"]["checks"]["forgetful_surgeon_lease_safe"]

    def test_rejects_bad_arguments(self):
        assert campaign_main(["--replicates", "0"]) == 2
        assert campaign_main(["--workers", "-1"]) == 2

    def test_payload_and_engine_flags_smoke(self, capsys):
        code = campaign_main(["--experiment", "scenarios", "--quiet",
                              "--payload", "stats", "--engine", "compiled"])
        assert code == 0
        assert "checks: PASS" in capsys.readouterr().out

    def test_batch_size_flag_smoke(self, tmp_path):
        # --batch-size without --engine implies the batched kernel; the
        # results must equal an explicit compiled run of the same campaign.
        payloads = {}
        for name, extra in (("compiled", ["--engine", "compiled"]),
                            ("batched", ["--batch-size", "4"])):
            out = tmp_path / f"{name}.json"
            code = campaign_main(["--experiment", "table1", "--quiet",
                                  "--duration", "120", "--seed", "9",
                                  "--replicates", "4", "--json", str(out),
                                  *extra])
            assert code in (0, 1)
            payload = json.loads(out.read_text())
            payload["run"] = None
            payloads[name] = json.dumps(payload, sort_keys=True)
        assert payloads["compiled"] == payloads["batched"]

    def test_batch_size_rejects_negative(self):
        assert campaign_main(["--batch-size", "-2"]) == 2

    def test_engine_flag_does_not_change_results(self, tmp_path):
        # A 120 s horizon is too short for the paper's pass/fail checks, so
        # only the exit codes and payloads being identical matters here.
        payloads = {}
        codes = {}
        for engine in ("reference", "compiled"):
            out = tmp_path / f"{engine}.json"
            codes[engine] = campaign_main(["--experiment", "table1", "--quiet",
                                           "--duration", "120", "--seed", "9",
                                           "--engine", engine,
                                           "--json", str(out)])
            payload = json.loads(out.read_text())
            payload["run"] = None  # wall-clock metadata differs, data must not
            payloads[engine] = json.dumps(payload, sort_keys=True)
        assert codes["reference"] == codes["compiled"]
        assert payloads["reference"] == payloads["compiled"]
